//! Runtime → telemetry hub integration: task spans, latency histograms,
//! steal counters, and block-latency per blocking option.

use coop_runtime::{Runtime, RuntimeConfig, TelemetryHub, ThreadCommand};
use coop_telemetry::EventKind;
use numa_topology::presets::tiny;
use numa_topology::NodeId;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn tasks_feed_histograms_and_timeline() {
    let hub = Arc::new(TelemetryHub::new());
    let rt = Runtime::start(RuntimeConfig::new("tele", tiny()).with_telemetry(Arc::clone(&hub)))
        .unwrap();
    for i in 0..20 {
        rt.task(&format!("t{i}")).body(|_| {}).spawn().unwrap();
    }
    rt.wait_quiescent().unwrap();

    let reg = hub.registry();
    assert_eq!(
        reg.histogram("coop_task_latency_us", &[("runtime", "tele")])
            .count(),
        20
    );
    assert_eq!(
        reg.histogram("coop_queue_wait_us", &[("runtime", "tele")])
            .count(),
        20
    );
    assert_eq!(reg.counter_total("coop_tasks_completed_total"), 20);

    let spans: Vec<_> = hub
        .events()
        .into_iter()
        .filter(|e| e.cat == "task" && matches!(e.kind, EventKind::Span { .. }))
        .collect();
    assert_eq!(spans.len(), 20);
    // Worker lanes are 1-based; lane 0 is reserved for control events.
    assert!(spans.iter().all(|e| e.lane >= 1));

    let prom = reg.to_prometheus();
    assert!(prom.contains("coop_task_latency_us_bucket{"));
    assert!(prom.contains("le=\"+Inf\"} 20"));
    rt.shutdown();
}

#[test]
fn control_commands_and_block_latency_are_recorded() {
    let hub = Arc::new(TelemetryHub::new());
    let rt =
        Runtime::start(RuntimeConfig::new("ctl", tiny()).with_telemetry(Arc::clone(&hub))).unwrap();

    // Block down to 1 worker, then release: the released workers must
    // land in the per-option block-latency histogram.
    rt.control().apply(ThreadCommand::TotalThreads(1)).unwrap();
    assert!(rt
        .control()
        .wait_converged(Duration::from_secs(5), |run, _| run <= 1));
    rt.control().apply(ThreadCommand::Unrestricted).unwrap();
    assert!(rt
        .control()
        .wait_converged(Duration::from_secs(5), |run, _| run == 4));

    let reg = hub.registry();
    assert_eq!(reg.counter_total("coop_control_commands_total"), 2);
    let blocked = reg.histogram(
        "coop_block_latency_us",
        &[("runtime", "ctl"), ("option", "total_threads")],
    );
    assert!(blocked.count() >= 1, "released workers must be observed");

    // Command instants are on the timeline's control lane.
    assert!(hub
        .events()
        .iter()
        .any(|e| e.cat == "control" && e.name.contains("TotalThreads")));
    rt.shutdown();
}

#[test]
fn cross_node_steals_are_counted() {
    let hub = Arc::new(TelemetryHub::new());
    let rt = Runtime::start(RuntimeConfig::new("steal", tiny()).with_telemetry(Arc::clone(&hub)))
        .unwrap();
    // Pin all tasks to node 0's queue; node 1's workers can only get work
    // by stealing across nodes.
    for i in 0..200 {
        rt.task(&format!("t{i}"))
            .affinity(NodeId(0))
            .body(|_| std::thread::sleep(Duration::from_micros(200)))
            .spawn()
            .unwrap();
    }
    rt.wait_quiescent().unwrap();
    assert!(
        hub.registry().counter_total("coop_steals_total") > 0,
        "node-1 workers had to steal node-0 tasks"
    );
    rt.shutdown();
}

#[test]
fn two_runtimes_share_one_hub_on_one_clock() {
    let hub = Arc::new(TelemetryHub::new());
    let a =
        Runtime::start(RuntimeConfig::new("a", tiny()).with_telemetry(Arc::clone(&hub))).unwrap();
    let b =
        Runtime::start(RuntimeConfig::new("b", tiny()).with_telemetry(Arc::clone(&hub))).unwrap();
    a.task("ta").body(|_| {}).spawn().unwrap();
    a.wait_quiescent().unwrap();
    b.task("tb").body(|_| {}).spawn().unwrap();
    b.wait_quiescent().unwrap();

    let events = hub.events();
    let ta = events.iter().find(|e| e.name == "ta").unwrap();
    let tb = events.iter().find(|e| e.name == "tb").unwrap();
    assert_ne!(ta.track, tb.track, "each runtime has its own track");
    assert!(tb.ts_us >= ta.ts_us, "shared epoch: later task, later ts");
    let json = hub.to_perfetto_json();
    assert!(json.contains("runtime:a"));
    assert!(json.contains("runtime:b"));
    a.shutdown();
    b.shutdown();
}
