//! Property-based tests: random task DAGs execute every task exactly once,
//! respecting dependencies, under random thread-control churn.

use coop_runtime::{Runtime, RuntimeConfig, ThreadCommand};
use numa_topology::presets::tiny;
use numa_topology::NodeId;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A random DAG description: for each task, the set of earlier tasks it
/// depends on (indices strictly smaller, so the graph is acyclic by
/// construction).
#[derive(Debug, Clone)]
struct DagSpec {
    deps: Vec<Vec<usize>>,
}

fn arb_dag(max_tasks: usize) -> impl Strategy<Value = DagSpec> {
    (1..max_tasks)
        .prop_flat_map(|n| {
            // For task i, choose a subset of 0..i as dependencies.
            let per_task: Vec<_> = (0..n)
                .map(|i| proptest::collection::vec(0..i.max(1), 0..=i.min(4)))
                .collect();
            per_task
        })
        .prop_map(|mut deps| {
            for (i, d) in deps.iter_mut().enumerate() {
                d.retain(|&x| x < i);
                d.sort_unstable();
                d.dedup();
            }
            DagSpec { deps }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every task of a random DAG runs exactly once, and only after all its
    /// dependencies have finished.
    #[test]
    fn random_dag_executes_in_order(spec in arb_dag(24)) {
        let rt = Runtime::start(RuntimeConfig::new("dag", tiny())).unwrap();
        let n = spec.deps.len();
        // finished[i] = logical completion timestamp (0 = not finished).
        let stamps: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let clock = Arc::new(AtomicU64::new(1));

        // Build finish events in topological (index) order.
        let mut finish_events = Vec::with_capacity(n);
        for (i, deps) in spec.deps.iter().enumerate() {
            let stamps = stamps.clone();
            let clock = clock.clone();
            let mut builder = rt
                .task(&format!("t{i}"))
                .body(move |_| {
                    let t = clock.fetch_add(1, Ordering::SeqCst);
                    let prev = stamps[i].swap(t, Ordering::SeqCst);
                    assert_eq!(prev, 0, "task {i} ran twice");
                })
                .with_finish_event();
            for &d in deps {
                let ev: &coop_runtime::Event = &finish_events[d];
                builder = builder.depends_on(ev);
            }
            let (_, ev) = builder.spawn_with_finish().unwrap();
            finish_events.push(ev);
        }

        rt.wait_quiescent().unwrap();
        // Every task ran exactly once...
        for i in 0..n {
            prop_assert!(stamps[i].load(Ordering::SeqCst) > 0, "task {i} never ran");
        }
        // ...and after each of its dependencies.
        for (i, deps) in spec.deps.iter().enumerate() {
            for &d in deps {
                prop_assert!(
                    stamps[d].load(Ordering::SeqCst) < stamps[i].load(Ordering::SeqCst),
                    "task {i} ran before its dependency {d}"
                );
            }
        }
        prop_assert_eq!(rt.stats().tasks_executed, n as u64);
        rt.shutdown();
    }

    /// Thread-control churn (random command sequences) never loses tasks
    /// and always converges to the final command's census.
    #[test]
    fn control_churn_loses_nothing(
        commands in proptest::collection::vec(0u8..4, 1..6),
        tasks in 1usize..40,
    ) {
        let rt = Runtime::start(RuntimeConfig::new("churn", tiny())).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        for i in 0..tasks {
            let c = count.clone();
            rt.task(&format!("t{i}"))
                .body(move |_| { c.fetch_add(1, Ordering::SeqCst); })
                .spawn()
                .unwrap();
        }
        for (k, cmd) in commands.iter().enumerate() {
            let command = match cmd {
                0 => ThreadCommand::TotalThreads(1 + k % 4),
                1 => ThreadCommand::PerNode(vec![1 + k % 2, (k + 1) % 3]),
                2 => ThreadCommand::Unrestricted,
                _ => ThreadCommand::TotalThreads(2),
            };
            // PerNode targets of 0 are allowed; ensure at least one node
            // can run so the work finishes.
            rt.control().apply(command).unwrap();
        }
        // Whatever the churn was, end unrestricted so work can drain.
        rt.control().apply(ThreadCommand::Unrestricted).unwrap();
        rt.wait_quiescent_timeout(Duration::from_secs(20)).unwrap();
        prop_assert_eq!(count.load(Ordering::SeqCst), tasks as u64);
        prop_assert!(rt.control().wait_converged(
            Duration::from_secs(5),
            |run, _| run == 4
        ));
        rt.shutdown();
    }

    /// Affinity hints are honoured for queue placement: with all workers of
    /// the hinted node available and no competing work, tasks run there.
    #[test]
    fn affinity_single_node_workload(node_idx in 0usize..2) {
        let rt = Runtime::start(RuntimeConfig::new("aff", tiny())).unwrap();
        // Freeze the *other* node so no stealing can occur.
        let mut targets = vec![2, 2];
        targets[1 - node_idx] = 0;
        rt.control().apply(ThreadCommand::PerNode(targets)).unwrap();
        assert!(rt.control().wait_converged(
            Duration::from_secs(5),
            |_, per| per[1 - node_idx] == 0
        ));
        let on_node = Arc::new(AtomicU64::new(0));
        for i in 0..10 {
            let on_node = on_node.clone();
            rt.task(&format!("t{i}"))
                .affinity(NodeId(node_idx))
                .body(move |ctx| {
                    if ctx.node() == NodeId(node_idx) {
                        on_node.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .spawn()
                .unwrap();
        }
        rt.wait_quiescent_timeout(Duration::from_secs(20)).unwrap();
        prop_assert_eq!(on_node.load(Ordering::SeqCst), 10);
        rt.shutdown();
    }
}
