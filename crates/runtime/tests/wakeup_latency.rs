//! Regression tests for the event-counted parking protocol.
//!
//! The old scheduler put idle workers to sleep in a 1 ms condvar poll, so
//! a task enqueued while every worker slept waited up to a millisecond
//! before anyone noticed it. The work-stealing scheduler parks idle
//! workers and has `enqueue_ready` unpark one directly, so wakeup latency
//! is OS-scheduler latency (tens of microseconds), not a poll interval.
//!
//! These tests fail if that regresses: the parking backstop is 100 ms, so
//! a lost wakeup — a worker parked without observing a task that was
//! published before it registered as idle — shows up as a ~100 ms outlier,
//! and a return to 1 ms polling shifts the median to ~500 µs. The bounds
//! below (median well under 1 ms, mean under 10 ms) discriminate both
//! failure modes while tolerating CI scheduling jitter.

use coop_runtime::{Runtime, RuntimeConfig};
use numa_topology::presets::tiny;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: usize = 200;

fn median_and_mean(mut samples: Vec<Duration>) -> (Duration, Duration) {
    assert!(!samples.is_empty());
    samples.sort();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    (median, total / samples.len() as u32)
}

fn assert_prompt(what: &str, samples: Vec<Duration>) {
    let (median, mean) = median_and_mean(samples);
    assert!(
        median < Duration::from_millis(1),
        "{what}: median wakeup latency {median:?} — parked workers are \
         not being unparked promptly (1 ms poll or worse)"
    );
    assert!(
        mean < Duration::from_millis(10),
        "{what}: mean wakeup latency {mean:?} — some enqueues only ran \
         when the 100 ms park backstop fired (lost wakeup?)"
    );
}

/// Main thread enqueues into a fully idle (parked) runtime; the task body
/// records how long it took to start running.
#[test]
fn wakeup_from_main_is_prompt() {
    let rt = Runtime::start(RuntimeConfig::new("wakeup-main", tiny())).unwrap();
    let samples = Arc::new(Mutex::new(Vec::with_capacity(ROUNDS)));
    for round in 0..ROUNDS {
        // The previous round is quiescent, so every worker has re-checked
        // the queues, found nothing, and parked (or is about to; the
        // protocol covers both: a worker between its idle re-check and
        // `park` holds no claim on the task, and the unpark token set by
        // `enqueue_ready` makes its park return immediately).
        let t0 = Instant::now();
        let samples = samples.clone();
        rt.task(&format!("wake-{round}"))
            .body(move |_| samples.lock().push(t0.elapsed()))
            .spawn()
            .unwrap();
        rt.wait_quiescent().unwrap();
    }
    let samples = Arc::try_unwrap(samples).unwrap().into_inner();
    assert_eq!(samples.len(), ROUNDS);
    assert_prompt("enqueue from main", samples);
}

/// A running task body satisfies the event a pending task waits on, while
/// every *other* worker is parked. The release path runs inside a worker
/// (`satisfy_event` → `enqueue_ready` → targeted unpark), which is the
/// common case in real graphs.
#[test]
fn wakeup_from_task_body_is_prompt() {
    let rt = Runtime::start(RuntimeConfig::new("wakeup-body", tiny())).unwrap();
    let samples = Arc::new(Mutex::new(Vec::with_capacity(ROUNDS)));
    for round in 0..ROUNDS {
        let ev = rt.new_once_event();
        let started = Arc::new(Mutex::new(None::<Instant>));
        // Consumer: pending until `ev` satisfies; records its start delay.
        {
            let started = started.clone();
            let samples = samples.clone();
            rt.task(&format!("consumer-{round}"))
                .depends_on(&ev)
                .body(move |_| {
                    let t0 = started.lock().expect("producer stamped t0");
                    samples.lock().push(t0.elapsed());
                })
                .spawn()
                .unwrap();
        }
        // Producer: naps long enough for its siblings to park, then
        // releases the consumer. The nap keeps this round honest — with
        // other workers still spinning down from the previous round the
        // consumer could be grabbed without any unpark happening.
        {
            let ev = ev.clone();
            rt.task(&format!("producer-{round}"))
                .body(move |ctx| {
                    std::thread::sleep(Duration::from_micros(500));
                    *started.lock() = Some(Instant::now());
                    ctx.satisfy(&ev);
                })
                .spawn()
                .unwrap();
        }
        rt.wait_quiescent().unwrap();
    }
    let samples = Arc::try_unwrap(samples).unwrap().into_inner();
    assert_eq!(samples.len(), ROUNDS);
    assert_prompt("enqueue from task body", samples);
}
