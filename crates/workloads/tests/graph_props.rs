//! Property-based tests for the iterative-graph builder: any shape runs
//! to completion with exactly the expected task counts, under arbitrary
//! placement policies.

use coop_runtime::{Runtime, RuntimeConfig};
use coop_workloads::graphs::{GraphPlacement, IterativeGraph};
use numa_topology::presets::tiny;
use numa_topology::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_shape_completes_exactly(
        iterations in 0usize..6,
        width in 1usize..7,
        placement in 0u8..3,
    ) {
        let machine = tiny();
        let rt = Runtime::start(RuntimeConfig::new("prop-graph", machine)).unwrap();
        let g = IterativeGraph::new(iterations, width, 200).with_placement(match placement {
            0 => GraphPlacement::Unpinned,
            1 => GraphPlacement::RoundRobin,
            _ => GraphPlacement::SingleNode(NodeId(placement as usize % 2)),
        });
        let stats = g.run(&rt).unwrap();
        prop_assert_eq!(stats.tasks_run, (iterations * width) as u64);
        prop_assert_eq!(stats.rounds_done, iterations as u64);
        // Worker tasks + one join task per round.
        prop_assert_eq!(
            rt.stats().tasks_executed,
            (iterations * width + iterations) as u64
        );
        rt.shutdown();
    }

    /// Running two graphs concurrently on one runtime interleaves safely.
    #[test]
    fn concurrent_graphs_share_a_runtime(
        w1 in 1usize..5,
        w2 in 1usize..5,
    ) {
        let rt = Runtime::start(RuntimeConfig::new("dual", tiny())).unwrap();
        let g1 = IterativeGraph::new(3, w1, 200);
        let g2 = IterativeGraph::new(2, w2, 200).with_placement(GraphPlacement::RoundRobin);
        let (d1, t1, _) = g1.spawn(&rt).unwrap();
        let (d2, t2, _) = g2.spawn(&rt).unwrap();
        rt.wait_quiescent().unwrap();
        prop_assert!(d1.is_satisfied());
        prop_assert!(d2.is_satisfied());
        prop_assert_eq!(t1.load(std::sync::atomic::Ordering::Relaxed), (3 * w1) as u64);
        prop_assert_eq!(t2.load(std::sync::atomic::Ordering::Relaxed), (2 * w2) as u64);
        rt.shutdown();
    }
}
