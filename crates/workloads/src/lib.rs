//! # coop-workloads
//!
//! Workloads for the `numa-coop` reproduction: the synthetic kernels of the
//! paper's §III.B benchmark, the exact application mixes of its evaluation
//! scenarios, the producer-consumer pipeline of its Figure 1 / SBAC-PAD'18
//! experiment, and seeded random workload generators for the ablation
//! benches.
//!
//! * [`kernels`] — actually-executable micro-kernels (STREAM-like triad,
//!   FMA compute loop, dependent-load pointer chase) with measured GFLOPS
//!   and bandwidth, used by the examples to demonstrate the library on the
//!   host machine.
//! * [`apps`] — the paper's application mixes as reusable constructors, so
//!   benches, tests and examples all agree on what "the Table I apps" are.
//! * [`pipeline`] — a two-runtime producer-consumer pipeline whose
//!   intermediate-queue depth ("the producer is only ahead by a small
//!   number of iterations") is the quantity the paper's agent controls.
//! * [`graphs`] — structured iterative fork-join task graphs (the BSP
//!   shape the paper's applications have).
//! * [`generator`] — seeded random machines and application mixes for
//!   search/solver stress tests and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod generator;
pub mod graphs;
pub mod kernels;
pub mod pipeline;
