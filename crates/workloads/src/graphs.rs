//! Structured iterative task graphs.
//!
//! The paper's applications are iterative: "each iteration consists
//! internally of multiple tasks that can be executed in parallel"
//! (§II). [`IterativeGraph`] builds exactly that shape on a
//! [`coop_runtime::Runtime`]: `iterations` rounds of `width` parallel
//! tasks, each round joined by a latch that releases the next — a
//! task-based BSP step, with optional NUMA placement of each round's
//! tasks. The whole graph is spawned eagerly; the runtime's dependency
//! tracking provides the barriers, so the graph advances without any
//! driver thread.

use crate::kernels::spin_work;
use coop_runtime::{Event, Runtime};
use numa_topology::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where each round's tasks are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphPlacement {
    /// No affinity hints.
    Unpinned,
    /// Round `i`'s tasks are hinted to node `i % num_nodes` (a rotating
    /// wavefront).
    RoundRobin,
    /// Every task hinted to one node (a NUMA-resident solver).
    SingleNode(NodeId),
}

/// An iterative fork-join graph description.
#[derive(Debug, Clone)]
pub struct IterativeGraph {
    /// Number of barrier-joined rounds.
    pub iterations: usize,
    /// Parallel tasks per round.
    pub width: usize,
    /// FMA steps each task performs (deterministic work knob).
    pub work_per_task: usize,
    /// Placement policy.
    pub placement: GraphPlacement,
}

/// Counters produced by a finished graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Tasks that executed (should equal `iterations * width`).
    pub tasks_run: u64,
    /// Rounds completed.
    pub rounds_done: u64,
}

impl IterativeGraph {
    /// A graph with the given shape and no placement hints.
    pub fn new(iterations: usize, width: usize, work_per_task: usize) -> Self {
        IterativeGraph {
            iterations,
            width,
            work_per_task,
            placement: GraphPlacement::Unpinned,
        }
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, placement: GraphPlacement) -> Self {
        self.placement = placement;
        self
    }

    fn node_for_round(&self, round: usize, num_nodes: usize) -> Option<NodeId> {
        match self.placement {
            GraphPlacement::Unpinned => None,
            GraphPlacement::RoundRobin => Some(NodeId(round % num_nodes)),
            GraphPlacement::SingleNode(n) => Some(n),
        }
    }

    /// Spawns the whole graph onto `rt`. Returns the event satisfied when
    /// the final round completes, plus shared counters. Non-blocking:
    /// combine with [`Runtime::wait_quiescent`] or
    /// [`Runtime::help_until`].
    pub fn spawn(
        &self,
        rt: &Runtime,
    ) -> coop_runtime::Result<(Event, Arc<AtomicU64>, Arc<AtomicU64>)> {
        let num_nodes = rt.machine().num_nodes();
        let tasks_run = Arc::new(AtomicU64::new(0));
        let rounds_done = Arc::new(AtomicU64::new(0));
        let done = rt.new_once_event();

        let mut prev_join: Option<Event> = None;
        for round in 0..self.iterations {
            let join = rt.new_latch_event(self.width as u64);
            let node = self.node_for_round(round, num_nodes);
            for t in 0..self.width {
                let mut builder = rt.task(&format!("r{round}t{t}"));
                if let Some(n) = node {
                    builder = builder.affinity(n);
                }
                if let Some(prev) = &prev_join {
                    builder = builder.depends_on(prev);
                }
                let join = join.clone();
                let work = self.work_per_task;
                let tasks_run = Arc::clone(&tasks_run);
                builder
                    .body(move |ctx| {
                        spin_work(work);
                        tasks_run.fetch_add(1, Ordering::Relaxed);
                        ctx.satisfy(&join);
                    })
                    .spawn()?;
            }
            // Round bookkeeping task: bumps the round counter; the final
            // one also satisfies `done`.
            let rounds_done2 = Arc::clone(&rounds_done);
            let is_last = round + 1 == self.iterations;
            let done2 = done.clone();
            rt.task(&format!("r{round}-join"))
                .depends_on(&join)
                .body(move |ctx| {
                    rounds_done2.fetch_add(1, Ordering::Relaxed);
                    if is_last {
                        ctx.satisfy(&done2);
                    }
                })
                .spawn()?;
            prev_join = Some(join);
        }
        if self.iterations == 0 {
            rt.satisfy(&done)?;
        }
        Ok((done, tasks_run, rounds_done))
    }

    /// Spawns the graph and blocks until it finishes.
    pub fn run(&self, rt: &Runtime) -> coop_runtime::Result<GraphStats> {
        let (done, tasks_run, rounds_done) = self.spawn(rt)?;
        rt.wait_quiescent()?;
        debug_assert!(done.is_satisfied());
        Ok(GraphStats {
            tasks_run: tasks_run.load(Ordering::Relaxed),
            rounds_done: rounds_done.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_runtime::{RuntimeConfig, ThreadCommand};
    use numa_topology::presets::tiny;
    use std::time::Duration;

    #[test]
    fn runs_all_rounds_and_tasks() {
        let rt = Runtime::start(RuntimeConfig::new("bsp", tiny())).unwrap();
        let stats = IterativeGraph::new(6, 5, 500).run(&rt).unwrap();
        assert_eq!(stats.tasks_run, 30);
        assert_eq!(stats.rounds_done, 6);
        assert_eq!(rt.stats().tasks_executed, 30 + 6);
        rt.shutdown();
    }

    #[test]
    fn rounds_are_ordered_barriers() {
        // With one worker thread, every round must fully finish before the
        // next round's tasks run: verify via a shared sequence check
        // encoded in the rounds counter read inside task bodies.
        let rt = Runtime::start(RuntimeConfig::new("ordered", tiny())).unwrap();
        rt.control().apply(ThreadCommand::TotalThreads(1)).unwrap();
        assert!(rt
            .control()
            .wait_converged(Duration::from_secs(5), |run, _| run == 1));
        let stats = IterativeGraph::new(4, 3, 100).run(&rt).unwrap();
        assert_eq!(stats.tasks_run, 12);
        assert_eq!(stats.rounds_done, 4);
        rt.shutdown();
    }

    #[test]
    fn single_node_placement_is_honoured_without_stealing() {
        let rt = Runtime::start(RuntimeConfig::new("pin", tiny())).unwrap();
        // Freeze node 0 so only node 1 can run; pin the graph to node 1.
        rt.control()
            .apply(ThreadCommand::PerNode(vec![0, 2]))
            .unwrap();
        assert!(rt
            .control()
            .wait_converged(Duration::from_secs(5), |_, per| per == [0, 2]));
        let g =
            IterativeGraph::new(3, 4, 200).with_placement(GraphPlacement::SingleNode(NodeId(1)));
        let stats = g.run(&rt).unwrap();
        assert_eq!(stats.tasks_run, 12);
        // All 12 worker tasks + 3 join tasks ran somewhere on node 1.
        assert_eq!(rt.stats().per_node[0].tasks_executed, 0);
        rt.shutdown();
    }

    #[test]
    fn zero_iteration_graph_finishes_immediately() {
        let rt = Runtime::start(RuntimeConfig::new("empty", tiny())).unwrap();
        let stats = IterativeGraph::new(0, 4, 100).run(&rt).unwrap();
        assert_eq!(stats.tasks_run, 0);
        assert_eq!(stats.rounds_done, 0);
        rt.shutdown();
    }

    #[test]
    fn spawn_is_nonblocking_and_event_fires() {
        let rt = Runtime::start(RuntimeConfig::new("async", tiny())).unwrap();
        let g = IterativeGraph::new(3, 3, 200).with_placement(GraphPlacement::RoundRobin);
        let (done, tasks, _) = g.spawn(&rt).unwrap();
        rt.help_until(&done, NodeId(0));
        assert!(done.is_satisfied());
        assert_eq!(tasks.load(Ordering::Relaxed), 9);
        rt.shutdown();
    }
}
