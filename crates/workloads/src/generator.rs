//! Seeded random machines and application mixes.
//!
//! The ablation benches and stress tests need scenario diversity beyond
//! the paper's fixed mixes; these generators produce it reproducibly.

use numa_topology::{Machine, MachineBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roofline_numa::{AppSpec, ThreadAssignment};

/// Parameters for random machine generation.
#[derive(Debug, Clone)]
pub struct MachineGen {
    /// Inclusive range of NUMA node counts.
    pub nodes: (usize, usize),
    /// Inclusive range of cores per node.
    pub cores: (usize, usize),
    /// Range of per-core peak GFLOPS.
    pub gflops: (f64, f64),
    /// Range of per-node bandwidth, GB/s.
    pub bandwidth: (f64, f64),
    /// Range of link bandwidth, GB/s.
    pub link: (f64, f64),
}

impl Default for MachineGen {
    fn default() -> Self {
        MachineGen {
            nodes: (2, 4),
            cores: (4, 20),
            gflops: (1.0, 50.0),
            bandwidth: (20.0, 150.0),
            link: (5.0, 40.0),
        }
    }
}

impl MachineGen {
    /// Generates a machine from the seed (deterministic).
    pub fn generate(&self, seed: u64) -> Machine {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes = rng.gen_range(self.nodes.0..=self.nodes.1);
        let cores = rng.gen_range(self.cores.0..=self.cores.1);
        MachineBuilder::new()
            .name(&format!("gen-{seed}"))
            .symmetric_nodes(nodes, cores)
            .core_peak_gflops(rng.gen_range(self.gflops.0..=self.gflops.1))
            .node_bandwidth_gbs(rng.gen_range(self.bandwidth.0..=self.bandwidth.1))
            .uniform_link_gbs(rng.gen_range(self.link.0..=self.link.1))
            .build()
            .expect("generated machine is valid")
    }
}

/// Parameters for random application-mix generation.
#[derive(Debug, Clone)]
pub struct AppMixGen {
    /// Inclusive range of application counts.
    pub apps: (usize, usize),
    /// Log2 range of arithmetic intensity: AI drawn as `2^u` with `u`
    /// uniform in this range (covers memory-bound to compute-bound).
    pub log2_ai: (f64, f64),
    /// Probability that an application is NUMA-bad (all data on one node).
    pub numa_bad_prob: f64,
}

impl Default for AppMixGen {
    fn default() -> Self {
        AppMixGen {
            apps: (2, 5),
            log2_ai: (-6.0, 4.0),
            numa_bad_prob: 0.2,
        }
    }
}

impl AppMixGen {
    /// Generates an application mix for `machine` from the seed.
    pub fn generate(&self, machine: &Machine, seed: u64) -> Vec<AppSpec> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let count = rng.gen_range(self.apps.0..=self.apps.1);
        (0..count)
            .map(|i| {
                let ai = 2f64.powf(rng.gen_range(self.log2_ai.0..=self.log2_ai.1));
                if rng.gen_bool(self.numa_bad_prob) {
                    let node = NodeId(rng.gen_range(0..machine.num_nodes()));
                    AppSpec::numa_bad(&format!("bad{i}"), ai, node)
                } else {
                    AppSpec::numa_local(&format!("app{i}"), ai)
                }
            })
            .collect()
    }
}

/// Generates a random valid (non-over-subscribed) assignment for `apps` on
/// `machine`.
pub fn random_assignment(machine: &Machine, num_apps: usize, seed: u64) -> ThreadAssignment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545f4914f6cdd1d);
    let mut a = ThreadAssignment::zero(machine, num_apps);
    for node in machine.node_ids() {
        let mut left = machine.node(node).num_cores();
        for app in 0..num_apps {
            if left == 0 {
                break;
            }
            let take = rng.gen_range(0..=left);
            a.set(app, node, take);
            left -= take;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_are_deterministic_and_valid() {
        let g = MachineGen::default();
        let a = g.generate(1);
        let b = g.generate(1);
        assert_eq!(a, b);
        let c = g.generate(2);
        assert!(a != c || a.name() != c.name());
        assert!(a.num_nodes() >= 2 && a.num_nodes() <= 4);
    }

    #[test]
    fn app_mixes_validate_against_machine() {
        let m = MachineGen::default().generate(3);
        let mix = AppMixGen::default().generate(&m, 7);
        assert!(!mix.is_empty());
        for app in &mix {
            app.validate(&m).unwrap();
        }
        // Deterministic per seed.
        let mix2 = AppMixGen::default().generate(&m, 7);
        assert_eq!(mix, mix2);
    }

    #[test]
    fn random_assignments_validate() {
        let m = MachineGen::default().generate(5);
        for seed in 0..20 {
            let a = random_assignment(&m, 3, seed);
            a.validate(&m).unwrap();
        }
    }

    #[test]
    fn random_assignment_is_solvable() {
        let m = MachineGen::default().generate(9);
        let mix = AppMixGen::default().generate(&m, 9);
        let a = random_assignment(&m, mix.len(), 9);
        let r = roofline_numa::solve(&m, &mix, &a).unwrap();
        assert!(r.total_gflops() >= 0.0);
    }
}
