//! Executable micro-kernels with measured performance.
//!
//! The paper's synthetic benchmark (§III.B) is "a simple synthetic
//! benchmark that can behave like the applications used to evaluate the
//! model" — i.e. a kernel whose arithmetic intensity can be dialed. These
//! kernels provide that on the host machine: a STREAM-style triad for
//! memory-bound behaviour, a register-resident FMA loop for compute-bound
//! behaviour, and a configurable mix. They are used by the examples (real
//! numbers on whatever machine the user runs) and by tests as a smoke
//! check; the scale-model experiments use `memsim`, since CI containers
//! are not 4-socket NUMA servers.

use std::hint::black_box;
use std::time::Instant;

/// Measured outcome of one kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelResult {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes moved to/from the working set (nominal traffic).
    pub bytes: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl KernelResult {
    /// Achieved GFLOPS.
    pub fn gflops(&self) -> f64 {
        self.flops / self.seconds / 1e9
    }

    /// Achieved GB/s of nominal traffic.
    pub fn gbs(&self) -> f64 {
        self.bytes / self.seconds / 1e9
    }

    /// Nominal arithmetic intensity (FLOP/byte).
    pub fn ai(&self) -> f64 {
        self.flops / self.bytes
    }
}

/// STREAM-style triad: `a[i] = b[i] + s * c[i]` over `n` doubles,
/// repeated `iters` times. 2 FLOP and 24 bytes per element — AI = 1/12,
/// firmly memory-bound for any working set beyond cache.
pub fn stream_triad(n: usize, iters: usize) -> KernelResult {
    let mut a = vec![0.0f64; n];
    let b = vec![1.5f64; n];
    let c = vec![2.5f64; n];
    let s = 3.0f64;
    let start = Instant::now();
    for _ in 0..iters {
        for i in 0..n {
            a[i] = b[i] + s * c[i];
        }
        black_box(&mut a);
    }
    let seconds = start.elapsed().as_secs_f64();
    KernelResult {
        flops: (2 * n * iters) as f64,
        bytes: (24 * n * iters) as f64,
        seconds,
    }
}

/// Register-resident FMA chain: `acc = acc * x + y`, `n` times across 8
/// independent accumulators (to expose ILP). 2 FLOP per step, essentially
/// zero memory traffic — compute-bound.
pub fn fma_kernel(n: usize) -> KernelResult {
    let mut acc = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
    let x = 1.000000001f64;
    let y = 1e-9f64;
    let start = Instant::now();
    let steps = n / 8;
    for _ in 0..steps {
        for a in acc.iter_mut() {
            *a = a.mul_add(x, y);
        }
    }
    black_box(&mut acc);
    let seconds = start.elapsed().as_secs_f64();
    KernelResult {
        flops: (2 * steps * 8) as f64,
        // Nominal traffic of the accumulator registers only; effectively 0,
        // but keep a token count so ai() stays finite.
        bytes: 64.0,
        seconds,
    }
}

/// A mixed kernel approximating a target arithmetic intensity: per element
/// it performs the triad memory traffic plus `extra_flops` additional FMAs
/// on register data. `AI = (2 + 2 * extra_flops) / 24`.
pub fn mixed_kernel(n: usize, iters: usize, extra_flops: usize) -> KernelResult {
    let mut a = vec![0.0f64; n];
    let b = vec![1.5f64; n];
    let c = vec![2.5f64; n];
    let s = 3.0f64;
    let x = 1.000000001f64;
    let start = Instant::now();
    for _ in 0..iters {
        for i in 0..n {
            let mut v = b[i] + s * c[i];
            for _ in 0..extra_flops {
                v = v.mul_add(x, 1e-12);
            }
            a[i] = v;
        }
        black_box(&mut a);
    }
    let seconds = start.elapsed().as_secs_f64();
    KernelResult {
        flops: ((2 + 2 * extra_flops) * n * iters) as f64,
        bytes: (24 * n * iters) as f64,
        seconds,
    }
}

/// Dependent-load pointer chase over a shuffled permutation of `n` slots —
/// latency-bound, the worst case for remote NUMA access. Returns the
/// traversal result to defeat dead-code elimination.
pub fn pointer_chase(n: usize, steps: usize, seed: u64) -> (KernelResult, usize) {
    // Build a random cycle with a simple seeded LCG shuffle (no rand
    // dependency needed for a kernel).
    let mut perm: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    // next[perm[i]] = perm[(i+1) % n] forms a single cycle.
    let mut next = vec![0usize; n];
    for i in 0..n {
        next[perm[i]] = perm[(i + 1) % n];
    }
    let mut pos = perm[0];
    let start = Instant::now();
    for _ in 0..steps {
        pos = next[pos];
    }
    let seconds = start.elapsed().as_secs_f64();
    (
        KernelResult {
            flops: 0.0,
            bytes: (steps * std::mem::size_of::<usize>()) as f64,
            seconds,
        },
        black_box(pos),
    )
}

/// A small fixed amount of compute work (FMA steps) for task bodies in the
/// pipeline and runtime tests — deterministic duration scaling without
/// timers inside the task.
pub fn spin_work(fma_steps: usize) -> f64 {
    let mut acc = 1.0f64;
    let x = 1.000000001f64;
    for _ in 0..fma_steps {
        acc = acc.mul_add(x, 1e-12);
    }
    black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_reports_consistent_ai() {
        let r = stream_triad(1 << 12, 4);
        assert!((r.ai() - 1.0 / 12.0).abs() < 1e-12);
        assert!(r.seconds > 0.0);
        assert!(r.gflops() > 0.0);
        assert!(r.gbs() > 0.0);
    }

    #[test]
    fn fma_is_compute_bound() {
        let r = fma_kernel(1 << 16);
        assert!(r.ai() > 100.0, "fma kernel should have huge AI");
        assert!(r.gflops() > 0.0);
    }

    #[test]
    fn mixed_kernel_dials_ai() {
        let low = mixed_kernel(1 << 10, 2, 0);
        let high = mixed_kernel(1 << 10, 2, 16);
        assert!((low.ai() - 2.0 / 24.0).abs() < 1e-12);
        assert!((high.ai() - 34.0 / 24.0).abs() < 1e-12);
        assert!(high.ai() > low.ai());
    }

    #[test]
    fn pointer_chase_touches_every_step() {
        let (r, pos) = pointer_chase(1 << 10, 1 << 12, 42);
        assert!(pos < 1 << 10);
        assert_eq!(r.flops, 0.0);
        assert!(r.bytes > 0.0);
    }

    #[test]
    fn pointer_chase_is_deterministic_per_seed() {
        let (_, a) = pointer_chase(256, 1000, 7);
        let (_, b) = pointer_chase(256, 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn spin_work_returns_finite() {
        let v = spin_work(1000);
        assert!(v.is_finite() && v > 1.0);
    }
}
