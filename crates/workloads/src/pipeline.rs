//! The producer-consumer pipeline of Figure 1 / the authors' SBAC-PAD'18
//! experiment.
//!
//! "We used a simple producer-consumer scenario, where one application
//! produces one data item per iteration and another application consumes
//! one such item per iteration. Each iteration consists internally of
//! multiple tasks that can be executed in parallel. We have used a
//! dedicated agent process to coordinate their execution ... so that the
//! producer is only ahead by a small number of iterations."
//!
//! [`run_pipeline`] runs exactly that on two [`coop_runtime::Runtime`]s:
//! each producer iteration fans out `tasks_per_iteration` parallel tasks,
//! joins them with a latch, and deposits one item (a data block's worth of
//! bytes) into a shared intermediate queue; the consumer mirrors this. The
//! per-application driver threads are deliberately *non-worker* threads
//! (the paper's §IV: the "main thread" pattern of TBB-style codes).
//!
//! The report includes the queue-depth ("lead") time series — the quantity
//! the paper's storage-size observation is about — so callers (and the
//! `fig1_pipeline` bench) can compare uncontrolled execution against
//! agent-throttled execution.

use crate::kernels::spin_work;
use coop_runtime::Runtime;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of items the producer creates (and the consumer consumes).
    pub iterations: usize,
    /// Parallel tasks per iteration, each doing `work_per_task` FMA steps.
    pub tasks_per_iteration: usize,
    /// FMA steps per task (controls task duration deterministically).
    pub work_per_task: usize,
    /// Size of each produced item in bytes (intermediate-data footprint).
    pub item_bytes: usize,
    /// Extra FMA steps per consumer task relative to producer tasks —
    /// > 1.0 makes the consumer slower, letting the queue grow (the
    /// > regime where the paper's agent helps).
    pub consumer_work_factor: f64,
    /// Queue-depth sampling interval.
    pub sample_interval: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            iterations: 50,
            tasks_per_iteration: 8,
            work_per_task: 20_000,
            item_bytes: 1 << 16,
            consumer_work_factor: 1.0,
            sample_interval: Duration::from_micros(500),
        }
    }
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Items produced.
    pub produced: u64,
    /// Items consumed.
    pub consumed: u64,
    /// Wall-clock duration of the whole pipeline.
    pub duration: Duration,
    /// Items per second consumed (end-to-end throughput).
    pub throughput: f64,
    /// Sampled intermediate-queue depths.
    pub lead_series: Vec<usize>,
    /// Maximum observed queue depth.
    pub max_lead: usize,
    /// Mean observed queue depth (the intermediate-data footprint proxy).
    pub mean_lead: f64,
    /// Peak intermediate data held in the queue, bytes.
    pub peak_intermediate_bytes: usize,
}

struct Queue {
    items: Mutex<Vec<Vec<u8>>>,
    cv: Condvar,
}

impl Queue {
    fn push(&self, item: Vec<u8>) {
        self.items.lock().push(item);
        self.cv.notify_all();
    }

    fn pop_blocking(&self, stop: &AtomicBool) -> Option<Vec<u8>> {
        let mut items = self.items.lock();
        loop {
            if let Some(item) = items.pop() {
                return Some(item);
            }
            if stop.load(Ordering::Acquire) {
                return None;
            }
            self.cv.wait_for(&mut items, Duration::from_millis(1));
        }
    }

    fn len(&self) -> usize {
        self.items.lock().len()
    }
}

/// Runs the producer-consumer pipeline on the two runtimes and reports
/// throughput and queue-depth statistics. The runtimes' `produced` /
/// `consumed` user counters are updated live, so an agent polling
/// [`Runtime::stats`] can throttle the producer while this runs.
pub fn run_pipeline(
    producer: &Runtime,
    consumer: &Runtime,
    config: &PipelineConfig,
) -> PipelineReport {
    let queue = Arc::new(Queue {
        items: Mutex::new(Vec::new()),
        cv: Condvar::new(),
    });
    let producer_done = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    // Queue-depth sampler (a non-worker observer thread).
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&sampler_stop);
        let interval = config.sample_interval;
        std::thread::spawn(move || {
            let mut series = Vec::new();
            while !stop.load(Ordering::Acquire) {
                series.push(queue.len());
                std::thread::sleep(interval);
            }
            series
        })
    };

    std::thread::scope(|scope| {
        // Producer driver: a non-worker "main thread" per §IV.
        scope.spawn(|| {
            for _ in 0..config.iterations {
                let latch = producer.new_latch_event(config.tasks_per_iteration as u64);
                for t in 0..config.tasks_per_iteration {
                    let latch = latch.clone();
                    let work = config.work_per_task;
                    producer
                        .task(&format!("produce-part{t}"))
                        .body(move |ctx| {
                            spin_work(work);
                            ctx.satisfy(&latch);
                        })
                        .spawn()
                        .expect("producer runtime alive");
                }
                // Finalizer deposits the item once all parts are done.
                let (_, finish) = {
                    let queue = Arc::clone(&queue);
                    let bytes = config.item_bytes;
                    producer
                        .task("produce-finalize")
                        .depends_on(&latch)
                        .body(move |ctx| {
                            queue.push(vec![0u8; bytes]);
                            ctx.inc_counter("produced", 1);
                        })
                        .spawn_with_finish()
                        .expect("producer runtime alive")
                };
                // The driver paces itself on iteration completion (the
                // paper's producer produces one item per iteration).
                while !finish.is_satisfied() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            producer_done.store(true, Ordering::Release);
            queue.cv.notify_all();
        });

        // Consumer driver.
        scope.spawn(|| {
            let consumer_work =
                (config.work_per_task as f64 * config.consumer_work_factor) as usize;
            for _ in 0..config.iterations {
                let Some(item) = queue.pop_blocking(&producer_done) else {
                    break;
                };
                let latch = consumer.new_latch_event(config.tasks_per_iteration as u64);
                let item = Arc::new(item);
                for t in 0..config.tasks_per_iteration {
                    let latch = latch.clone();
                    let item = Arc::clone(&item);
                    consumer
                        .task(&format!("consume-part{t}"))
                        .body(move |ctx| {
                            // Touch the item (checksum) then compute.
                            let sum: u64 = item.iter().map(|&b| b as u64).sum();
                            std::hint::black_box(sum);
                            spin_work(consumer_work);
                            ctx.satisfy(&latch);
                        })
                        .spawn()
                        .expect("consumer runtime alive");
                }
                let (_, finish) = consumer
                    .task("consume-finalize")
                    .depends_on(&latch)
                    .body(move |ctx| {
                        ctx.inc_counter("consumed", 1);
                    })
                    .spawn_with_finish()
                    .expect("consumer runtime alive");
                while !finish.is_satisfied() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        });
    });

    sampler_stop.store(true, Ordering::Release);
    let lead_series = sampler.join().expect("sampler thread");
    let duration = start.elapsed();

    let produced = producer.stats().user_counter("produced");
    let consumed = consumer.stats().user_counter("consumed");
    let max_lead = lead_series.iter().copied().max().unwrap_or(0);
    let mean_lead = if lead_series.is_empty() {
        0.0
    } else {
        lead_series.iter().sum::<usize>() as f64 / lead_series.len() as f64
    };
    PipelineReport {
        produced,
        consumed,
        duration,
        throughput: consumed as f64 / duration.as_secs_f64(),
        max_lead,
        mean_lead,
        peak_intermediate_bytes: max_lead * config.item_bytes,
        lead_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coop_runtime::{RuntimeConfig, ThreadCommand};
    use numa_topology::presets::tiny;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            iterations: 12,
            tasks_per_iteration: 4,
            work_per_task: 2_000,
            item_bytes: 1 << 10,
            consumer_work_factor: 1.0,
            sample_interval: Duration::from_micros(200),
        }
    }

    #[test]
    fn pipeline_completes_all_items() {
        let producer = Runtime::start(RuntimeConfig::new("prod", tiny())).unwrap();
        let consumer = Runtime::start(RuntimeConfig::new("cons", tiny())).unwrap();
        let report = run_pipeline(&producer, &consumer, &small_config());
        assert_eq!(report.produced, 12);
        assert_eq!(report.consumed, 12);
        assert!(report.throughput > 0.0);
        assert_eq!(producer.stats().tasks_executed, 12 * 5);
        assert_eq!(consumer.stats().tasks_executed, 12 * 5);
        producer.shutdown();
        consumer.shutdown();
    }

    #[test]
    fn slow_consumer_grows_the_queue() {
        let producer = Runtime::start(RuntimeConfig::new("prod", tiny())).unwrap();
        let consumer = Runtime::start(RuntimeConfig::new("cons", tiny())).unwrap();
        // Throttle the consumer's runtime to one thread and make its tasks
        // heavier: the intermediate queue must build up.
        consumer
            .control()
            .apply(ThreadCommand::TotalThreads(1))
            .unwrap();
        let mut cfg = small_config();
        cfg.consumer_work_factor = 4.0;
        cfg.iterations = 16;
        let report = run_pipeline(&producer, &consumer, &cfg);
        assert_eq!(report.consumed, 16);
        assert!(
            report.max_lead >= 2,
            "slow consumer should let the queue grow, max_lead = {}",
            report.max_lead
        );
        producer.shutdown();
        consumer.shutdown();
    }

    #[test]
    fn counters_visible_during_run() {
        let producer = Runtime::start(RuntimeConfig::new("prod", tiny())).unwrap();
        let consumer = Runtime::start(RuntimeConfig::new("cons", tiny())).unwrap();
        let report = run_pipeline(&producer, &consumer, &small_config());
        // After the run the counters match the report.
        assert_eq!(producer.stats().user_counter("produced"), report.produced);
        assert_eq!(consumer.stats().user_counter("consumed"), report.consumed);
        assert!(!report.lead_series.is_empty());
        assert!(report.peak_intermediate_bytes >= report.max_lead);
        producer.shutdown();
        consumer.shutdown();
    }
}
