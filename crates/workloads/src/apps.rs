//! The paper's application mixes, as shared constructors.
//!
//! Every evaluation scenario in the paper uses one of two mixes:
//!
//! * **Model mix** (§III.A, Tables I/II, Figure 2): three memory-bound
//!   applications with AI = 0.5 and one compute-bound with AI = 10.
//! * **Cross-node mix** (Figure 3): three NUMA-perfect AI = 0.5
//!   applications and one NUMA-bad AI = 1 application.
//! * **Skylake mix** (§III.B, Table III): AI = 1/32 memory-bound,
//!   AI = 1 compute-bound, AI = 1/16 NUMA-bad.
//!
//! Keeping them here means the solver tests, the benches, and the examples
//! can never drift apart on what the scenarios are.

use memsim::SimApp;
use numa_topology::NodeId;
use roofline_numa::AppSpec;

/// The §III.A model mix: `[mem1, mem2, mem3 (AI=0.5), comp (AI=10)]`.
pub fn model_mix() -> Vec<AppSpec> {
    vec![
        AppSpec::numa_local("mem1", 0.5),
        AppSpec::numa_local("mem2", 0.5),
        AppSpec::numa_local("mem3", 0.5),
        AppSpec::numa_local("comp", 10.0),
    ]
}

/// The Figure 3 mix: three NUMA-perfect AI=0.5 apps and one NUMA-bad AI=1
/// app whose data lives on `bad_node`.
pub fn crossnode_mix(bad_node: NodeId) -> Vec<AppSpec> {
    vec![
        AppSpec::numa_local("perf1", 0.5),
        AppSpec::numa_local("perf2", 0.5),
        AppSpec::numa_local("perf3", 0.5),
        AppSpec::numa_bad("bad", 1.0, bad_node),
    ]
}

/// The Table III NUMA-local mix: three AI=1/32 memory-bound apps and one
/// AI=1 compute-bound app.
pub fn skylake_mix() -> Vec<AppSpec> {
    vec![
        AppSpec::numa_local("mem1", 1.0 / 32.0),
        AppSpec::numa_local("mem2", 1.0 / 32.0),
        AppSpec::numa_local("mem3", 1.0 / 32.0),
        AppSpec::numa_local("comp", 1.0),
    ]
}

/// The Table III NUMA-bad mix: three AI=1/32 memory-bound apps and one
/// AI=1/16 NUMA-bad app with data on `bad_node`.
pub fn skylake_bad_mix(bad_node: NodeId) -> Vec<AppSpec> {
    vec![
        AppSpec::numa_local("mem1", 1.0 / 32.0),
        AppSpec::numa_local("mem2", 1.0 / 32.0),
        AppSpec::numa_local("mem3", 1.0 / 32.0),
        AppSpec::numa_bad("bad", 1.0 / 16.0, bad_node),
    ]
}

/// Wraps model-level specs into simulator apps (always-on, perfect
/// scaling). Use [`sim_apps_with_sync`] to add synchronization overhead.
pub fn sim_apps(specs: &[AppSpec]) -> Vec<SimApp> {
    specs
        .iter()
        .map(|s| SimApp {
            spec: s.clone(),
            activity: memsim::ActivityPattern::AlwaysOn,
            sync_overhead: 0.0,
        })
        .collect()
}

/// Like [`sim_apps`], with a per-app synchronization-overhead coefficient
/// (`alphas[i]` applies to `specs[i]`).
pub fn sim_apps_with_sync(specs: &[AppSpec], alphas: &[f64]) -> Vec<SimApp> {
    specs
        .iter()
        .zip(alphas)
        .map(|(s, &a)| SimApp {
            spec: s.clone(),
            activity: memsim::ActivityPattern::AlwaysOn,
            sync_overhead: a,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::{paper_model_machine, paper_skylake_machine};
    use roofline_numa::{solve, ThreadAssignment};

    #[test]
    fn model_mix_reproduces_table_1() {
        let m = paper_model_machine();
        let a = ThreadAssignment::uniform_per_node(&m, &[1, 1, 1, 5]);
        let r = solve(&m, &model_mix(), &a).unwrap();
        assert!((r.total_gflops() - 254.0).abs() < 1e-9);
    }

    #[test]
    fn skylake_mix_reproduces_table_3_row_2() {
        let m = paper_skylake_machine();
        let a = ThreadAssignment::uniform_per_node(&m, &[5, 5, 5, 5]);
        let r = solve(&m, &skylake_mix(), &a).unwrap();
        assert!((r.total_gflops() - 18.12).abs() < 5e-3);
    }

    #[test]
    fn sim_wrappers_preserve_specs() {
        let specs = crossnode_mix(NodeId(3));
        let sims = sim_apps(&specs);
        assert_eq!(sims.len(), 4);
        for (sim, spec) in sims.iter().zip(&specs) {
            assert_eq!(&sim.spec, spec);
            assert_eq!(sim.sync_overhead, 0.0);
        }
        let with_sync = sim_apps_with_sync(&specs, &[0.0, 0.0, 0.0, 0.01]);
        assert_eq!(with_sync[3].sync_overhead, 0.01);
    }
}
