//! The time-stepped execution engine.
//!
//! Each quantum: determine which threads are runnable (activity patterns +
//! over-subscription time-slicing), compute each thread's compute capacity
//! (peak x duty x switch loss x sync-overhead x jitter), derive its memory
//! demand, arbitrate every node's bandwidth (remote-first, then baseline +
//! proportional remainder — the same two-phase rule as the analytic model,
//! but per-thread and with the effect model applied), and bank the
//! resulting floating-point work.

use crate::result::AppSeries;
use crate::{EngineKind, EventLog, SimApp, SimConfig, SimError, SimResult};
use coop_telemetry::{
    hop, hop_args, ArgValue, Counter, EventKind, Histogram, TelemetryHub, TimelineEvent, TrackId,
    TRACE_CAT,
};
use numa_topology::{Machine, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roofline_numa::ThreadAssignment;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many quanta are aggregated into one timeline sample.
const SAMPLE_EVERY: usize = 10;

/// Synthetic epoch tasks draw ids from one process-wide counter: every
/// simulation run on a hub shares the deduplicated "memsim" track, so ids
/// must be unique across runs for the assembler to keep tasks apart.
static NEXT_TRACE_TASK: AtomicU64 = AtomicU64::new(1);

/// A configured simulator. Cheap to clone (owns only the config and an
/// optional handle to a shared telemetry hub).
#[derive(Debug, Clone)]
pub struct Simulation {
    pub(crate) config: SimConfig,
    pub(crate) telemetry: Option<Arc<TelemetryHub>>,
    pub(crate) tracing: bool,
    pub(crate) time_base_us: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Thread {
    pub(crate) app: usize,
    pub(crate) home: NodeId,
}

/// Telemetry handles resolved once per `run_dynamic` call. Simulated time
/// is mapped onto the hub clock as `base_us + t * 1e6`, where `base_us` is
/// the hub time when the run started (or an explicit anchor supplied via
/// [`Simulation::with_time_base`]) — so memsim samples interleave correctly
/// with runtime/agent events recorded during the same wall-clock window,
/// and multi-run callers like the supervisor can keep every run on one
/// consistent simulated clock instead of re-anchoring to the wall per run.
pub(crate) struct SimTelemetry {
    hub: Arc<TelemetryHub>,
    track: TrackId,
    base_us: u64,
    assignment_switches: Arc<Counter>,
    shard_barriers: Arc<Counter>,
    horizon_stalls: Arc<Counter>,
    pub(crate) rotations: Vec<Arc<Counter>>,
    util_pct: Vec<Arc<Histogram>>,
}

impl SimTelemetry {
    pub(crate) fn new(
        hub: &Arc<TelemetryHub>,
        machine: &numa_topology::Machine,
        base_us: Option<u64>,
    ) -> Self {
        let track = hub.register_track("memsim");
        hub.set_lane_name(track, 0, "scheduler");
        let reg = hub.registry();
        reg.set_help(
            "memsim_node_bandwidth_gbs",
            "Average delivered bandwidth per memory controller over the last sample window",
        );
        reg.set_help(
            "memsim_node_utilization",
            "End-of-run memory-controller utilization (delivered / nominal), per node",
        );
        reg.set_help(
            "memsim_node_utilization_pct",
            "Per-sample memory-controller utilization, percent",
        );
        reg.set_help(
            "memsim_sched_switches_total",
            "OS-scheduler context-switch quanta (round-robin rotations under over-subscription), per node",
        );
        reg.set_help(
            "memsim_assignment_switches_total",
            "Dynamic-schedule assignment changes applied during the run",
        );
        reg.set_help(
            "memsim_shard_barriers_total",
            "Safe-horizon barrier crossings performed by the parallel event engine",
        );
        reg.set_help(
            "memsim_horizon_stalls_total",
            "Shard-segments advanced purely by the safe horizon (the shard had no event of its own at the horizon tick)",
        );
        let num_nodes = machine.num_nodes();
        let mut rotations = Vec::with_capacity(num_nodes);
        let mut util_pct = Vec::with_capacity(num_nodes);
        for n in 0..num_nodes {
            hub.set_lane_name(track, n as u32 + 1, &format!("node {n} bandwidth"));
            let node = n.to_string();
            rotations.push(reg.counter("memsim_sched_switches_total", &[("node", &node)]));
            util_pct.push(reg.histogram("memsim_node_utilization_pct", &[("node", &node)]));
        }
        SimTelemetry {
            track,
            base_us: base_us.unwrap_or_else(|| hub.now_us()),
            assignment_switches: reg.counter("memsim_assignment_switches_total", &[]),
            shard_barriers: reg.counter("memsim_shard_barriers_total", &[]),
            horizon_stalls: reg.counter("memsim_horizon_stalls_total", &[]),
            rotations,
            util_pct,
            hub: Arc::clone(hub),
        }
    }

    /// Simulated seconds → microseconds on the shared hub clock.
    pub(crate) fn ts_us(&self, t_s: f64) -> u64 {
        self.base_us + (t_s * 1e6) as u64
    }

    fn shard(&self) -> usize {
        self.track.0 as usize
    }

    pub(crate) fn record_assignment_switch(&self, t_s: f64, sched_idx: usize) {
        self.assignment_switches.inc();
        self.hub.record(
            self.shard(),
            TimelineEvent {
                track: self.track,
                lane: 0,
                cat: "scheduler".to_string(),
                name: format!("assignment #{sched_idx}"),
                ts_us: self.ts_us(t_s),
                kind: EventKind::Instant,
                args: vec![("t_s".to_string(), ArgValue::F64(t_s))],
            },
        );
    }

    /// Books one safe-horizon segment of the parallel engine: how many
    /// barrier crossings it cost, and how many shards crossed it without an
    /// event of their own (pure LBTS stalls).
    pub(crate) fn record_shard_sync(&self, barriers: u64, stalls: u64) {
        self.shard_barriers.add(barriers);
        self.horizon_stalls.add(stalls);
    }

    pub(crate) fn record_bandwidth_sample(&self, node: usize, mid_s: f64, gbs: f64, utilization: f64) {
        self.util_pct[node].observe((utilization * 100.0).round() as u64);
        self.hub.record_counter(
            self.shard(),
            self.track,
            node as u32 + 1,
            "bandwidth",
            &format!("node{node}_bw_gbs"),
            self.ts_us(mid_s),
            gbs,
            vec![
                ("t_s".to_string(), ArgValue::F64(mid_s)),
                ("utilization".to_string(), ArgValue::F64(utilization)),
            ],
        );
    }

    /// One causal hop in the shared trace schema, at simulated time.
    fn trace_hop(
        &self,
        t_s: f64,
        name: &str,
        task: u64,
        trace: u64,
        extra: Vec<(String, ArgValue)>,
    ) {
        let mut args = hop_args(task, trace);
        args.extend(extra);
        self.hub.record(
            self.shard(),
            TimelineEvent {
                track: self.track,
                lane: 0,
                cat: TRACE_CAT.to_string(),
                name: name.to_string(),
                ts_us: self.ts_us(t_s),
                kind: EventKind::Instant,
                args,
            },
        );
    }

    /// Opens an epoch task: spawned (by the app's previous epoch, when
    /// there is one), enqueued and started on its dominant node, all at
    /// the epoch's start instant (lifecycle order breaks the tie).
    pub(crate) fn trace_epoch_open(
        &self,
        t_s: f64,
        task: u64,
        trace: u64,
        parent: Option<u64>,
        name: &str,
        node: Option<u64>,
    ) {
        let mut extra = vec![("task_name".to_string(), ArgValue::Str(name.to_string()))];
        if let Some(p) = parent {
            extra.push(("parent".to_string(), ArgValue::U64(p)));
        }
        self.trace_hop(t_s, hop::SPAWNED, task, trace, extra);
        let node_arg =
            |node: Option<u64>| node.map(|n| vec![("node".to_string(), ArgValue::U64(n))]);
        self.trace_hop(
            t_s,
            hop::ENQUEUED,
            task,
            trace,
            node_arg(node).unwrap_or_default(),
        );
        self.trace_hop(
            t_s,
            hop::STARTED,
            task,
            trace,
            node_arg(node).unwrap_or_default(),
        );
    }

    pub(crate) fn trace_epoch_close(&self, t_s: f64, task: u64, trace: u64, node: Option<u64>) {
        let extra = node
            .map(|n| vec![("node".to_string(), ArgValue::U64(n))])
            .unwrap_or_default();
        self.trace_hop(t_s, hop::FINISHED, task, trace, extra);
    }

    pub(crate) fn record_run_summary(&self, node_avg_gbs: &[f64], node_utilization: &[f64]) {
        let reg = self.hub.registry();
        for (n, (&gbs, &util)) in node_avg_gbs.iter().zip(node_utilization).enumerate() {
            let node = n.to_string();
            reg.gauge("memsim_node_bandwidth_gbs", &[("node", &node)])
                .set(gbs);
            reg.gauge("memsim_node_utilization", &[("node", &node)])
                .set(util);
        }
    }
}

impl Simulation {
    /// Creates a simulator from a config.
    pub fn new(config: SimConfig) -> Self {
        Simulation {
            config,
            telemetry: None,
            tracing: false,
            time_base_us: None,
        }
    }

    /// Attaches a telemetry hub: runs then publish per-node bandwidth
    /// counter tracks (on the hub's shared clock), scheduler switch
    /// counters, and end-of-run utilization gauges.
    pub fn with_telemetry(mut self, hub: Arc<TelemetryHub>) -> Self {
        self.telemetry = Some(hub);
        self
    }

    /// Enables synthetic causal spans: each app's time under one
    /// assignment epoch becomes a traced task in the runtime's hop schema
    /// (`spawned -> enqueued -> started -> finished`, simulated time
    /// mapped onto the hub clock), with each epoch spawned by the app's
    /// previous epoch — so [`coop_telemetry::TraceAssembler`] reconstructs
    /// a simulated run's reallocation history with the same code that
    /// reconstructs a real runtime's steals. Requires [`with_telemetry`].
    ///
    /// [`with_telemetry`]: Simulation::with_telemetry
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Anchors simulated time onto the hub clock at an explicit base
    /// (microseconds). Without this, every run anchors at the hub's
    /// current wall time when it starts — fine for a single run, but a
    /// caller that performs many back-to-back runs on one simulated clock
    /// (the supervisor's decision ticks) must pass its own anchor so the
    /// emitted timeline carries simulated time, not per-run wall time.
    pub fn with_time_base(mut self, base_us: u64) -> Self {
        self.time_base_us = Some(base_us);
        self
    }

    /// The configured machine.
    pub fn machine(&self) -> &numa_topology::Machine {
        &self.config.machine
    }

    /// Runs `apps` under a fixed `assignment` for `duration_s` seconds.
    pub fn run(
        &self,
        apps: &[SimApp],
        assignment: &ThreadAssignment,
        duration_s: f64,
    ) -> crate::Result<SimResult> {
        self.run_dynamic(apps, &[(0.0, assignment.clone())], duration_s)
    }

    /// Runs `apps` under a time-varying assignment: `schedule` lists
    /// `(start_time_s, assignment)` pairs in ascending time order; each
    /// assignment applies from its start time until the next entry. This is
    /// the mechanism for the paper's dynamic-reallocation scenarios
    /// (library bursts, agent repartitioning).
    ///
    /// Dispatches on [`SimConfig::engine`]: the slice-stepped engine below,
    /// or the discrete-event engine in [`crate::event`].
    pub fn run_dynamic(
        &self,
        apps: &[SimApp],
        schedule: &[(f64, ThreadAssignment)],
        duration_s: f64,
    ) -> crate::Result<SimResult> {
        let mut scratch = RateScratch::default();
        self.run_dynamic_with_scratch(apps, schedule, duration_s, &mut scratch)
    }

    /// `run_dynamic` with caller-owned arbitration buffers: callers that
    /// perform many back-to-back runs (the supervisor's decision ticks)
    /// keep one [`RateScratch`] alive across all of them, so steady-state
    /// ticks do not allocate in the arbitration loop at all.
    pub(crate) fn run_dynamic_with_scratch(
        &self,
        apps: &[SimApp],
        schedule: &[(f64, ThreadAssignment)],
        duration_s: f64,
        scratch: &mut RateScratch,
    ) -> crate::Result<SimResult> {
        match self.config.engine {
            EngineKind::Slice => self.run_dynamic_slice(apps, schedule, duration_s, scratch),
            EngineKind::Event if self.config.sim_threads > 1 => {
                let plan = crate::par::default_plan(&self.config, apps.len(), schedule);
                crate::par::run_dynamic_event_par(self, apps, schedule, duration_s, &plan)
                    .map(|(result, _log)| result)
            }
            EngineKind::Event => {
                crate::event::run_dynamic_event(self, apps, schedule, duration_s, scratch)
                    .map(|(result, _log)| result)
            }
        }
    }

    /// Runs on the discrete-event engine regardless of the configured
    /// [`EngineKind`], returning the result together with the processed
    /// event log (for determinism checks and events/sec accounting).
    /// Honors [`SimConfig::sim_threads`]: more than one worker routes to
    /// the parallel engine, whose log is bit-identical to the
    /// single-threaded one.
    pub fn run_logged(
        &self,
        apps: &[SimApp],
        schedule: &[(f64, ThreadAssignment)],
        duration_s: f64,
    ) -> crate::Result<(SimResult, EventLog)> {
        if self.config.sim_threads > 1 {
            let plan = crate::par::default_plan(&self.config, apps.len(), schedule);
            return crate::par::run_dynamic_event_par(self, apps, schedule, duration_s, &plan);
        }
        let mut scratch = RateScratch::default();
        crate::event::run_dynamic_event(self, apps, schedule, duration_s, &mut scratch)
    }

    /// Runs the parallel event engine under an explicit [`ShardPlan`]
    /// instead of the balanced default — the hook the partition-invariance
    /// tests use to assert that *any* valid partition of components
    /// reproduces the single-threaded log byte for byte.
    pub fn run_logged_with_plan(
        &self,
        apps: &[SimApp],
        schedule: &[(f64, ThreadAssignment)],
        duration_s: f64,
        plan: &crate::ShardPlan,
    ) -> crate::Result<(SimResult, EventLog)> {
        crate::par::run_dynamic_event_par(self, apps, schedule, duration_s, plan)
    }

    /// Shared input validation for both engines.
    pub(crate) fn validate_run(
        &self,
        apps: &[SimApp],
        schedule: &[(f64, ThreadAssignment)],
        duration_s: f64,
    ) -> crate::Result<()> {
        let machine = &self.config.machine;
        let dt = self.config.quantum_s;
        if duration_s <= 0.0 || !duration_s.is_finite() {
            return Err(SimError::BadTime {
                reason: "duration must be positive and finite",
            });
        }
        if dt <= 0.0 || !dt.is_finite() {
            return Err(SimError::BadTime {
                reason: "quantum must be positive and finite",
            });
        }
        if schedule.is_empty() {
            return Err(SimError::BadTime {
                reason: "schedule must contain at least one assignment",
            });
        }
        for app in apps {
            app.spec.validate(machine)?;
        }
        for (_, a) in schedule {
            self.validate_assignment(apps.len(), a)?;
        }
        Ok(())
    }

    fn run_dynamic_slice(
        &self,
        apps: &[SimApp],
        schedule: &[(f64, ThreadAssignment)],
        duration_s: f64,
        scratch: &mut RateScratch,
    ) -> crate::Result<SimResult> {
        self.validate_run(apps, schedule, duration_s)?;
        let machine = &self.config.machine;
        let effects = &self.config.effects;
        let dt = self.config.quantum_s;

        let num_nodes = machine.num_nodes();
        let peak = machine.core_peak_gflops();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let steps = (duration_s / dt).ceil() as usize;
        let mut gflop_done = vec![0.0f64; apps.len()];
        let mut sample_acc = vec![0.0f64; apps.len()];
        let mut series: Vec<AppSeries> = apps
            .iter()
            .map(|a| AppSeries {
                name: a.name().to_string(),
                gflop_done: 0.0,
                times_s: Vec::new(),
                gflops_series: Vec::new(),
            })
            .collect();
        let mut node_gbs_acc = vec![0.0f64; num_nodes];
        let mut node_window_acc = vec![0.0f64; num_nodes];
        let tel = self
            .telemetry
            .as_ref()
            .map(|hub| SimTelemetry::new(hub, machine, self.time_base_us));

        let mut sched_idx = 0usize;
        let mut applied_idx = usize::MAX;
        let mut threads: Vec<Thread> = Vec::new();
        let mut tracer = EpochTracer::new(apps.len());
        // Rotating round-robin offsets for discrete time-slicing.
        let mut rr_offset = vec![0usize; num_nodes];

        for step in 0..steps {
            let t = step as f64 * dt;
            // Advance the schedule.
            while sched_idx + 1 < schedule.len() && schedule[sched_idx + 1].0 <= t {
                sched_idx += 1;
            }
            if sched_idx != applied_idx {
                threads = expand_threads(&schedule[sched_idx].1, num_nodes);
                // The first application is the initial assignment, not a
                // switch; every later change is a reallocation event.
                if applied_idx != usize::MAX {
                    if let Some(tel) = &tel {
                        tel.record_assignment_switch(t, sched_idx);
                    }
                }
                if self.tracing {
                    if let Some(tel) = &tel {
                        tracer.on_assignment(tel, t, sched_idx, &schedule[sched_idx].1, apps);
                    }
                }
                applied_idx = sched_idx;
            }

            // Arbitrate this quantum. Scratch buffers are hoisted out of
            // the loop and reused; `scratch_reuse = false` restores the
            // old allocate-per-step behavior for A/B benchmarking.
            if !self.config.scratch_reuse {
                *scratch = RateScratch::default();
            }
            // Activity is classified at the quantum *midpoint* — the same
            // rule the event engine applies to its segments: a quantum is
            // active iff its interior is, so edges that land exactly on a
            // quantum boundary never hinge on float residue, and
            // off-boundary edges round to the nearest quantum.
            compute_rates(
                machine,
                effects,
                peak,
                apps,
                &threads,
                t + 0.5 * dt,
                effects.discrete_timeslice,
                &mut rng,
                &mut rr_offset,
                tel.as_ref(),
                scratch,
            );
            #[allow(clippy::needless_range_loop)] // node is also a semantic id here
            for target in 0..num_nodes {
                node_gbs_acc[target] += scratch.node_served[target] * dt;
                node_window_acc[target] += scratch.node_served[target] * dt;
            }

            // Bank the work.
            for (i, th) in threads.iter().enumerate() {
                if scratch.cap[i] == 0.0 {
                    continue;
                }
                let gflops = (apps[th.app].spec.ai * scratch.granted[i]).min(scratch.cap[i]);
                gflop_done[th.app] += gflops * dt;
                sample_acc[th.app] += gflops * dt;
            }

            // Timeline sampling.
            if (step + 1) % SAMPLE_EVERY == 0 || step + 1 == steps {
                let window = ((step % SAMPLE_EVERY) + 1) as f64 * dt;
                let mid = t + dt - window / 2.0;
                for (a, s) in series.iter_mut().enumerate() {
                    s.times_s.push(mid);
                    s.gflops_series.push(sample_acc[a] / window);
                    sample_acc[a] = 0.0;
                }
                #[allow(clippy::needless_range_loop)] // node is also a semantic id here
                for node in 0..num_nodes {
                    if let Some(tel) = &tel {
                        let gbs = node_window_acc[node] / window;
                        let util = gbs / machine.node(NodeId(node)).bandwidth_gbs;
                        tel.record_bandwidth_sample(node, mid, gbs, util);
                    }
                    node_window_acc[node] = 0.0;
                }
            }
        }

        let sim_time = steps as f64 * dt;
        for (a, s) in series.iter_mut().enumerate() {
            s.gflop_done = gflop_done[a];
        }
        let node_avg_gbs: Vec<f64> = node_gbs_acc.iter().map(|&g| g / sim_time).collect();
        let node_utilization: Vec<f64> = node_avg_gbs
            .iter()
            .enumerate()
            .map(|(n, &g)| g / machine.node(NodeId(n)).bandwidth_gbs)
            .collect();
        if let Some(tel) = &tel {
            tracer.finish(tel, sim_time);
            tel.record_run_summary(&node_avg_gbs, &node_utilization);
        }

        Ok(SimResult {
            machine: machine.name().to_string(),
            duration_s: sim_time,
            apps: series,
            node_avg_gbs,
            node_utilization,
        })
    }

    fn validate_assignment(
        &self,
        num_apps: usize,
        assignment: &ThreadAssignment,
    ) -> crate::Result<()> {
        let machine = &self.config.machine;
        if assignment.num_apps() != num_apps {
            return Err(SimError::Model(
                roofline_numa::ModelError::AppCountMismatch {
                    specs: num_apps,
                    assignment: assignment.num_apps(),
                },
            ));
        }
        for (app, row) in assignment.matrix().iter().enumerate() {
            if row.len() != machine.num_nodes() {
                return Err(SimError::Model(
                    roofline_numa::ModelError::AssignmentShape {
                        app,
                        expected: machine.num_nodes(),
                        actual: row.len(),
                    },
                ));
            }
        }
        if !self.config.effects.allow_oversubscription {
            for node in machine.node_ids() {
                if assignment.node_total(node) > machine.node(node).num_cores() {
                    return Err(SimError::OverSubscriptionDisabled { node: node.0 });
                }
            }
        }
        Ok(())
    }
}

/// The node holding the most of `app`'s threads under `assignment` (ties
/// break to the lowest node id), or `None` when the app has none.
pub(crate) fn dominant_node(assignment: &ThreadAssignment, app: usize) -> Option<u64> {
    let row = &assignment.matrix()[app];
    let (node, &best) = row
        .iter()
        .enumerate()
        .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))?;
    (best > 0).then_some(node as u64)
}

pub(crate) fn expand_threads(assignment: &ThreadAssignment, num_nodes: usize) -> Vec<Thread> {
    let mut threads = Vec::new();
    for app in 0..assignment.num_apps() {
        for node in 0..num_nodes {
            for _ in 0..assignment.get(app, NodeId(node)) {
                threads.push(Thread {
                    app,
                    home: NodeId(node),
                });
            }
        }
    }
    threads
}

/// Reusable arbitration buffers. One instance lives for a whole run (or a
/// whole supervised session); [`compute_rates`] resizes and clears it every
/// call, so nothing in the hot loop allocates once the high-water mark is
/// reached.
#[derive(Debug, Default)]
pub(crate) struct RateScratch {
    /// Per-app: active at the evaluation instant.
    pub(crate) active: Vec<bool>,
    /// Per-node: runnable-thread census.
    runnable_per_node: Vec<usize>,
    /// Per-app: active thread count (for sync overhead).
    app_threads_total: Vec<usize>,
    /// Per-thread: holds a core this quantum (discrete time-slicing).
    on_core: Vec<bool>,
    /// Per-thread: compute capacity, GFLOPS.
    pub(crate) cap: Vec<f64>,
    /// Per-thread × node, row-major: memory demand toward each node.
    demand_to: Vec<f64>,
    /// Per-thread: granted bandwidth, GB/s.
    pub(crate) granted: Vec<f64>,
    /// Per-node: total bandwidth served by that controller, GB/s.
    pub(crate) node_served: Vec<f64>,
    /// Per-node: the share of `node_served` delivered to remote threads
    /// (inbound inter-node link traffic, used by the event engine's link
    /// components).
    pub(crate) node_remote_in: Vec<f64>,
    /// Per-thread: one node's grant contributions (reused across targets).
    col: Vec<f64>,
    /// Per-target-node temporaries.
    node_tmp: NodeScratch,
    runnable_ids: Vec<usize>,
}

impl RateScratch {
    fn reset(&mut self, num_apps: usize, num_threads: usize, num_nodes: usize) {
        self.active.clear();
        self.active.resize(num_apps, false);
        self.runnable_per_node.clear();
        self.runnable_per_node.resize(num_nodes, 0);
        self.app_threads_total.clear();
        self.app_threads_total.resize(num_apps, 0);
        self.on_core.clear();
        self.on_core.resize(num_threads, true);
        self.cap.clear();
        self.cap.resize(num_threads, 0.0);
        self.demand_to.clear();
        self.demand_to.resize(num_threads * num_nodes, 0.0);
        self.granted.clear();
        self.granted.resize(num_threads, 0.0);
        self.node_served.clear();
        self.node_served.resize(num_nodes, 0.0);
        self.node_remote_in.clear();
        self.node_remote_in.resize(num_nodes, 0.0);
        self.col.clear();
        self.col.resize(num_threads, 0.0);
        self.node_tmp.reset(num_apps, num_threads, num_nodes);
    }
}

/// The per-target-node arbitration temporaries. Each arbitration worker
/// (the slice engine's single thread, or one shard of the parallel event
/// engine) owns one instance and reuses it across targets and segments.
#[derive(Debug, Default)]
pub(crate) struct NodeScratch {
    apps_here: Vec<bool>,
    remote_demand_from: Vec<f64>,
    served_from: Vec<f64>,
    prov: Vec<f64>,
}

impl NodeScratch {
    pub(crate) fn reset(&mut self, num_apps: usize, num_threads: usize, num_nodes: usize) {
        self.apps_here.clear();
        self.apps_here.resize(num_apps, false);
        self.remote_demand_from.clear();
        self.remote_demand_from.resize(num_nodes, 0.0);
        self.served_from.clear();
        self.served_from.resize(num_nodes, 0.0);
        self.prov.clear();
        self.prov.resize(num_threads, 0.0);
    }
}

/// A read-only view of the per-thread × node demand matrix, possibly split
/// into contiguous per-shard parts (the parallel engine keeps each shard's
/// rows in its own buffer). Part `p` holds the rows of global threads
/// `starts[p]..starts[p] + parts[p].len() / num_nodes`, row-major.
pub(crate) struct DemandView<'a> {
    pub(crate) parts: &'a [&'a [f64]],
    pub(crate) num_nodes: usize,
}

impl DemandView<'_> {
    /// Iterates `(global_thread_index, demand_toward_target)` over every
    /// thread in ascending global order — the iteration order every
    /// arbitration pass must share so floating-point accumulation is
    /// identical no matter how the matrix is sharded.
    #[inline]
    pub(crate) fn toward(&self, target: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let nn = self.num_nodes;
        let mut base = 0usize;
        self.parts.iter().flat_map(move |part| {
            let start = base;
            base += part.len() / nn;
            part.chunks_exact(nn)
                .enumerate()
                .map(move |(local, row)| (start + local, row[target]))
        })
    }
}

/// One bandwidth arbitration at instant `t`: determine the active set,
/// per-thread compute capacity (peak × duty × switch loss × sync overhead ×
/// jitter), per-thread demand, then the two-phase per-node arbitration
/// (remote-first with link caps and coherence overhead, then local baseline
/// + proportional remainder, with the saturation efficiency on streaming
/// threads). Results land in `s.cap`, `s.granted` and `s.node_served`.
///
/// This is the one copy of the physics: the slice engine calls it once per
/// quantum, the event engine once per inter-event segment. `discrete`
/// selects round-robin time-slicing (the slice engine passes the effect
/// model's flag; the event engine always passes `false` and models
/// over-subscription as continuous fair shares, which the discrete mode
/// matches in long-run throughput).
#[allow(clippy::too_many_arguments)] // one bundle of parallel state, called from two engines
pub(crate) fn compute_rates(
    machine: &Machine,
    effects: &crate::EffectModel,
    peak: f64,
    apps: &[SimApp],
    threads: &[Thread],
    t: f64,
    discrete: bool,
    rng: &mut StdRng,
    rr_offset: &mut [usize],
    tel: Option<&SimTelemetry>,
    s: &mut RateScratch,
) {
    let num_nodes = machine.num_nodes();
    rates_prologue(
        machine, effects, peak, apps, threads, t, discrete, rng, rr_offset, tel, s,
    );

    // Per-thread demand toward each node.
    for (i, th) in threads.iter().enumerate() {
        fill_demand_row(
            &apps[th.app],
            th.home,
            s.cap[i],
            &mut s.demand_to[i * num_nodes..(i + 1) * num_nodes],
        );
    }

    // Arbitrate each node, then fold its grant column into the per-thread
    // totals — the same column-then-reduce structure the parallel engine
    // uses, so both paths perform the identical sequence of float adds.
    let parts = [s.demand_to.as_slice()];
    let view = DemandView {
        parts: &parts,
        num_nodes,
    };
    for target in 0..num_nodes {
        let (served, remote_in) =
            arbitrate_node(machine, effects, target, threads, &view, &mut s.node_tmp, &mut s.col);
        for (i, d) in view.toward(target) {
            if d <= 0.0 {
                continue;
            }
            s.granted[i] += s.col[i];
        }
        s.node_served[target] = served;
        s.node_remote_in[target] = remote_in;
    }
}

/// The globally-coupled prefix of [`compute_rates`]: the active set, the
/// per-node runnable census, discrete time-slicing, and every thread's
/// compute capacity. This stage consumes the jitter RNG, so the parallel
/// engine runs it once, sequentially, on the coordinator — keeping the
/// random stream identical to the single-threaded engines.
#[allow(clippy::too_many_arguments)] // same bundle as compute_rates
pub(crate) fn rates_prologue(
    machine: &Machine,
    effects: &crate::EffectModel,
    peak: f64,
    apps: &[SimApp],
    threads: &[Thread],
    t: f64,
    discrete: bool,
    rng: &mut StdRng,
    rr_offset: &mut [usize],
    tel: Option<&SimTelemetry>,
    s: &mut RateScratch,
) {
    let num_nodes = machine.num_nodes();
    s.reset(apps.len(), threads.len(), num_nodes);

    // Which apps are active at this instant?
    for (a, app) in apps.iter().enumerate() {
        s.active[a] = app.activity.is_active(t);
    }

    // Per-node runnable census (for duty cycles and interference).
    for th in threads {
        if s.active[th.app] {
            s.runnable_per_node[th.home.0] += 1;
            s.app_threads_total[th.app] += 1;
        }
    }

    // Discrete time-slicing: pick which runnable threads hold a core this
    // quantum (a rotating window per node).
    if discrete {
        #[allow(clippy::needless_range_loop)] // indexes three parallel structures
        for node in 0..num_nodes {
            let cores = machine.node(NodeId(node)).num_cores();
            s.runnable_ids.clear();
            s.runnable_ids.extend(
                threads
                    .iter()
                    .enumerate()
                    .filter(|(_, th)| th.home.0 == node && s.active[th.app])
                    .map(|(i, _)| i),
            );
            let runnable = &s.runnable_ids;
            if runnable.len() > cores {
                for (pos, &i) in runnable.iter().enumerate() {
                    let slot =
                        (pos + runnable.len() - rr_offset[node] % runnable.len()) % runnable.len();
                    s.on_core[i] = slot < cores;
                }
                rr_offset[node] = (rr_offset[node] + cores) % runnable.len();
                // One rotated quantum = one OS-scheduler context switch on
                // this node's cores.
                if let Some(tel) = tel {
                    tel.rotations[node].inc();
                }
            }
        }
    }

    // Per-thread compute capacity (GFLOPS).
    for (i, th) in threads.iter().enumerate() {
        if !s.active[th.app] {
            continue;
        }
        let cores = machine.node(th.home).num_cores() as f64;
        let runnable = s.runnable_per_node[th.home.0] as f64;
        let duty = if discrete {
            if s.on_core[i] {
                1.0
            } else {
                0.0
            }
        } else {
            (cores / runnable).min(1.0)
        };
        let switch = if runnable > cores {
            1.0 - effects.oversub_switch_loss
        } else {
            1.0
        };
        let alpha = apps[th.app].sync_overhead;
        let sync = 1.0 / (1.0 + alpha * (s.app_threads_total[th.app] as f64 - 1.0));
        let jitter = if effects.jitter > 0.0 {
            1.0 + effects.jitter * (rng.gen::<f64>() * 2.0 - 1.0)
        } else {
            1.0
        };
        s.cap[i] = peak * duty * switch * sync * jitter;
    }
}

/// Fills one thread's demand row (`num_nodes` wide): total demand
/// `cap / AI`, split by the app's placement fractions. Pure per-thread
/// work — the parallel engine fans these rows out across shards.
pub(crate) fn fill_demand_row(app: &SimApp, home: NodeId, cap: f64, row: &mut [f64]) {
    let num_nodes = row.len();
    row.fill(0.0);
    if cap == 0.0 {
        return;
    }
    let total = cap / app.spec.ai;
    for (node, d) in row.iter_mut().enumerate() {
        *d = total * app.spec.placement.fraction(home, NodeId(node), num_nodes);
    }
}

/// Arbitrates one target node: the two-phase remote-first / baseline +
/// proportional-remainder rule, with interference and saturation applied.
/// Writes each demanding thread's grant into `col[i]` (slots with zero
/// demand are left untouched — readers must gate on `d > 0`) and returns
/// `(node_served, node_remote_in)`.
///
/// Per-target arbitration has **no cross-target dataflow** — only the
/// caller's fold of `col` into per-thread totals couples targets — which
/// is exactly why the parallel engine can arbitrate disjoint node ranges
/// concurrently and still reproduce the sequential engine bit for bit:
/// every loop here visits threads in ascending global order via
/// [`DemandView::toward`], whatever the sharding.
pub(crate) fn arbitrate_node(
    machine: &Machine,
    effects: &crate::EffectModel,
    target: usize,
    threads: &[Thread],
    demand: &DemandView<'_>,
    tmp: &mut NodeScratch,
    col: &mut [f64],
) -> (f64, f64) {
    let num_nodes = demand.num_nodes;
    let node = machine.node(NodeId(target));

    // Interference: distinct apps with demand toward this node.
    tmp.apps_here.fill(false);
    for (i, d) in demand.toward(target) {
        if d > 0.0 {
            tmp.apps_here[threads[i].app] = true;
        }
    }
    let distinct = tmp.apps_here.iter().filter(|&&b| b).count();
    let interference = if distinct > 1 {
        (1.0 - effects.multi_app_interference * (distinct - 1) as f64).max(0.0)
    } else {
        1.0
    };
    let capacity = node.bandwidth_gbs * interference;

    // Remote-first stage.
    tmp.remote_demand_from.fill(0.0);
    for (i, d) in demand.toward(target) {
        let src = threads[i].home.0;
        if src != target {
            tmp.remote_demand_from[src] += d;
        }
    }
    for src in 0..num_nodes {
        tmp.served_from[src] = if src == target {
            0.0
        } else {
            let link =
                machine.links().link(NodeId(src), NodeId(target)) * effects.remote_efficiency;
            tmp.remote_demand_from[src].min(link)
        };
    }
    // Serving remote traffic costs extra capacity (coherence
    // overhead): r GB/s delivered consumes r * (1 + o).
    let remote_cost = 1.0 + effects.remote_service_overhead;
    let total_remote: f64 = tmp.served_from.iter().sum();
    if total_remote * remote_cost > capacity {
        let scale = capacity / (total_remote * remote_cost);
        for sf in tmp.served_from.iter_mut() {
            *sf *= scale;
        }
    }

    // Local stage: baseline + proportional remainder. Local grants are
    // tracked per-target in `prov` so threads whose traffic spreads
    // over several nodes accumulate correctly.
    let remaining = (capacity - tmp.served_from.iter().sum::<f64>() * remote_cost).max(0.0);
    // The per-thread guaranteed share. The model's rule is per-core;
    // under over-subscription (more demanding local threads than
    // cores) the share divides among the threads, keeping the baseline
    // stage within capacity.
    let local_demanders = demand
        .toward(target)
        .filter(|&(i, d)| threads[i].home.0 == target && d > 0.0)
        .count();
    let baseline = remaining / node.num_cores().max(local_demanders) as f64;
    tmp.prov.fill(0.0);
    let mut used = 0.0f64;
    let mut local_need = 0.0f64;
    for (i, d) in demand.toward(target) {
        if threads[i].home.0 == target && d > 0.0 {
            let g = d.min(baseline);
            tmp.prov[i] = g;
            used += g;
            local_need += d - g;
        }
    }
    let rest = (remaining - used).max(0.0);
    let ratio = if local_need > 1e-15 {
        (rest / local_need).min(1.0)
    } else {
        0.0
    };

    // Saturation: queueing efficiency of this controller under load.
    // It only penalizes *streaming* threads (demand above half the
    // baseline share) — a compute-bound thread issuing few requests
    // rides out the queues, which is what the paper's compute
    // benchmark did on the real machine.
    let total_demand: f64 = demand.toward(target).map(|(_, d)| d).sum();
    let u = (total_demand / capacity).min(1.0);
    let sat = if u > effects.saturation_knee && effects.saturation_loss > 0.0 {
        1.0 - effects.saturation_loss * (u - effects.saturation_knee)
            / (1.0 - effects.saturation_knee)
    } else {
        1.0
    };
    let streamer_threshold = 0.5 * baseline;

    let mut served_total = 0.0f64;
    let mut remote_in = 0.0f64;
    for (i, d) in demand.toward(target) {
        if d <= 0.0 {
            continue;
        }
        let thread_sat = if d > streamer_threshold { sat } else { 1.0 };
        if threads[i].home.0 == target {
            // Add the proportional remainder, then apply the
            // saturation efficiency to the final local grant.
            let need = d - tmp.prov[i];
            let final_local = (tmp.prov[i] + ratio * need) * thread_sat;
            col[i] = final_local;
            served_total += final_local;
        } else {
            // Remote grant: share of this source's served BW.
            let src = threads[i].home.0;
            let share = if tmp.remote_demand_from[src] > 1e-15 {
                tmp.served_from[src] * d / tmp.remote_demand_from[src]
            } else {
                0.0
            };
            let final_remote = share * thread_sat;
            col[i] = final_remote;
            served_total += final_remote;
            remote_in += final_remote;
        }
    }
    (served_total, remote_in)
}

/// Synthetic causal-span bookkeeping shared by both engines: per app, the
/// open epoch's (task id, dominant node) and the causal-tree root (first
/// epoch's id). Each assignment epoch becomes a traced task in the shared
/// hop schema, spawned by the app's previous epoch.
pub(crate) struct EpochTracer {
    tasks: Vec<Option<(u64, Option<u64>)>>,
    roots: Vec<Option<u64>>,
}

impl EpochTracer {
    pub(crate) fn new(num_apps: usize) -> Self {
        EpochTracer {
            tasks: vec![None; num_apps],
            roots: vec![None; num_apps],
        }
    }

    /// Closes every app's previous epoch and opens the next one at `t`.
    pub(crate) fn on_assignment(
        &mut self,
        tel: &SimTelemetry,
        t: f64,
        sched_idx: usize,
        assignment: &ThreadAssignment,
        apps: &[SimApp],
    ) {
        for app in 0..apps.len() {
            let task = NEXT_TRACE_TASK.fetch_add(1, Ordering::Relaxed);
            let trace = *self.roots[app].get_or_insert(task);
            let prev = self.tasks[app].take();
            if let Some((ptask, pnode)) = prev {
                tel.trace_epoch_close(t, ptask, trace, pnode);
            }
            let node = dominant_node(assignment, app);
            tel.trace_epoch_open(
                t,
                task,
                trace,
                prev.map(|(p, _)| p),
                &format!("{}#epoch{}", apps[app].name(), sched_idx),
                node,
            );
            self.tasks[app] = Some((task, node));
        }
    }

    /// Closes any epochs still open at the end of the run.
    pub(crate) fn finish(&mut self, tel: &SimTelemetry, t: f64) {
        for (app, slot) in self.tasks.iter_mut().enumerate() {
            if let Some((task, node)) = slot.take() {
                let trace = self.roots[app].unwrap_or(task);
                tel.trace_epoch_close(t, task, trace, node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivityPattern, EffectModel};
    use numa_topology::presets::{paper_model_machine, paper_skylake_machine, tiny};
    use roofline_numa::{solve, AppSpec};

    fn ideal_sim(machine: numa_topology::Machine) -> Simulation {
        Simulation::new(SimConfig::new(machine).with_effects(EffectModel::ideal()))
    }

    /// With all effects off, the simulator matches the analytic model on
    /// the paper's Table I scenario.
    #[test]
    fn ideal_matches_model_table_1() {
        let machine = paper_model_machine();
        let sim = ideal_sim(machine.clone());
        let sim_apps = vec![
            SimApp::numa_local("mem1", 0.5),
            SimApp::numa_local("mem2", 0.5),
            SimApp::numa_local("mem3", 0.5),
            SimApp::numa_local("comp", 10.0),
        ];
        let model_apps: Vec<AppSpec> = sim_apps.iter().map(|a| a.spec.clone()).collect();
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[1, 1, 1, 5]);

        let r = sim.run(&sim_apps, &assignment, 0.05).unwrap();
        let m = solve(&machine, &model_apps, &assignment).unwrap();
        assert!(
            (r.total_gflops() - m.total_gflops()).abs() < 1e-6,
            "sim {} vs model {}",
            r.total_gflops(),
            m.total_gflops()
        );
        for a in 0..4 {
            assert!((r.app_gflops(a) - m.app_gflops(a)).abs() < 1e-6);
        }
    }

    /// Cross-validation on the cross-node NUMA-bad scenario (Table III
    /// row 4 shape).
    #[test]
    fn ideal_matches_model_cross_node() {
        let machine = paper_skylake_machine();
        let sim = ideal_sim(machine.clone());
        let sim_apps = vec![
            SimApp::numa_local("mem1", 1.0 / 32.0),
            SimApp::numa_local("mem2", 1.0 / 32.0),
            SimApp::numa_local("mem3", 1.0 / 32.0),
            SimApp::numa_bad("bad", 1.0 / 16.0, NodeId(0)),
        ];
        let model_apps: Vec<AppSpec> = sim_apps.iter().map(|a| a.spec.clone()).collect();
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[5, 5, 5, 5]);
        let r = sim.run(&sim_apps, &assignment, 0.05).unwrap();
        let m = solve(&machine, &model_apps, &assignment).unwrap();
        assert!(
            (r.total_gflops() - m.total_gflops()).abs() < 1e-6,
            "sim {} vs model {} (model should be 13.98)",
            r.total_gflops(),
            m.total_gflops()
        );
    }

    /// Real-ish effects push heavily shared scenarios a few percent below
    /// the model — the paper's observation.
    #[test]
    fn effects_degrade_shared_scenarios_mildly() {
        let machine = paper_skylake_machine();
        let sim = Simulation::new(
            SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()),
        );
        let sim_apps = vec![
            SimApp::numa_local("mem1", 1.0 / 32.0),
            SimApp::numa_local("mem2", 1.0 / 32.0),
            SimApp::numa_local("mem3", 1.0 / 32.0),
            SimApp::numa_bad("bad", 1.0 / 16.0, NodeId(0)),
        ];
        let model_apps: Vec<AppSpec> = sim_apps.iter().map(|a| a.spec.clone()).collect();
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[5, 5, 5, 5]);
        let r = sim.run(&sim_apps, &assignment, 0.1).unwrap();
        let m = solve(&machine, &model_apps, &assignment).unwrap();
        // Running the raw effects against the *nominal* machine (without
        // the paper's calibration step absorbing them) costs 10–25%; the
        // Table III bench shows that after calibration the net
        // model-vs-real gap shrinks to a few percent.
        let ratio = r.total_gflops() / m.total_gflops();
        assert!(
            ratio > 0.7 && ratio < 1.0,
            "effects should cost a modest fraction: sim/model = {ratio}"
        );
    }

    #[test]
    fn oversubscription_costs_a_few_percent() {
        // Two identical memory-light apps; fair share vs 2x oversubscribed.
        let machine = paper_model_machine();
        let apps = vec![SimApp::numa_local("a", 10.0), SimApp::numa_local("b", 10.0)];
        let sim = Simulation::new(
            SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()),
        );
        let fair = ThreadAssignment::uniform_per_node(&machine, &[4, 4]);
        let over = ThreadAssignment::uniform_per_node(&machine, &[8, 8]);
        let r_fair = sim.run(&apps, &fair, 0.05).unwrap();
        let r_over = sim.run(&apps, &over, 0.05).unwrap();
        let ratio = r_over.total_gflops() / r_fair.total_gflops();
        assert!(
            ratio > 0.9 && ratio < 1.0,
            "oversubscription should cost only a few percent, ratio = {ratio}"
        );
    }

    #[test]
    fn oversubscription_rejected_when_disabled() {
        let machine = tiny();
        let sim = ideal_sim(machine.clone());
        let apps = vec![SimApp::numa_local("a", 1.0)];
        let over = ThreadAssignment::uniform_per_node(&machine, &[3]);
        assert!(matches!(
            sim.run(&apps, &over, 0.01),
            Err(SimError::OverSubscriptionDisabled { .. })
        ));
    }

    #[test]
    fn activity_windows_gate_work() {
        let machine = tiny();
        let sim = ideal_sim(machine.clone());
        let apps = vec![
            SimApp::numa_local("w", 1.0).with_activity(ActivityPattern::Window {
                start_s: 0.0,
                end_s: 0.05,
            }),
        ];
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[1]);
        let r = sim.run(&apps, &assignment, 0.1).unwrap();
        // Active for half the run: sustained rate is half the peak rate.
        let r_full = sim
            .run(&[SimApp::numa_local("w", 1.0)], &assignment, 0.1)
            .unwrap();
        let ratio = r.total_gflops() / r_full.total_gflops();
        assert!((ratio - 0.5).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn sync_overhead_makes_scaling_sublinear() {
        let machine = paper_model_machine();
        let sim = ideal_sim(machine.clone());
        let app = |alpha: f64| vec![SimApp::numa_local("s", 10.0).with_sync_overhead(alpha)];
        let one = ThreadAssignment::uniform_per_node(&machine, &[1]);
        let eight = ThreadAssignment::uniform_per_node(&machine, &[8]);
        // Perfect scaling: 8x the threads -> 8x the work.
        let r1 = sim.run(&app(0.0), &one, 0.02).unwrap();
        let r8 = sim.run(&app(0.0), &eight, 0.02).unwrap();
        assert!((r8.total_gflops() / r1.total_gflops() - 8.0).abs() < 1e-6);
        // With overhead: more threads still help, but sublinearly.
        let r1o = sim.run(&app(0.05), &one, 0.02).unwrap();
        let r8o = sim.run(&app(0.05), &eight, 0.02).unwrap();
        let speedup = r8o.total_gflops() / r1o.total_gflops();
        assert!(speedup > 1.0 && speedup < 8.0, "speedup = {speedup}");
    }

    #[test]
    fn dynamic_schedule_switches_assignments() {
        let machine = tiny();
        let sim = ideal_sim(machine.clone());
        let apps = vec![SimApp::numa_local("a", 1.0), SimApp::numa_local("b", 1.0)];
        // First half: all cores to a; second half: all to b.
        let all_a = ThreadAssignment::from_matrix(vec![vec![2, 2], vec![0, 0]]);
        let all_b = ThreadAssignment::from_matrix(vec![vec![0, 0], vec![2, 2]]);
        let r = sim
            .run_dynamic(&apps, &[(0.0, all_a), (0.05, all_b)], 0.1)
            .unwrap();
        let a = r.app_gflops(0);
        let b = r.app_gflops(1);
        assert!(a > 0.0 && b > 0.0);
        assert!(
            (a - b).abs() / a < 0.05,
            "halves should be symmetric: {a} vs {b}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let machine = paper_model_machine();
        let apps = vec![SimApp::numa_local("a", 0.5)];
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[4]);
        let mk = |seed| {
            Simulation::new(
                SimConfig::new(machine.clone())
                    .with_effects(EffectModel::skylake_like())
                    .with_seed(seed),
            )
            .run(&apps, &assignment, 0.02)
            .unwrap()
        };
        let r1 = mk(7);
        let r2 = mk(7);
        assert_eq!(r1, r2);
        let r3 = mk(8);
        assert!(
            r1.total_gflops() != r3.total_gflops(),
            "different seed, different jitter"
        );
    }

    #[test]
    fn bad_time_parameters_rejected() {
        let machine = tiny();
        let sim = ideal_sim(machine.clone());
        let apps = vec![SimApp::numa_local("a", 1.0)];
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[1]);
        assert!(matches!(
            sim.run(&apps, &assignment, 0.0),
            Err(SimError::BadTime { .. })
        ));
        assert!(matches!(
            sim.run_dynamic(&apps, &[], 1.0),
            Err(SimError::BadTime { .. })
        ));
        let bad_q = Simulation::new(
            SimConfig::new(tiny())
                .with_effects(EffectModel::ideal())
                .with_quantum(0.0),
        );
        assert!(matches!(
            bad_q.run(&apps, &assignment, 1.0),
            Err(SimError::BadTime { .. })
        ));
    }

    #[test]
    fn node_utilization_reported() {
        let machine = paper_model_machine();
        let sim = ideal_sim(machine.clone());
        // Memory-bound app saturates every node.
        let apps = vec![SimApp::numa_local("mem", 0.1)];
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[8]);
        let r = sim.run(&apps, &assignment, 0.02).unwrap();
        for &u in &r.node_utilization {
            assert!(
                (u - 1.0).abs() < 1e-6,
                "saturated node should be at 1.0, got {u}"
            );
        }
        // 32 GB/s * 0.1 = 3.2 GFLOPS per node.
        assert!((r.total_gflops() - 12.8).abs() < 1e-6);
    }

    #[test]
    fn telemetry_publishes_bandwidth_and_switches() {
        use coop_telemetry::EventKind;
        use std::sync::Arc;

        let machine = tiny();
        let hub = Arc::new(coop_telemetry::TelemetryHub::new());
        let sim = ideal_sim(machine.clone()).with_telemetry(Arc::clone(&hub));
        let apps = vec![SimApp::numa_local("a", 1.0), SimApp::numa_local("b", 1.0)];
        let all_a = ThreadAssignment::from_matrix(vec![vec![2, 2], vec![0, 0]]);
        let all_b = ThreadAssignment::from_matrix(vec![vec![0, 0], vec![2, 2]]);
        let r = sim
            .run_dynamic(&apps, &[(0.0, all_a), (0.05, all_b)], 0.1)
            .unwrap();

        // One assignment switch (the initial assignment does not count).
        let reg = hub.registry();
        assert_eq!(reg.counter_total("memsim_assignment_switches_total"), 1);

        let events = hub.events();
        let switches: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "scheduler" && matches!(e.kind, EventKind::Instant))
            .collect();
        assert_eq!(switches.len(), 1);
        assert!(switches[0].name.contains("assignment"));

        // Per-node bandwidth counter samples, one per timeline sample.
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "bandwidth" && matches!(e.kind, EventKind::Counter { .. }))
            .collect();
        assert_eq!(
            counters.len(),
            machine.num_nodes() * r.apps[0].times_s.len()
        );
        assert!(counters.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));

        // End-of-run gauges match the result's utilization report.
        for (n, &util) in r.node_utilization.iter().enumerate() {
            let g = reg
                .gauge("memsim_node_utilization", &[("node", &n.to_string())])
                .get();
            assert!(
                (g - util).abs() < 1e-12,
                "node {n}: gauge {g} vs result {util}"
            );
        }
        // The merged Perfetto export carries the memsim track.
        let json = hub.to_perfetto_json();
        assert!(json.contains("memsim"));
        assert!(json.contains("node0_bw_gbs"));
    }

    #[test]
    fn tracing_emits_epoch_spans_in_the_shared_hop_schema() {
        use coop_telemetry::{hop, TraceAssembler};
        use std::sync::Arc;

        let machine = tiny();
        let hub = Arc::new(coop_telemetry::TelemetryHub::new());
        let sim = ideal_sim(machine.clone())
            .with_telemetry(Arc::clone(&hub))
            .with_tracing();
        let apps = vec![SimApp::numa_local("a", 1.0), SimApp::numa_local("b", 1.0)];
        let all_a = ThreadAssignment::from_matrix(vec![vec![2, 2], vec![0, 0]]);
        let all_b = ThreadAssignment::from_matrix(vec![vec![0, 0], vec![2, 2]]);
        sim.run_dynamic(&apps, &[(0.0, all_a), (0.05, all_b)], 0.1)
            .unwrap();

        // Two apps x two epochs, each a complete synthetic task whose
        // causal chain walks the reallocation history.
        let asm = TraceAssembler::from_hub(&hub);
        assert_eq!(asm.len(), 4);
        for t in asm.tasks() {
            let kinds: Vec<&str> = t.hops.iter().map(|h| h.kind.as_str()).collect();
            assert_eq!(
                kinds,
                [hop::SPAWNED, hop::ENQUEUED, hop::STARTED, hop::FINISHED],
                "{:?}",
                t.name
            );
            assert!(t.completed());
            assert!(!t.truncated);
        }
        let late = asm.find("a#epoch1");
        assert_eq!(late.len(), 1);
        let late = late[0];
        let early = asm.find("a#epoch0")[0];
        assert_eq!(late.parent, Some(early.task), "epochs chain causally");
        assert_eq!(late.trace_id, early.trace_id);
        assert_eq!(asm.critical_path(late).len(), 2);
        // App "a" ran on node 0 first, then nowhere (dominant node absent
        // once its threads are withdrawn).
        assert_eq!(early.hop(hop::STARTED).unwrap().node, Some(0));
        assert_eq!(late.hop(hop::STARTED).unwrap().node, None);
        // Each epoch spans its simulated window: 50ms of hub time.
        assert!(early.total_wall_us() >= 49_000 && early.total_wall_us() <= 51_000);
        // Tracing off: the same scenario emits no trace hops.
        let hub2 = Arc::new(coop_telemetry::TelemetryHub::new());
        ideal_sim(machine.clone())
            .with_telemetry(Arc::clone(&hub2))
            .run(
                &apps,
                &ThreadAssignment::uniform_per_node(&machine, &[1, 1]),
                0.02,
            )
            .unwrap();
        assert!(TraceAssembler::from_hub(&hub2).is_empty());
    }

    #[test]
    fn telemetry_counts_sched_switches_under_oversubscription() {
        use std::sync::Arc;

        let machine = tiny();
        let hub = Arc::new(coop_telemetry::TelemetryHub::new());
        let mut effects = EffectModel::ideal();
        effects.allow_oversubscription = true;
        effects.discrete_timeslice = true;
        let sim = Simulation::new(SimConfig::new(machine.clone()).with_effects(effects))
            .with_telemetry(Arc::clone(&hub));
        let apps = vec![SimApp::numa_local("m", 0.25), SimApp::numa_local("n", 0.25)];
        // 2x oversubscribed: every quantum rotates the run queue.
        let oversub = ThreadAssignment::from_matrix(vec![vec![2, 2], vec![2, 2]]);
        sim.run(&apps, &oversub, 0.05).unwrap();
        assert!(
            hub.registry().counter_total("memsim_sched_switches_total") > 0,
            "round-robin rotations must be counted"
        );
    }

    /// Satellite regression (simulated-vs-wall time): with an explicit
    /// anchor, every event either engine emits carries simulated time
    /// relative to that anchor — not the hub's wall clock.
    #[test]
    fn explicit_time_base_anchors_all_events() {
        use std::sync::Arc;

        let machine = tiny();
        let apps = vec![SimApp::numa_local("a", 1.0), SimApp::numa_local("b", 1.0)];
        let all_a = ThreadAssignment::from_matrix(vec![vec![2, 2], vec![0, 0]]);
        let all_b = ThreadAssignment::from_matrix(vec![vec![0, 0], vec![2, 2]]);
        for engine in [crate::EngineKind::Slice, crate::EngineKind::Event] {
            let hub = Arc::new(coop_telemetry::TelemetryHub::new());
            let sim = Simulation::new(
                SimConfig::new(machine.clone())
                    .with_effects(EffectModel::ideal())
                    .with_engine(engine),
            )
            .with_telemetry(Arc::clone(&hub))
            .with_tracing()
            .with_time_base(123_000);
            sim.run_dynamic(&apps, &[(0.0, all_a.clone()), (0.05, all_b.clone())], 0.1)
                .unwrap();
            let events = hub.events();
            assert!(!events.is_empty(), "{engine}: no events emitted");
            for e in &events {
                assert!(
                    (123_000..=223_000).contains(&e.ts_us),
                    "{engine}: event {:?} at {} outside the anchored 100ms window",
                    e.name,
                    e.ts_us
                );
            }
        }
    }

    #[test]
    fn timeline_series_cover_run() {
        let machine = tiny();
        let sim = ideal_sim(machine.clone());
        let apps = vec![SimApp::numa_local("a", 1.0)];
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[1]);
        let r = sim.run(&apps, &assignment, 0.05).unwrap();
        let s = &r.apps[0];
        assert!(!s.times_s.is_empty());
        assert_eq!(s.times_s.len(), s.gflops_series.len());
        assert!(s.times_s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.times_s.last().unwrap() <= 0.05 + 1e-9);
    }
}

#[cfg(test)]
mod timeslice_tests {
    use super::*;
    use crate::EffectModel;
    use numa_topology::presets::{paper_model_machine, tiny};

    /// Discrete round-robin slicing matches the continuous-share model's
    /// long-run throughput (within rounding) for an oversubscribed
    /// compute-bound load.
    #[test]
    fn discrete_matches_continuous_long_run() {
        let machine = paper_model_machine();
        let apps = vec![
            crate::SimApp::numa_local("a", 10.0),
            crate::SimApp::numa_local("b", 10.0),
        ];
        let full: Vec<usize> = machine.nodes().map(|n| n.num_cores()).collect();
        let oversub = roofline_numa::ThreadAssignment::from_matrix(vec![full.clone(), full]);

        let mut continuous = EffectModel::ideal();
        continuous.allow_oversubscription = true;
        let mut discrete = continuous.clone();
        discrete.discrete_timeslice = true;

        let rc = Simulation::new(SimConfig::new(machine.clone()).with_effects(continuous))
            .run(&apps, &oversub, 0.1)
            .unwrap();
        let rd = Simulation::new(SimConfig::new(machine.clone()).with_effects(discrete))
            .run(&apps, &oversub, 0.1)
            .unwrap();
        let ratio = rd.total_gflops() / rc.total_gflops();
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "discrete vs continuous long-run ratio: {ratio}"
        );
        // And per-app fairness holds in both.
        assert!((rd.app_gflops(0) - rd.app_gflops(1)).abs() / rd.app_gflops(0) < 0.02);
    }

    /// Without over-subscription the discrete flag changes nothing.
    #[test]
    fn discrete_is_identity_without_oversubscription() {
        let machine = tiny();
        let apps = vec![crate::SimApp::numa_local("a", 1.0)];
        let a = roofline_numa::ThreadAssignment::uniform_per_node(&machine, &[2]);
        let base = EffectModel::ideal();
        let mut disc = base.clone();
        disc.discrete_timeslice = true;
        let r1 = Simulation::new(SimConfig::new(machine.clone()).with_effects(base))
            .run(&apps, &a, 0.02)
            .unwrap();
        let r2 = Simulation::new(SimConfig::new(machine.clone()).with_effects(disc))
            .run(&apps, &a, 0.02)
            .unwrap();
        assert_eq!(r1, r2);
    }

    /// Discrete slicing is deterministic and conserves node bandwidth.
    #[test]
    fn discrete_is_deterministic_and_conservative() {
        let machine = tiny();
        let apps = vec![
            crate::SimApp::numa_local("m", 0.25),
            crate::SimApp::numa_local("n", 0.25),
        ];
        // 2x oversubscribed memory-bound threads.
        let oversub = roofline_numa::ThreadAssignment::from_matrix(vec![vec![2, 2], vec![2, 2]]);
        let mut effects = EffectModel::ideal();
        effects.allow_oversubscription = true;
        effects.discrete_timeslice = true;
        let sim = Simulation::new(SimConfig::new(machine.clone()).with_effects(effects));
        let r1 = sim.run(&apps, &oversub, 0.05).unwrap();
        let r2 = sim.run(&apps, &oversub, 0.05).unwrap();
        assert_eq!(r1, r2);
        for (n, &gbs) in r1.node_avg_gbs.iter().enumerate() {
            let cap = machine.node(NodeId(n)).bandwidth_gbs;
            assert!(gbs <= cap * (1.0 + 1e-9), "node {n}: {gbs} > {cap}");
        }
    }
}
