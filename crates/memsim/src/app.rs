//! Simulated application descriptions.

use numa_topology::NodeId;
use roofline_numa::{AppSpec, DataPlacement};
use serde::{Deserialize, Serialize};

/// When an application is actively computing.
///
/// The paper's tighter-integration scenarios (§II) involve applications
/// whose demand varies over time — a "library" application that only works
/// when called, or a producer that stalls when it runs too far ahead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActivityPattern {
    /// Computing for the whole simulation.
    AlwaysOn,
    /// Repeating cycle: active for `duty * period_s`, idle for the rest.
    /// The burst begins at each period start (plus `phase_s`).
    Bursts {
        /// Cycle length in seconds.
        period_s: f64,
        /// Fraction of the period spent active (0..=1).
        duty: f64,
        /// Offset of the first burst, seconds.
        phase_s: f64,
    },
    /// Active only inside `[start_s, end_s)`.
    Window {
        /// Activity start, seconds.
        start_s: f64,
        /// Activity end, seconds.
        end_s: f64,
    },
}

impl ActivityPattern {
    /// `true` if the application computes during the quantum starting at
    /// `t` seconds.
    pub fn is_active(&self, t: f64) -> bool {
        match *self {
            ActivityPattern::AlwaysOn => true,
            ActivityPattern::Bursts {
                period_s,
                duty,
                phase_s,
            } => {
                let pos = (t - phase_s).rem_euclid(period_s);
                pos < duty * period_s
            }
            ActivityPattern::Window { start_s, end_s } => t >= start_s && t < end_s,
        }
    }

    /// The next instant strictly after `t` at which [`is_active`] changes
    /// value, or `None` if the pattern never changes again. This is what
    /// turns an activity pattern into discrete events: between consecutive
    /// edges the active/idle state is constant, so the event engine only
    /// re-arbitrates at edges.
    ///
    /// [`is_active`]: ActivityPattern::is_active
    pub fn next_edge(&self, t: f64) -> Option<f64> {
        match *self {
            ActivityPattern::AlwaysOn => None,
            ActivityPattern::Bursts {
                period_s,
                duty,
                phase_s,
            } => {
                // Degenerate duty cycles never change state.
                if !(0.0..1.0).contains(&duty) || duty == 0.0 {
                    return None;
                }
                let pos = (t - phase_s).rem_euclid(period_s);
                let on_len = duty * period_s;
                let next = if pos < on_len {
                    t + (on_len - pos)
                } else {
                    t + (period_s - pos)
                };
                // Guard against `rem_euclid` landing exactly on the edge.
                Some(if next > t { next } else { t + period_s })
            }
            ActivityPattern::Window { start_s, end_s } => {
                if t < start_s {
                    Some(start_s)
                } else if t < end_s {
                    Some(end_s)
                } else {
                    None
                }
            }
        }
    }
}

/// An application as the simulator sees it: the model-level spec plus
/// simulator-only behaviour (activity pattern, synchronization scaling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimApp {
    /// Arithmetic intensity and data placement (shared with the model).
    pub spec: AppSpec,
    /// When the application computes.
    pub activity: ActivityPattern,
    /// Synchronization-overhead coefficient `alpha`: with `n` threads
    /// machine-wide, each thread's compute throughput is multiplied by
    /// `1 / (1 + alpha * (n - 1))`. 0 = perfect scaling (the model's
    /// assumption). Models the "scaling is less than linear" applications
    /// of §II without making more threads outright harmful.
    pub sync_overhead: f64,
}

impl SimApp {
    /// A NUMA-perfect application (threads touch only local memory).
    pub fn numa_local(name: &str, ai: f64) -> Self {
        SimApp {
            spec: AppSpec::numa_local(name, ai),
            activity: ActivityPattern::AlwaysOn,
            sync_overhead: 0.0,
        }
    }

    /// A NUMA-bad application: all data on `node`.
    pub fn numa_bad(name: &str, ai: f64, node: NodeId) -> Self {
        SimApp {
            spec: AppSpec::numa_bad(name, ai, node),
            activity: ActivityPattern::AlwaysOn,
            sync_overhead: 0.0,
        }
    }

    /// An application with an explicit traffic distribution.
    pub fn spread(name: &str, ai: f64, fractions: Vec<f64>) -> Self {
        SimApp {
            spec: AppSpec::spread(name, ai, fractions),
            activity: ActivityPattern::AlwaysOn,
            sync_overhead: 0.0,
        }
    }

    /// Sets the activity pattern.
    pub fn with_activity(mut self, activity: ActivityPattern) -> Self {
        self.activity = activity;
        self
    }

    /// Sets the synchronization-overhead coefficient.
    pub fn with_sync_overhead(mut self, alpha: f64) -> Self {
        self.sync_overhead = alpha;
        self
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Data placement.
    pub fn placement(&self) -> &DataPlacement {
        &self.spec.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on() {
        assert!(ActivityPattern::AlwaysOn.is_active(0.0));
        assert!(ActivityPattern::AlwaysOn.is_active(1e9));
    }

    #[test]
    fn bursts_cycle() {
        let p = ActivityPattern::Bursts {
            period_s: 1.0,
            duty: 0.25,
            phase_s: 0.0,
        };
        assert!(p.is_active(0.0));
        assert!(p.is_active(0.24));
        assert!(!p.is_active(0.25));
        assert!(!p.is_active(0.9));
        assert!(p.is_active(1.1));
        assert!(p.is_active(5.2));
        assert!(!p.is_active(5.3));
    }

    #[test]
    fn bursts_with_phase() {
        let p = ActivityPattern::Bursts {
            period_s: 2.0,
            duty: 0.5,
            phase_s: 0.5,
        };
        assert!(!p.is_active(0.0));
        assert!(p.is_active(0.5));
        assert!(p.is_active(1.4));
        assert!(!p.is_active(1.6));
    }

    #[test]
    fn window() {
        let p = ActivityPattern::Window {
            start_s: 1.0,
            end_s: 2.0,
        };
        assert!(!p.is_active(0.99));
        assert!(p.is_active(1.0));
        assert!(p.is_active(1.99));
        assert!(!p.is_active(2.0));
    }

    #[test]
    fn next_edge_walks_patterns() {
        assert_eq!(ActivityPattern::AlwaysOn.next_edge(0.0), None);

        let w = ActivityPattern::Window {
            start_s: 1.0,
            end_s: 2.0,
        };
        assert_eq!(w.next_edge(0.0), Some(1.0));
        assert_eq!(w.next_edge(1.0), Some(2.0));
        assert_eq!(w.next_edge(2.0), None);

        let b = ActivityPattern::Bursts {
            period_s: 1.0,
            duty: 0.25,
            phase_s: 0.0,
        };
        // Walking edges from 0 visits 0.25, 1.0, 1.25, 2.0, ... and the
        // state flips at every edge.
        let mut t = 0.0;
        let mut state = b.is_active(t);
        for _ in 0..8 {
            let e = b.next_edge(t).unwrap();
            assert!(e > t, "edge {e} must advance past {t}");
            let new_state = b.is_active(e);
            assert_ne!(new_state, state, "state must flip at edge {e}");
            t = e;
            state = new_state;
        }
        assert!((t - 4.0).abs() < 1e-9, "8 edges of a 1s/0.25 cycle end at 4s, got {t}");

        // Degenerate duties never produce edges.
        for duty in [0.0, 1.0, 1.5] {
            let p = ActivityPattern::Bursts {
                period_s: 1.0,
                duty,
                phase_s: 0.0,
            };
            assert_eq!(p.next_edge(0.3), None, "duty {duty}");
        }
    }

    #[test]
    fn sim_app_builders() {
        let a = SimApp::numa_local("x", 0.5)
            .with_sync_overhead(0.02)
            .with_activity(ActivityPattern::Window {
                start_s: 0.0,
                end_s: 1.0,
            });
        assert_eq!(a.name(), "x");
        assert_eq!(a.sync_overhead, 0.02);
        assert_eq!(a.placement(), &DataPlacement::Local);
        let b = SimApp::numa_bad("y", 1.0, NodeId(2));
        assert_eq!(b.placement(), &DataPlacement::SingleNode(NodeId(2)));
    }
}
