//! Chaos scenarios: mid-run application failures in the simulator.
//!
//! The agent-side supervision layer (`coop-agent`'s `supervise` module)
//! evicts a dead runtime and redistributes its cores to the survivors.
//! This module provides the simulator-side counterpart so the *throughput*
//! effect of that reclamation can be studied deterministically: a
//! [`ChaosPlan`] lists [`AppOutage`]s (an application dies at one simulated
//! time and optionally revives at another), and [`run_chaos_scenario`]
//! compiles plan + scenario into a time-varying schedule for
//! [`Simulation::run_dynamic`]:
//!
//! * while an application is down its threads are removed from the
//!   assignment (it executes nothing),
//! * with [`ChaosPlan::reclaim`] enabled, every segment re-partitions the
//!   machine fairly among the *live* applications — the same fair-share
//!   fallback the agent uses — so survivors absorb the freed cores,
//! * without reclamation the survivors keep their original threads and the
//!   dead application's cores simply idle.
//!
//! Comparing the two runs quantifies what reclamation buys (tests assert
//! survivors complete strictly more work with it).

use crate::{EngineKind, Result, Scenario, SimConfig, SimError, SimResult, Simulation};
use coop_telemetry::TelemetryHub;
use roofline_numa::ThreadAssignment;
use std::sync::Arc;

/// One application failing (and possibly recovering) mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutage {
    /// Index of the application in the scenario's `apps`.
    pub app: usize,
    /// Simulated time at which the application dies, seconds.
    pub down_at_s: f64,
    /// Simulated time at which it revives; `None` means it stays dead.
    pub up_at_s: Option<f64>,
}

impl AppOutage {
    /// `true` while the outage is active at time `t_s`.
    pub fn is_down(&self, t_s: f64) -> bool {
        t_s >= self.down_at_s && self.up_at_s.is_none_or(|up| t_s < up)
    }
}

/// A set of outages plus the recovery policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosPlan {
    /// The outages to inject.
    pub outages: Vec<AppOutage>,
    /// When `true`, each segment fair-shares the machine among the live
    /// applications (the agent's reclamation fallback); when `false`, the
    /// survivors keep the scenario's original assignment and the dead
    /// application's cores idle.
    pub reclaim: bool,
}

impl ChaosPlan {
    /// A plan that kills `app` at `down_at_s` and revives it at `up_at_s`.
    pub fn kill_revive(app: usize, down_at_s: f64, up_at_s: f64) -> Self {
        ChaosPlan {
            outages: vec![AppOutage {
                app,
                down_at_s,
                up_at_s: Some(up_at_s),
            }],
            reclaim: true,
        }
    }

    /// Enables or disables reclamation (builder style).
    pub fn with_reclaim(mut self, reclaim: bool) -> Self {
        self.reclaim = reclaim;
        self
    }

    /// Which applications are live at time `t_s`.
    pub fn live_at(&self, num_apps: usize, t_s: f64) -> Vec<bool> {
        let mut live = vec![true; num_apps];
        for o in &self.outages {
            if o.is_down(t_s) {
                live[o.app] = false;
            }
        }
        live
    }

    /// Validates outage targets and times against the scenario.
    pub fn validate(&self, scenario: &Scenario) -> Result<()> {
        for o in &self.outages {
            if o.app >= scenario.apps.len() {
                return Err(SimError::Calibration {
                    reason: format!(
                        "outage targets app {} but the scenario has {} apps",
                        o.app,
                        scenario.apps.len()
                    ),
                });
            }
            if !(o.down_at_s >= 0.0 && o.down_at_s.is_finite()) {
                return Err(SimError::BadTime {
                    reason: "outage down time must be non-negative and finite",
                });
            }
            if let Some(up) = o.up_at_s {
                if !(up > o.down_at_s && up.is_finite()) {
                    return Err(SimError::BadTime {
                        reason: "outage up time must come after its down time",
                    });
                }
            }
        }
        Ok(())
    }

    /// The schedule boundary times: 0 plus every down/up edge inside the
    /// run, ascending and deduplicated.
    fn edges(&self, duration_s: f64) -> Vec<f64> {
        let mut edges = vec![0.0];
        for o in &self.outages {
            edges.push(o.down_at_s);
            if let Some(up) = o.up_at_s {
                edges.push(up);
            }
        }
        edges.retain(|&t| t < duration_s);
        edges.sort_by(|a, b| a.partial_cmp(b).expect("finite edge times"));
        edges.dedup();
        edges
    }
}

/// The outcome of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The underlying simulation result (per-app series span the whole
    /// run, outages included).
    pub result: SimResult,
    /// `(start_s, live_flags)` per schedule segment, ascending.
    pub segments: Vec<(f64, Vec<bool>)>,
}

/// Runs the first assignment of `scenario` under `plan` on the default
/// slice engine.
pub fn run_chaos_scenario(scenario: &Scenario, plan: &ChaosPlan) -> Result<ChaosResult> {
    run_chaos_scenario_on(scenario, plan, None, EngineKind::Slice)
}

/// Like [`run_chaos_scenario`], with the simulator publishing bandwidth
/// tracks and reallocation events into `hub` (each outage edge appears as
/// an assignment-switch event on the shared timeline).
pub fn run_chaos_scenario_with_telemetry(
    scenario: &Scenario,
    plan: &ChaosPlan,
    hub: Arc<TelemetryHub>,
) -> Result<ChaosResult> {
    run_chaos_scenario_on(scenario, plan, Some(hub), EngineKind::Slice)
}

/// The fully general chaos runner: optional telemetry hub plus an explicit
/// [`EngineKind`]. Outage edges compile to the same time-varying schedule
/// either way; the event engine turns each edge into one heap event instead
/// of being rediscovered by the per-quantum schedule scan.
pub fn run_chaos_scenario_on(
    scenario: &Scenario,
    plan: &ChaosPlan,
    hub: Option<Arc<TelemetryHub>>,
    engine: EngineKind,
) -> Result<ChaosResult> {
    run_chaos_scenario_threaded(scenario, plan, hub, engine, 1)
}

/// Like [`run_chaos_scenario_on`], running the event engine on
/// `sim_threads` worker shards (bit-identical at any thread count; the
/// slice engine ignores the parameter).
pub fn run_chaos_scenario_threaded(
    scenario: &Scenario,
    plan: &ChaosPlan,
    hub: Option<Arc<TelemetryHub>>,
    engine: EngineKind,
    sim_threads: usize,
) -> Result<ChaosResult> {
    scenario.validate()?;
    plan.validate(scenario)?;
    let base = ThreadAssignment::from_matrix(scenario.assignments[0].threads.clone());
    let num_apps = scenario.apps.len();

    let mut schedule = Vec::new();
    let mut segments = Vec::new();
    for t in plan.edges(scenario.duration_s) {
        let live = plan.live_at(num_apps, t);
        schedule.push((t, segment_assignment(scenario, plan, &base, &live)?));
        segments.push((t, live));
    }

    let mut sim = Simulation::new(
        SimConfig::new(scenario.machine.clone())
            .with_effects(scenario.effects.clone())
            .with_seed(scenario.seed)
            .with_engine(engine)
            .with_sim_threads(sim_threads),
    );
    if let Some(hub) = hub {
        sim = sim.with_telemetry(hub);
    }
    let result = sim.run_dynamic(&scenario.apps, &schedule, scenario.duration_s)?;
    Ok(ChaosResult { result, segments })
}

/// The assignment in force for one segment: dead rows zeroed; live rows
/// either fair-shared over the survivors (reclaim) or kept as-is. Also
/// used by the supervisor to inject outages into supervised runs.
pub(crate) fn segment_assignment(
    scenario: &Scenario,
    plan: &ChaosPlan,
    base: &ThreadAssignment,
    live: &[bool],
) -> Result<ThreadAssignment> {
    let num_nodes = scenario.machine.num_nodes();
    let live_count = live.iter().filter(|&&l| l).count();
    let mut matrix = vec![vec![0usize; num_nodes]; live.len()];

    if live_count == 0 {
        // Everything is down: an empty machine is a valid (if sad) segment.
        return Ok(ThreadAssignment::from_matrix(matrix));
    }
    if plan.reclaim {
        let shared =
            coop_alloc::strategies::fair_share(&scenario.machine, live_count).map_err(|e| {
                SimError::Calibration {
                    reason: format!("fair-share reclamation failed: {e}"),
                }
            })?;
        let mut pos = 0usize;
        for (app, row) in matrix.iter_mut().enumerate() {
            if live[app] {
                for (node, slot) in row.iter_mut().enumerate() {
                    *slot = shared.get(pos, numa_topology::NodeId(node));
                }
                pos += 1;
            }
        }
    } else {
        for (app, row) in matrix.iter_mut().enumerate() {
            if live[app] {
                for (node, slot) in row.iter_mut().enumerate() {
                    *slot = base.get(app, numa_topology::NodeId(node));
                }
            }
        }
    }
    Ok(ThreadAssignment::from_matrix(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NamedAssignment;
    use crate::{EffectModel, SimApp};
    use numa_topology::presets::tiny;

    /// Two identical apps fair-sharing the tiny machine (1 thread per
    /// node each), ideal effects: fully deterministic throughput.
    fn two_app_scenario() -> Scenario {
        Scenario {
            name: "chaos-base".into(),
            machine: tiny(),
            apps: vec![
                SimApp::numa_local("a", 1.0 / 32.0),
                SimApp::numa_local("b", 1.0 / 32.0),
            ],
            assignments: vec![NamedAssignment {
                name: "even".into(),
                threads: vec![vec![1, 1], vec![1, 1]],
            }],
            duration_s: 0.1,
            effects: EffectModel::ideal(),
            seed: 7,
        }
    }

    #[test]
    fn reclamation_lets_the_survivor_absorb_the_freed_cores() {
        let scenario = two_app_scenario();
        let kill_b = ChaosPlan {
            outages: vec![AppOutage {
                app: 1,
                down_at_s: 0.05,
                up_at_s: None,
            }],
            reclaim: false,
        };

        let idle = run_chaos_scenario(&scenario, &kill_b).unwrap();
        let reclaimed = run_chaos_scenario(&scenario, &kill_b.clone().with_reclaim(true)).unwrap();

        // The dead app stops either way.
        assert!(idle.result.app_gflops(1) < idle.result.total_gflops());
        // With reclamation the survivor takes over the whole machine for
        // the second half: strictly more work than when the cores idle.
        assert!(
            reclaimed.result.app_gflops(0) > idle.result.app_gflops(0) * 1.2,
            "reclaimed {} vs idle {}",
            reclaimed.result.app_gflops(0),
            idle.result.app_gflops(0)
        );
        assert!(reclaimed.result.total_gflops() > idle.result.total_gflops());
    }

    #[test]
    fn kill_revive_round_trips_through_three_segments() {
        let scenario = two_app_scenario();
        let plan = ChaosPlan::kill_revive(1, 0.03, 0.06);
        let r = run_chaos_scenario(&scenario, &plan).unwrap();
        assert_eq!(r.segments.len(), 3);
        assert_eq!(r.segments[0].1, vec![true, true]);
        assert_eq!(r.segments[1].1, vec![true, false]);
        assert_eq!(r.segments[2].1, vec![true, true]);
        // The revived app did real work before and after the outage.
        assert!(r.result.app_gflops(1) > 0.0);
        // The survivor out-executes the app that lost a third of the run.
        assert!(r.result.app_gflops(0) > r.result.app_gflops(1));
    }

    #[test]
    fn chaos_edges_show_up_as_reallocation_events() {
        let hub = Arc::new(TelemetryHub::new());
        let scenario = two_app_scenario();
        let plan = ChaosPlan::kill_revive(0, 0.03, 0.06);
        run_chaos_scenario_with_telemetry(&scenario, &plan, Arc::clone(&hub)).unwrap();
        let switches = hub
            .events()
            .iter()
            .filter(|e| e.cat == "scheduler" && e.name.starts_with("assignment"))
            .count();
        assert!(
            switches >= 2,
            "down and up edges must land on the timeline, saw {switches}"
        );
    }

    #[test]
    fn event_engine_agrees_with_slice_on_chaos() {
        let scenario = two_app_scenario();
        let plan = ChaosPlan::kill_revive(1, 0.03, 0.06);
        let slice = run_chaos_scenario_on(&scenario, &plan, None, EngineKind::Slice).unwrap();
        let event = run_chaos_scenario_on(&scenario, &plan, None, EngineKind::Event).unwrap();
        assert_eq!(slice.segments, event.segments);
        for a in 0..2 {
            let s = slice.result.app_gflops(a);
            let e = event.result.app_gflops(a);
            assert!(
                (s - e).abs() <= 1e-9 * s.max(1.0),
                "app {a}: slice {s} vs event {e}"
            );
        }
    }

    #[test]
    fn parallel_event_engine_is_bit_identical_on_chaos() {
        let scenario = two_app_scenario();
        let plan = ChaosPlan::kill_revive(1, 0.03, 0.06);
        let seq = run_chaos_scenario_on(&scenario, &plan, None, EngineKind::Event).unwrap();
        for threads in [2usize, 8] {
            let par =
                run_chaos_scenario_threaded(&scenario, &plan, None, EngineKind::Event, threads)
                    .unwrap();
            assert_eq!(seq.segments, par.segments);
            for a in 0..2 {
                assert_eq!(
                    seq.result.app_gflops(a).to_bits(),
                    par.result.app_gflops(a).to_bits(),
                    "app {a} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let scenario = two_app_scenario();
        let bad_app = ChaosPlan {
            outages: vec![AppOutage {
                app: 9,
                down_at_s: 0.01,
                up_at_s: None,
            }],
            reclaim: true,
        };
        assert!(bad_app.validate(&scenario).is_err());

        let bad_times = ChaosPlan {
            outages: vec![AppOutage {
                app: 0,
                down_at_s: 0.05,
                up_at_s: Some(0.02),
            }],
            reclaim: true,
        };
        assert!(bad_times.validate(&scenario).is_err());
    }
}
