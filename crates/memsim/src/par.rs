//! The conservative parallel discrete-event engine.
//!
//! [`run_dynamic_event_par`] runs the same physics as
//! [`crate::event::run_dynamic_event`] across `sim_threads` worker shards,
//! and produces **bit-identical** results — the same [`crate::EventLog`]
//! bytes, the same [`crate::SimResult`] floats — at any shard count.
//!
//! # Design
//!
//! Components are partitioned by a [`ShardPlan`]: each shard owns a
//! contiguous range of applications (and, because assignments expand
//! app-major, the matching contiguous range of simulated threads) plus a
//! contiguous range of NUMA nodes (their controllers and inbound links).
//! Each shard runs its own [`EventHeap`] on a dedicated worker thread.
//!
//! Synchronization is *conservative*: nobody speculates past the **safe
//! horizon** — the lower bound on the timestamp (LBTS) of the next event
//! anywhere in the fleet, i.e. the minimum over every shard's earliest
//! pending tick and the coordinator-owned agent's next schedule edge.
//! Between two horizons every rate in the system is constant, so the
//! segment is integrated analytically, exactly as the single-threaded
//! engine does — except the per-thread demand rows and the per-node
//! bandwidth arbitrations are fanned out across the shards.
//!
//! Each segment runs a fixed four-barrier protocol:
//!
//! 1. **publish** — the coordinator computes the horizon and the globally
//!    coupled prologue (active set, census, capacities — the jitter RNG
//!    stays sequential), then releases the workers;
//! 2. **demand** — each shard fills its own threads' demand rows;
//! 3. **arbitrate** — each shard arbitrates its own target nodes against
//!    the *whole* demand matrix (reads cross shards, writes stay home),
//!    writing per-thread grant columns;
//! 4. **integrate** — each shard folds the grant columns back over its own
//!    threads (ascending, gated on `d > 0` — the identical float-add
//!    sequence the sequential engine performs), banks gflops, advances its
//!    controllers/links, and drains its heap events at the horizon.
//!
//! The coordinator then merges the shard-drained events with any agent
//! edge by the global heap key `(tie, component)` — reproducing the
//! single heap's pop order — appends them to the log, and applies
//! assignment switches. Determinism follows because no step's result
//! depends on worker scheduling: every cross-shard value is read strictly
//! after the barrier that orders its write.

use crate::engine::{
    arbitrate_node, expand_threads, fill_demand_row, rates_prologue, DemandView, EpochTracer,
    NodeScratch, RateScratch, SimTelemetry, Thread,
};
use crate::event::{
    s_to_tick, splitmix64, tick_to_s, AgentComponent, AppComponent, Component,
    ControllerComponent, EventEdge, EventHeap, LinkComponent, SimEvent, Tick, TieBreak, AGENT_ID,
    APP_ID0,
};
use crate::result::AppSeries;
use crate::{EventLog, ShardPlan, SimApp, SimConfig, SimError, SimResult, Simulation};
use numa_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roofline_numa::ThreadAssignment;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, RwLock};

/// Sentinel for "this shard has no pending event".
const NO_TICK: Tick = Tick::MAX;

/// Barrier crossings per integrated segment (the four-phase protocol).
const BARRIERS_PER_SEGMENT: u64 = 4;

/// The default plan for `config.sim_threads` shards: contiguous app ranges
/// balanced by each app's worst-case thread count across the schedule, and
/// an even split of the NUMA nodes.
pub(crate) fn default_plan(
    config: &SimConfig,
    num_apps: usize,
    schedule: &[(f64, ThreadAssignment)],
) -> ShardPlan {
    let num_nodes = config.machine.num_nodes();
    let mut weights = vec![1usize; num_apps];
    for (_, assignment) in schedule {
        for (app, w) in weights.iter_mut().enumerate() {
            if app >= assignment.num_apps() {
                continue;
            }
            let count: usize = (0..num_nodes)
                .map(|n| assignment.get(app, NodeId(n)))
                .sum();
            *w = (*w).max(count);
        }
    }
    ShardPlan::balanced(num_apps, num_nodes, config.sim_threads, &weights)
}

/// What the coordinator publishes before releasing the workers into a
/// segment.
#[derive(Debug, Clone, Copy, Default)]
struct SegmentHeader {
    horizon: Tick,
    dt_s: f64,
    mid_s: f64,
    /// Events at the horizon are drained (false for the final segment:
    /// the sequential engine ends the run *before* draining ticks at
    /// `end`, and so must we).
    drain: bool,
    /// The run is over; workers exit.
    done: bool,
}

/// One shard's coordinator-visible buffers. Every buffer has exactly one
/// writer per phase, and readers only look after the barrier that ordered
/// the write — the `RwLock`s are never contended, they exist to keep the
/// crate `forbid(unsafe_code)`-clean.
struct ShardBuf {
    /// Own threads' demand rows, row-major `num_nodes` wide.
    demand: RwLock<Vec<f64>>,
    /// Own nodes × all threads: per-target grant columns. Only slots whose
    /// current demand is positive are written; readers gate identically.
    cols: RwLock<Vec<f64>>,
    /// Per own node: `(served_gbs, remote_in_gbs)` for this segment.
    node_out: RwLock<Vec<(f64, f64)>>,
    /// Component ids drained at the last horizon, in shard pop order.
    staged: RwLock<Vec<u32>>,
    /// Earliest pending tick in this shard's heap ([`NO_TICK`] = none).
    next_tick: AtomicU64,
}

/// State shared between the coordinator and all workers.
struct Shared<'a> {
    header: RwLock<SegmentHeader>,
    /// Per-thread compute capacity, coordinator-written each segment.
    cap: RwLock<Vec<f64>>,
    /// The expanded thread list for the applied assignment.
    threads: RwLock<Vec<Thread>>,
    /// Shard `s` owns global threads `thread_bounds[s]..thread_bounds[s+1]`
    /// (always aligned to app boundaries).
    thread_bounds: RwLock<Vec<usize>>,
    shards: Vec<ShardBuf>,
    barrier: Barrier,
    plan: &'a ShardPlan,
    num_nodes: usize,
}

/// A worker's private state: its components, heap, and result partials.
/// Moved into the worker thread and recovered at join.
struct WorkerState {
    shard: usize,
    apps_lo: usize,
    nodes_lo: usize,
    nodes_hi: usize,
    comps: Vec<AppComponent>,
    heap: EventHeap,
    /// Per own app.
    gflop_done: Vec<f64>,
    app_rate: Vec<f64>,
    series: Vec<AppSeries>,
    /// Per own node.
    controllers: Vec<ControllerComponent>,
    links: Vec<LinkComponent>,
    node_tmp: NodeScratch,
}

/// Thread-range boundaries matching `app_bounds` (threads are app-major,
/// so each app's threads are contiguous and never straddle a shard —
/// which keeps every app's gflop accumulation on one worker, in the same
/// ascending-thread order as the sequential engine).
fn thread_bounds_for(threads: &[Thread], app_bounds: &[usize]) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(app_bounds.len());
    let mut i = 0usize;
    for &apps_before in app_bounds {
        while i < threads.len() && threads[i].app < apps_before {
            i += 1;
        }
        bounds.push(i);
    }
    bounds
}

/// One worker's lifetime: segments until the coordinator publishes `done`.
fn worker_run(
    shared: &Shared<'_>,
    st: &mut WorkerState,
    apps: &[SimApp],
    machine: &numa_topology::Machine,
    effects: &crate::EffectModel,
) {
    let s = st.shard;
    let nn = shared.num_nodes;
    let own_nodes = st.nodes_hi - st.nodes_lo;
    loop {
        shared.barrier.wait(); // 1: segment published
        let hdr = *shared.header.read().expect("header lock");
        if hdr.done {
            return;
        }

        // Phase 2: fill own threads' demand rows.
        {
            let cap = shared.cap.read().expect("cap lock");
            let threads = shared.threads.read().expect("threads lock");
            let bounds = shared.thread_bounds.read().expect("bounds lock");
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let mut demand = shared.shards[s].demand.write().expect("demand lock");
            demand.resize((hi - lo) * nn, 0.0);
            for i in lo..hi {
                let row = &mut demand[(i - lo) * nn..(i - lo + 1) * nn];
                fill_demand_row(&apps[threads[i].app], threads[i].home, cap[i], row);
            }
        }
        shared.barrier.wait(); // 2: demand matrix complete

        // Phase 3: arbitrate own target nodes against the whole matrix.
        {
            let threads = shared.threads.read().expect("threads lock");
            let num_threads = threads.len();
            let guards: Vec<_> = shared
                .shards
                .iter()
                .map(|b| b.demand.read().expect("demand lock"))
                .collect();
            let parts: Vec<&[f64]> = guards.iter().map(|g| g.as_slice()).collect();
            let view = DemandView {
                parts: &parts,
                num_nodes: nn,
            };
            st.node_tmp.reset(apps.len(), num_threads, nn);
            let mut cols = shared.shards[s].cols.write().expect("cols lock");
            cols.resize(own_nodes * num_threads, 0.0);
            let mut out = shared.shards[s].node_out.write().expect("node_out lock");
            out.resize(own_nodes, (0.0, 0.0));
            for ln in 0..own_nodes {
                let col = &mut cols[ln * num_threads..(ln + 1) * num_threads];
                out[ln] = arbitrate_node(
                    machine,
                    effects,
                    st.nodes_lo + ln,
                    &threads,
                    &view,
                    &mut st.node_tmp,
                    col,
                );
            }
        }
        shared.barrier.wait(); // 3: grant columns complete

        // Phase 4: fold grants over own threads, bank work, advance own
        // controllers/links, drain own heap events at the horizon.
        {
            let cap = shared.cap.read().expect("cap lock");
            let threads = shared.threads.read().expect("threads lock");
            let bounds = shared.thread_bounds.read().expect("bounds lock");
            let num_threads = threads.len();
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let demand = shared.shards[s].demand.read().expect("demand lock");
            let col_guards: Vec<_> = shared
                .shards
                .iter()
                .map(|b| b.cols.read().expect("cols lock"))
                .collect();
            st.app_rate.fill(0.0);
            for i in lo..hi {
                let row = &demand[(i - lo) * nn..(i - lo + 1) * nn];
                // The same ascending-target, `d > 0`-gated accumulation as
                // the sequential engine's per-target fold.
                let mut granted = 0.0f64;
                for (target, &d) in row.iter().enumerate() {
                    if d <= 0.0 {
                        continue;
                    }
                    let owner = shared.plan.node_owner(target);
                    let local_node = target - shared.plan.node_bounds[owner];
                    granted += col_guards[owner][local_node * num_threads + i];
                }
                if cap[i] == 0.0 {
                    continue;
                }
                let app = threads[i].app;
                let gflops = (apps[app].spec.ai * granted).min(cap[i]);
                st.gflop_done[app - st.apps_lo] += gflops * hdr.dt_s;
                st.app_rate[app - st.apps_lo] += gflops;
            }
            for (a, series) in st.series.iter_mut().enumerate() {
                series.times_s.push(hdr.mid_s);
                series.gflops_series.push(st.app_rate[a]);
            }
            let out = shared.shards[s].node_out.read().expect("node_out lock");
            for ln in 0..own_nodes {
                let (served, remote_in) = out[ln];
                st.controllers[ln].integrate(served, hdr.dt_s);
                st.controllers[ln].advance(hdr.horizon);
                st.links[ln].remote_gb += remote_in * hdr.dt_s;
                st.links[ln].advance(hdr.horizon);
            }
            if hdr.drain {
                let mut staged = shared.shards[s].staged.write().expect("staged lock");
                staged.clear();
                while st.heap.peek_tick() == Some(hdr.horizon) {
                    let (_, id) = st.heap.pop().expect("peeked");
                    let a = (id - APP_ID0) as usize - st.apps_lo;
                    st.comps[a].advance(hdr.horizon);
                    st.heap.schedule_component(id, &st.comps[a]);
                    staged.push(id);
                }
                shared.shards[s]
                    .next_tick
                    .store(st.heap.peek_tick().unwrap_or(NO_TICK), Ordering::Release);
            }
        }
        shared.barrier.wait(); // 4: segment integrated
    }
}

/// Parallel `run_dynamic_event`: same inputs and outputs, `plan.num_shards()`
/// worker threads, bit-identical results.
pub(crate) fn run_dynamic_event_par(
    sim: &Simulation,
    apps: &[SimApp],
    schedule: &[(f64, ThreadAssignment)],
    duration_s: f64,
    plan: &ShardPlan,
) -> crate::Result<(SimResult, EventLog)> {
    sim.validate_run(apps, schedule, duration_s)?;
    let machine = &sim.config.machine;
    let effects = &sim.config.effects;
    let num_nodes = machine.num_nodes();
    if let Err(reason) = plan.check(apps.len(), num_nodes) {
        return Err(SimError::BadPlan { reason });
    }
    let num_shards = plan.num_shards();
    let peak = machine.core_peak_gflops();
    let end = s_to_tick(duration_s).max(1);
    let seed = sim.config.seed;
    let mut rng = StdRng::seed_from_u64(seed);

    let tel = sim
        .telemetry
        .as_ref()
        .map(|hub| SimTelemetry::new(hub, machine, sim.time_base_us));

    // The agent lives on the coordinator; apply the initial assignment
    // (entries at or before t = 0) exactly as the sequential engine does.
    let mut agent = AgentComponent::new(schedule);
    agent.advance(0);
    let mut applied_idx = agent.idx;
    let threads = expand_threads(&schedule[applied_idx].1, num_nodes);
    let thread_bounds = thread_bounds_for(&threads, &plan.app_bounds);

    // Build each shard's private world: components, heap, partials.
    let mut states: Vec<WorkerState> = (0..num_shards)
        .map(|s| {
            let (apps_lo, apps_hi) = (plan.app_bounds[s], plan.app_bounds[s + 1]);
            let (nodes_lo, nodes_hi) = (plan.node_bounds[s], plan.node_bounds[s + 1]);
            let mut heap = EventHeap::new(TieBreak::Seeded(seed));
            let comps: Vec<AppComponent> = (apps_lo..apps_hi)
                .map(|a| {
                    let comp = AppComponent::new(&apps[a], end);
                    heap.schedule_component(APP_ID0 + a as u32, &comp);
                    comp
                })
                .collect();
            WorkerState {
                shard: s,
                apps_lo,
                nodes_lo,
                nodes_hi,
                comps,
                heap,
                gflop_done: vec![0.0; apps_hi - apps_lo],
                app_rate: vec![0.0; apps_hi - apps_lo],
                series: apps[apps_lo..apps_hi]
                    .iter()
                    .map(|a| AppSeries {
                        name: a.name().to_string(),
                        gflop_done: 0.0,
                        times_s: Vec::new(),
                        gflops_series: Vec::new(),
                    })
                    .collect(),
                controllers: (nodes_lo..nodes_hi)
                    .map(|_| ControllerComponent {
                        now: 0,
                        delivered_gb: 0.0,
                    })
                    .collect(),
                links: (nodes_lo..nodes_hi)
                    .map(|_| LinkComponent {
                        now: 0,
                        remote_gb: 0.0,
                    })
                    .collect(),
                node_tmp: NodeScratch::default(),
            }
        })
        .collect();

    let shared = Shared {
        header: RwLock::new(SegmentHeader::default()),
        cap: RwLock::new(Vec::new()),
        threads: RwLock::new(threads),
        thread_bounds: RwLock::new(thread_bounds),
        shards: states
            .iter()
            .map(|st| ShardBuf {
                demand: RwLock::new(Vec::new()),
                cols: RwLock::new(Vec::new()),
                node_out: RwLock::new(Vec::new()),
                staged: RwLock::new(Vec::new()),
                next_tick: AtomicU64::new(st.heap.peek_tick().unwrap_or(NO_TICK)),
            })
            .collect(),
        barrier: Barrier::new(num_shards + 1),
        plan,
        num_nodes,
    };

    let mut log = EventLog {
        seed,
        events: Vec::new(),
        segments: 0,
    };
    let mut tracer = EpochTracer::new(apps.len());
    if sim.tracing {
        if let Some(tel) = &tel {
            tracer.on_assignment(tel, 0.0, applied_idx, &schedule[applied_idx].1, apps);
        }
    }
    let mut scratch = RateScratch::default();
    let mut rr_offset = vec![0usize; num_nodes];
    let mut merged: Vec<u32> = Vec::new();
    let mut now: Tick = 0;

    let final_states = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .drain(..)
            .map(|mut st| {
                let shared = &shared;
                scope.spawn(move || {
                    worker_run(shared, &mut st, apps, machine, effects);
                    st
                })
            })
            .collect();

        loop {
            if now >= end {
                shared.header.write().expect("header lock").done = true;
                shared.barrier.wait();
                break;
            }
            // The safe horizon (LBTS): the earliest pending tick across
            // every shard heap and the agent, capped at the end of the run.
            let mut horizon = end;
            for buf in &shared.shards {
                horizon = horizon.min(buf.next_tick.load(Ordering::Acquire));
            }
            if let Some(t) = agent.next_tick() {
                horizon = horizon.min(t);
            }
            let horizon = horizon.min(end);
            debug_assert!(horizon > now, "the safe horizon must advance time");
            // A shard that crosses this barrier without an event of its own
            // at the horizon advanced purely by LBTS — a horizon stall.
            let stalls = shared
                .shards
                .iter()
                .filter(|b| b.next_tick.load(Ordering::Relaxed) != horizon)
                .count() as u64;
            let dt_s = tick_to_s(horizon - now);
            let mid_s = tick_to_s(now) + dt_s / 2.0;

            // Globally-coupled prologue: active set, census, capacities
            // (the jitter RNG draws stay in sequential thread order).
            {
                let threads = shared.threads.read().expect("threads lock");
                rates_prologue(
                    machine,
                    effects,
                    peak,
                    apps,
                    &threads,
                    mid_s,
                    false,
                    &mut rng,
                    &mut rr_offset,
                    tel.as_ref(),
                    &mut scratch,
                );
                let mut cap = shared.cap.write().expect("cap lock");
                cap.clear();
                cap.extend_from_slice(&scratch.cap);
            }
            *shared.header.write().expect("header lock") = SegmentHeader {
                horizon,
                dt_s,
                mid_s,
                drain: horizon < end,
                done: false,
            };
            shared.barrier.wait(); // 1: publish
            shared.barrier.wait(); // 2: demand
            shared.barrier.wait(); // 3: arbitrate
            shared.barrier.wait(); // 4: integrate

            log.segments += 1;
            if let Some(tel) = &tel {
                // Bandwidth samples in ascending node order, exactly as the
                // sequential engine emits them.
                for (s, buf) in shared.shards.iter().enumerate() {
                    let out = buf.node_out.read().expect("node_out lock");
                    for (ln, &(served, _)) in out.iter().enumerate() {
                        let node = plan.node_bounds[s] + ln;
                        let util = served / machine.node(NodeId(node)).bandwidth_gbs;
                        tel.record_bandwidth_sample(node, mid_s, served, util);
                    }
                }
                tel.record_shard_sync(BARRIERS_PER_SEGMENT, stalls);
            }
            now = horizon;
            if now >= end {
                continue; // the next iteration publishes `done`
            }

            // Merge the shard-drained events (plus any agent edge) by the
            // global heap key: (seeded tie, component id) — the exact pop
            // order of the sequential engine's single heap at this tick.
            merged.clear();
            for buf in &shared.shards {
                merged.extend_from_slice(&buf.staged.read().expect("staged lock"));
            }
            if agent.next_tick() == Some(now) {
                agent.advance(now);
                merged.push(AGENT_ID);
            }
            merged.sort_unstable_by_key(|&id| (splitmix64(seed ^ id as u64), id));
            for &id in &merged {
                log.events.push(SimEvent {
                    t_ns: now,
                    component: id,
                    kind: if id == AGENT_ID {
                        EventEdge::Assignment
                    } else {
                        EventEdge::Activity
                    },
                });
            }

            if agent.idx != applied_idx {
                let new_threads = expand_threads(&schedule[agent.idx].1, num_nodes);
                *shared.thread_bounds.write().expect("bounds lock") =
                    thread_bounds_for(&new_threads, &plan.app_bounds);
                *shared.threads.write().expect("threads lock") = new_threads;
                if let Some(tel) = &tel {
                    tel.record_assignment_switch(tick_to_s(now), agent.idx);
                }
                if sim.tracing {
                    if let Some(tel) = &tel {
                        tracer.on_assignment(
                            tel,
                            tick_to_s(now),
                            agent.idx,
                            &schedule[agent.idx].1,
                            apps,
                        );
                    }
                }
                applied_idx = agent.idx;
            }
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("simulator worker panicked"))
            .collect::<Vec<_>>()
    });

    // Stitch the shard partials back into global order.
    let sim_time = tick_to_s(end);
    let mut series: Vec<AppSeries> = Vec::with_capacity(apps.len());
    let mut node_avg_gbs: Vec<f64> = Vec::with_capacity(num_nodes);
    for st in final_states {
        for (a, mut app_series) in st.series.into_iter().enumerate() {
            app_series.gflop_done = st.gflop_done[a];
            series.push(app_series);
        }
        for c in &st.controllers {
            node_avg_gbs.push(c.delivered_gb / sim_time);
        }
    }
    let node_utilization: Vec<f64> = node_avg_gbs
        .iter()
        .enumerate()
        .map(|(n, &g)| g / machine.node(NodeId(n)).bandwidth_gbs)
        .collect();
    if let Some(tel) = &tel {
        tracer.finish(tel, sim_time);
        tel.record_run_summary(&node_avg_gbs, &node_utilization);
    }

    Ok((
        SimResult {
            machine: machine.name().to_string(),
            duration_s: sim_time,
            apps: series,
            node_avg_gbs,
            node_utilization,
        },
        log,
    ))
}
