//! Simulator configuration and the second-order effect model.

use numa_topology::Machine;
use serde::{Deserialize, Serialize};

/// The knobs that make `memsim` behave like hardware instead of like the
/// analytic model. All effects are multiplicative on bandwidth or compute
/// throughput; see the crate docs for what each one represents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectModel {
    /// Coefficient of variation of per-thread, per-quantum multiplicative
    /// noise (0 = deterministic). Mean-preserving uniform noise.
    pub jitter: f64,
    /// Throughput efficiency of remote (cross-node) traffic relative to the
    /// nominal link bandwidth (1.0 = links reach their spec).
    pub remote_efficiency: f64,
    /// Utilization beyond which a memory controller starts losing
    /// efficiency to queueing (0..1).
    pub saturation_knee: f64,
    /// Maximum fractional bandwidth loss at 100% utilization. Efficiency
    /// falls linearly from 1.0 at the knee to `1 - saturation_loss` at
    /// utilization 1.
    pub saturation_loss: f64,
    /// Fractional bandwidth loss per *additional* distinct application
    /// sharing a node's memory system (cache/row-buffer interference).
    pub multi_app_interference: f64,
    /// Extra capacity a memory controller spends per unit of bandwidth
    /// served to *remote* nodes (coherence/directory overhead): serving
    /// `r` GB/s remotely consumes `r * (1 + overhead)` GB/s of capacity.
    pub remote_service_overhead: f64,
    /// Fractional throughput loss applied to every thread on a node whose
    /// runnable-thread count exceeds its core count (context switches and
    /// cache refills under time-slicing).
    pub oversub_switch_loss: f64,
    /// Whether assignments may exceed a node's core count (the OS-style
    /// time-slicing path). The analytic model never allows this.
    pub allow_oversubscription: bool,
    /// Over-subscription execution style: `false` (default) models the OS
    /// scheduler as continuous fair shares (every runnable thread runs at
    /// `cores/runnable` duty each quantum); `true` models discrete round-
    /// robin time slices (each quantum, exactly `cores` of the runnable
    /// threads run, and the window rotates). Long-run throughput matches;
    /// the discrete mode exposes per-quantum burstiness.
    pub discrete_timeslice: bool,
}

impl EffectModel {
    /// No second-order effects: the simulator converges to the analytic
    /// model (used for cross-validation).
    pub fn ideal() -> Self {
        EffectModel {
            jitter: 0.0,
            remote_efficiency: 1.0,
            saturation_knee: 1.0,
            saturation_loss: 0.0,
            multi_app_interference: 0.0,
            remote_service_overhead: 0.0,
            oversub_switch_loss: 0.0,
            allow_oversubscription: false,
            discrete_timeslice: false,
        }
    }

    /// Effects tuned to reproduce the *character* of the paper's Table III
    /// measurements on the four-socket Skylake server: the model slightly
    /// over-estimates heavily shared and cross-node scenarios (~2–6%) and
    /// slightly under-estimates the single-application-per-node scenario.
    pub fn skylake_like() -> Self {
        EffectModel {
            jitter: 0.01,
            remote_efficiency: 0.70,
            saturation_knee: 0.55,
            saturation_loss: 0.13,
            multi_app_interference: 0.008,
            remote_service_overhead: 0.5,
            oversub_switch_loss: 0.03,
            allow_oversubscription: true,
            discrete_timeslice: false,
        }
    }
}

impl Default for EffectModel {
    fn default() -> Self {
        EffectModel::skylake_like()
    }
}

/// Which execution engine advances simulated time.
///
/// `Slice` is the original fixed-quantum engine: every quantum re-arbitrates
/// every node even when nothing changed, so cost scales with
/// `duration / quantum` regardless of how eventful the scenario is. `Event`
/// is the discrete-event engine: state changes (assignment edges, activity
/// edges) become heap events, bandwidth is arbitrated once per inter-event
/// segment and integrated analytically, so cost scales with the number of
/// events. The two agree on scenarios without slice-coupled effects (see
/// `docs/performance.md`, "Fleet simulation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EngineKind {
    /// Fixed-quantum time-stepped execution (the original engine).
    #[default]
    Slice,
    /// Discrete-event execution over a deterministic global event heap.
    Event,
}

impl EngineKind {
    /// Stable lowercase name, as printed by the CLI (`slice` / `event`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Slice => "slice",
            EngineKind::Event => "event",
        }
    }

    /// Parses the CLI spelling (`slice` / `event`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "slice" => Some(EngineKind::Slice),
            "event" => Some(EngineKind::Event),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A contiguous partition of simulated components across simulator worker
/// threads (the parallel event engine's shards).
///
/// Shard `s` owns applications `app_bounds[s]..app_bounds[s + 1]` — and,
/// because [`crate::Simulation`] expands assignments app-major, the
/// matching contiguous range of simulated threads — plus NUMA nodes
/// `node_bounds[s]..node_bounds[s + 1]` (their memory controllers and
/// inbound links). Both bound vectors have `shards + 1` entries, start at
/// 0, end at the respective totals, and are non-decreasing; empty ranges
/// are allowed (more shards than apps just idles the surplus workers).
///
/// The partition never changes the answer — the parallel engine is
/// bit-identical to the single-threaded event engine for *any* valid plan
/// (see `docs/performance.md`, "Parallel fleet simulation") — it only
/// changes how the per-segment arbitration work is spread across cores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Per-shard application-range boundaries (`shards + 1` entries).
    pub app_bounds: Vec<usize>,
    /// Per-shard NUMA-node-range boundaries (`shards + 1` entries).
    pub node_bounds: Vec<usize>,
}

impl ShardPlan {
    /// Plans `shards` contiguous shards over `num_apps` applications and
    /// `num_nodes` NUMA nodes, balancing by `weights` (one weight per app,
    /// typically its worst-case thread count across the schedule; missing
    /// or zero weights count as 1). Deterministic: same inputs, same plan.
    pub fn balanced(num_apps: usize, num_nodes: usize, shards: usize, weights: &[usize]) -> Self {
        let shards = shards.max(1);
        let w: Vec<u64> = (0..num_apps)
            .map(|a| weights.get(a).copied().unwrap_or(1).max(1) as u64)
            .collect();
        let total: u64 = w.iter().sum();
        let mut app_bounds = Vec::with_capacity(shards + 1);
        app_bounds.push(0usize);
        let mut acc = 0u64;
        let mut next = 0usize;
        for s in 1..shards {
            // Advance to the first app whose cumulative weight reaches this
            // shard's proportional target.
            let target = total * s as u64 / shards as u64;
            while next < num_apps && acc < target {
                acc += w[next];
                next += 1;
            }
            app_bounds.push(next);
        }
        app_bounds.push(num_apps);
        let node_bounds = (0..=shards).map(|s| num_nodes * s / shards).collect();
        ShardPlan {
            app_bounds,
            node_bounds,
        }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.app_bounds.len().saturating_sub(1)
    }

    /// Checks the plan's shape against a simulation's app and node counts.
    pub(crate) fn check(&self, num_apps: usize, num_nodes: usize) -> Result<(), &'static str> {
        let shards = self.num_shards();
        if shards == 0 || self.node_bounds.len() != shards + 1 {
            return Err("shard plan must have matching, non-empty bound vectors");
        }
        for (bounds, total) in [(&self.app_bounds, num_apps), (&self.node_bounds, num_nodes)] {
            if bounds[0] != 0 || bounds[shards] != total {
                return Err("shard plan bounds must span 0..=total");
            }
            if bounds.windows(2).any(|w| w[0] > w[1]) {
                return Err("shard plan bounds must be non-decreasing");
            }
        }
        Ok(())
    }

    /// The shard owning NUMA node `node`.
    pub(crate) fn node_owner(&self, node: usize) -> usize {
        // `partition_point` finds the first bound beyond `node`; bounds
        // are non-decreasing so every node belongs to exactly one
        // non-empty range.
        self.node_bounds.partition_point(|&b| b <= node) - 1
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine being simulated.
    pub machine: Machine,
    /// Time quantum in seconds. Each quantum performs one bandwidth
    /// arbitration. Default 1 ms.
    pub quantum_s: f64,
    /// Second-order effects.
    pub effects: EffectModel,
    /// Seed for the jitter stream (simulations are deterministic per seed).
    pub seed: u64,
    /// Which execution engine to use (default [`EngineKind::Slice`]).
    pub engine: EngineKind,
    /// Simulator worker threads for the event engine (default 1: the
    /// single-threaded engine). With more than one, [`EngineKind::Event`]
    /// runs the conservative parallel engine: components are sharded with
    /// [`ShardPlan::balanced`] and synchronized at every safe horizon. The
    /// result is bit-identical at any thread count; only wall-clock time
    /// changes. Ignored by [`EngineKind::Slice`].
    pub sim_threads: usize,
    /// Whether per-step arbitration buffers are allocated once per run and
    /// reused (default) or reallocated every step. The `false` setting
    /// exists only so the fleet bench can report an honest before/after
    /// column for the allocation-hoisting work; results are identical.
    pub scratch_reuse: bool,
}

impl SimConfig {
    /// Creates a config with the default quantum (1 ms), default effects
    /// ([`EffectModel::skylake_like`]) and seed 0.
    pub fn new(machine: Machine) -> Self {
        SimConfig {
            machine,
            quantum_s: 1e-3,
            effects: EffectModel::default(),
            seed: 0,
            engine: EngineKind::default(),
            sim_threads: 1,
            scratch_reuse: true,
        }
    }

    /// Overrides the effect model.
    pub fn with_effects(mut self, effects: EffectModel) -> Self {
        self.effects = effects;
        self
    }

    /// Overrides the time quantum.
    pub fn with_quantum(mut self, quantum_s: f64) -> Self {
        self.quantum_s = quantum_s;
        self
    }

    /// Overrides the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the event engine's worker-thread count; see
    /// [`SimConfig::sim_threads`]. Zero is clamped to 1.
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads.max(1);
        self
    }

    /// Disables (or re-enables) arbitration-scratch reuse; see
    /// [`SimConfig::scratch_reuse`].
    pub fn with_scratch_reuse(mut self, reuse: bool) -> Self {
        self.scratch_reuse = reuse;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::tiny;

    #[test]
    fn ideal_effects_are_neutral() {
        let e = EffectModel::ideal();
        assert_eq!(e.jitter, 0.0);
        assert_eq!(e.remote_efficiency, 1.0);
        assert_eq!(e.saturation_loss, 0.0);
        assert_eq!(e.multi_app_interference, 0.0);
        assert_eq!(e.remote_service_overhead, 0.0);
        assert!(!e.allow_oversubscription);
    }

    #[test]
    fn skylake_like_is_lossy_but_mild() {
        let e = EffectModel::skylake_like();
        assert!(e.remote_efficiency < 1.0 && e.remote_efficiency > 0.5);
        assert!(e.saturation_loss > 0.0 && e.saturation_loss < 0.2);
        assert!(e.remote_service_overhead >= 0.0);
        assert!(e.oversub_switch_loss < 0.1, "paper: only a few percent");
    }

    #[test]
    fn config_builders() {
        let c = SimConfig::new(tiny())
            .with_quantum(5e-4)
            .with_seed(9)
            .with_effects(EffectModel::ideal())
            .with_engine(EngineKind::Event)
            .with_scratch_reuse(false);
        assert_eq!(c.quantum_s, 5e-4);
        assert_eq!(c.seed, 9);
        assert_eq!(c.effects, EffectModel::ideal());
        assert_eq!(c.engine, EngineKind::Event);
        assert!(!c.scratch_reuse);
    }

    #[test]
    fn sim_threads_builder_clamps_zero() {
        let c = SimConfig::new(tiny()).with_sim_threads(0);
        assert_eq!(c.sim_threads, 1);
        assert_eq!(SimConfig::new(tiny()).sim_threads, 1, "default is 1");
        assert_eq!(SimConfig::new(tiny()).with_sim_threads(8).sim_threads, 8);
    }

    #[test]
    fn balanced_plan_partitions_apps_and_nodes() {
        let plan = ShardPlan::balanced(10, 8, 4, &[1; 10]);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.app_bounds.first(), Some(&0));
        assert_eq!(plan.app_bounds.last(), Some(&10));
        assert_eq!(plan.node_bounds, vec![0, 2, 4, 6, 8]);
        assert!(plan.check(10, 8).is_ok());
        for node in 0..8 {
            let s = plan.node_owner(node);
            assert!(plan.node_bounds[s] <= node && node < plan.node_bounds[s + 1]);
        }
    }

    #[test]
    fn balanced_plan_follows_weights() {
        // One heavy app (weight 8) and seven light ones across two shards:
        // the heavy app should sit alone (or nearly so) in its shard.
        let plan = ShardPlan::balanced(8, 4, 2, &[8, 1, 1, 1, 1, 1, 1, 1]);
        let first = plan.app_bounds[1];
        assert!(first <= 2, "heavy first shard stays small, got {plan:?}");
        // More shards than apps: surplus shards are empty but valid.
        let wide = ShardPlan::balanced(2, 2, 8, &[1, 1]);
        assert_eq!(wide.num_shards(), 8);
        assert!(wide.check(2, 2).is_ok());
    }

    #[test]
    fn plan_check_rejects_malformed_bounds() {
        let plan = ShardPlan {
            app_bounds: vec![0, 3, 2],
            node_bounds: vec![0, 1, 2],
        };
        assert!(plan.check(2, 2).is_err(), "decreasing bounds");
        let plan = ShardPlan {
            app_bounds: vec![0, 2],
            node_bounds: vec![0, 1],
        };
        assert!(plan.check(2, 2).is_err(), "node bounds fall short");
    }

    #[test]
    fn engine_kind_round_trips() {
        assert_eq!(EngineKind::default(), EngineKind::Slice);
        for kind in [EngineKind::Slice, EngineKind::Event] {
            assert_eq!(EngineKind::parse(kind.as_str()), Some(kind));
            assert_eq!(EngineKind::parse(&kind.as_str().to_uppercase()), Some(kind));
        }
        assert_eq!(EngineKind::parse("quantum"), None);
        assert_eq!(EngineKind::Event.to_string(), "event");
    }
}
