//! Calibration: estimating machine parameters from measurements.
//!
//! §III.B of the paper: "we have only been able to make our best effort ...
//! and then estimate the parameters of the machine from the measured
//! performance of the application. We have configured the benchmark to
//! match the even thread allocation scenario ... and estimated the
//! hardware's performance parameters from this case. The performance is
//! consistent with 100 GB/s memory bandwidth and 0.29 peak GFLOPS per
//! thread."
//!
//! [`calibrate_even_scenario`] implements exactly that fit. Given the
//! measured per-application GFLOPS of the even-allocation scenario (three
//! memory-bound instances with a common AI plus one compute-bound
//! instance), it recovers:
//!
//! * **peak GFLOPS per thread** from the compute-bound application, whose
//!   threads are never bandwidth-starved: `peak = gflops_comp / threads`;
//! * **node memory bandwidth** from bandwidth conservation on a saturated
//!   node: the compute threads consume `threads_per_node * peak` GB/s
//!   (AI = 1 for the paper's compute benchmark, so GFLOPS = GB/s) and the
//!   memory-bound applications absorb the rest, so
//!   `B = comp_bw_per_node + mem_gflops_total / (AI_mem * num_nodes)`.

use crate::{Result, SimError};
use numa_topology::{Machine, MachineBuilder};

/// Output of a calibration fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedMachine {
    /// Fitted peak GFLOPS per thread.
    pub core_peak_gflops: f64,
    /// Fitted per-node memory bandwidth, GB/s.
    pub node_bandwidth_gbs: f64,
    /// The machine built from the fit (same shape as `template`, fitted
    /// core peak and bandwidth, template's link bandwidth).
    pub machine: Machine,
}

/// Fits machine parameters from the even-allocation scenario, mirroring
/// the paper's procedure.
///
/// * `template` — the machine whose *shape* (nodes, cores, links) is known;
///   its peak/bandwidth values are ignored by the fit.
/// * `mem_gflops_total` — summed measured GFLOPS of all memory-bound
///   application instances.
/// * `mem_ai` — their common arithmetic intensity (FLOP/byte).
/// * `comp_gflops` — measured GFLOPS of the compute-bound application
///   (AI = 1, per the paper's benchmark, so its GFLOPS equal its GB/s).
/// * `comp_threads_total` — machine-wide thread count of the compute app.
///
/// The memory-bound applications must actually be saturating the nodes for
/// the bandwidth fit to be meaningful (they are, by construction, in the
/// paper's scenario: 15 threads x 9.28 GB/s demanded vs ~100 available).
pub fn calibrate_even_scenario(
    template: &Machine,
    mem_gflops_total: f64,
    mem_ai: f64,
    comp_gflops: f64,
    comp_threads_total: usize,
) -> Result<CalibratedMachine> {
    if comp_threads_total == 0 {
        return Err(SimError::Calibration {
            reason: "compute-bound application must have at least one thread".into(),
        });
    }
    if mem_ai <= 0.0 || !mem_ai.is_finite() {
        return Err(SimError::Calibration {
            reason: format!("memory-bound AI must be positive, got {mem_ai}"),
        });
    }
    if mem_gflops_total <= 0.0 || comp_gflops <= 0.0 {
        return Err(SimError::Calibration {
            reason: "measured GFLOPS must be positive".into(),
        });
    }
    let num_nodes = template.num_nodes() as f64;

    // Compute-bound threads run at peak.
    let peak = comp_gflops / comp_threads_total as f64;

    // Bandwidth conservation on one (saturated) node. The compute app has
    // AI = 1 in the paper's benchmark: GB/s consumed = GFLOPS achieved.
    let comp_bw_per_node = comp_gflops / num_nodes;
    let mem_bw_per_node = mem_gflops_total / mem_ai / num_nodes;
    let bandwidth = comp_bw_per_node + mem_bw_per_node;

    let mut builder = MachineBuilder::new()
        .name(&format!("{}-calibrated", template.name()))
        .core_peak_gflops(peak);
    for node in template.nodes() {
        builder = builder.add_node(node.num_cores(), bandwidth, node.memory_gib);
    }
    // Keep the template's link matrix (links are not observable from the
    // even scenario; the paper used STREAM measurements for those).
    let dim = template.num_nodes();
    let rows: Vec<f64> = (0..dim)
        .flat_map(|i| (0..dim).map(move |j| (i, j)))
        .map(|(i, j)| {
            template
                .links()
                .link(numa_topology::NodeId(i), numa_topology::NodeId(j))
        })
        .collect();
    let machine = builder
        .link_matrix(
            numa_topology::LinkMatrix::from_rows(dim, &rows).map_err(|e| {
                SimError::Calibration {
                    reason: format!("link matrix: {e}"),
                }
            })?,
        )
        .build()
        .map_err(|e| SimError::Calibration {
            reason: format!("fitted machine invalid: {e}"),
        })?;

    Ok(CalibratedMachine {
        core_peak_gflops: peak,
        node_bandwidth_gbs: bandwidth,
        machine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::paper_skylake_machine;

    /// Feeding the paper's own numbers back recovers the paper's fit:
    /// even scenario measured 18.14 GFLOPS total, of which the compute app
    /// (20 threads) contributed 5.8 GFLOPS -> peak 0.29, bandwidth ~100.
    #[test]
    fn recovers_paper_parameters() {
        let template = paper_skylake_machine();
        let comp_gflops = 5.8; // 20 threads x 0.29
        let mem_gflops = 18.12 - 5.8; // model value of the mem apps
        let cal =
            calibrate_even_scenario(&template, mem_gflops, 1.0 / 32.0, comp_gflops, 20).unwrap();
        assert!((cal.core_peak_gflops - 0.29).abs() < 1e-9);
        assert!(
            (cal.node_bandwidth_gbs - 100.0).abs() < 0.1,
            "fitted {} GB/s",
            cal.node_bandwidth_gbs
        );
        assert_eq!(cal.machine.num_nodes(), 4);
        assert_eq!(cal.machine.total_cores(), 80);
        // Links copied from the template.
        assert!(
            (cal.machine
                .links()
                .link(numa_topology::NodeId(0), numa_topology::NodeId(1))
                - 10.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let template = paper_skylake_machine();
        assert!(calibrate_even_scenario(&template, 12.0, 1.0 / 32.0, 5.8, 0).is_err());
        assert!(calibrate_even_scenario(&template, 12.0, 0.0, 5.8, 20).is_err());
        assert!(calibrate_even_scenario(&template, -1.0, 1.0 / 32.0, 5.8, 20).is_err());
        assert!(calibrate_even_scenario(&template, 12.0, 1.0 / 32.0, 0.0, 20).is_err());
    }

    /// The fitted machine scores the even scenario consistently: running
    /// the analytic model on the calibrated machine reproduces the
    /// measurements the calibration consumed.
    #[test]
    fn fit_is_self_consistent() {
        let template = paper_skylake_machine();
        let cal = calibrate_even_scenario(&template, 12.32, 1.0 / 32.0, 5.8, 20).unwrap();
        let apps = vec![
            roofline_numa::AppSpec::numa_local("m1", 1.0 / 32.0),
            roofline_numa::AppSpec::numa_local("m2", 1.0 / 32.0),
            roofline_numa::AppSpec::numa_local("m3", 1.0 / 32.0),
            roofline_numa::AppSpec::numa_local("c", 1.0),
        ];
        let assignment =
            roofline_numa::ThreadAssignment::uniform_per_node(&cal.machine, &[5, 5, 5, 5]);
        let r = roofline_numa::solve(&cal.machine, &apps, &assignment).unwrap();
        let mem_total: f64 = (0..3).map(|a| r.app_gflops(a)).sum();
        assert!((mem_total - 12.32).abs() < 1e-6, "mem total {mem_total}");
        assert!((r.app_gflops(3) - 5.8).abs() < 1e-6);
    }
}
