//! The discrete-event execution engine.
//!
//! Where the slice engine re-arbitrates every node every quantum, this
//! engine only recomputes state when something *happens*: the simulated
//! fleet is decomposed into [`Component`]s — applications (activity
//! edges), the supervising agent (assignment edges), per-node memory
//! controllers and inter-node links (passive integrators) — and a global
//! min-heap orders their wake-ups. Between consecutive events every rate
//! in the system is constant, so bandwidth contention is arbitrated once
//! per segment (with the exact same two-phase physics as the slice
//! engine, see [`crate::engine::compute_rates`]) and work is integrated
//! analytically as `rate × Δt`. Cost scales with the number of events,
//! not with `duration / quantum` — which is what makes 5k-runtime ×
//! 256-node fleet scenarios tractable (see `docs/performance.md`).
//!
//! # Determinism
//!
//! The heap is keyed by `(time, tie, component)` where `tie` is a
//! seeded hash of the component id ([`TieBreak::Seeded`]) or the id
//! itself ([`TieBreak::ById`]). Same seed ⇒ same pop order ⇒ the same
//! byte-identical [`EventLog`]. Event times are integer nanoseconds so
//! ordering never depends on float rounding.

use crate::engine::{
    compute_rates, expand_threads, EpochTracer, RateScratch, SimTelemetry, Thread,
};
use crate::result::AppSeries;
use crate::{SimApp, SimResult, Simulation};
use numa_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use roofline_numa::ThreadAssignment;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in integer nanoseconds.
pub type Tick = u64;

/// Converts simulated seconds to an integer-nanosecond [`Tick`].
pub fn s_to_tick(t_s: f64) -> Tick {
    (t_s * 1e9).round() as Tick
}

/// Converts a [`Tick`] back to simulated seconds.
pub fn tick_to_s(t: Tick) -> f64 {
    t as f64 / 1e9
}

/// Something that evolves over simulated time.
///
/// A component declares when it next has intrinsic activity
/// ([`next_tick`](Component::next_tick)) and mutates its internal state
/// when the engine reaches that instant ([`advance`](Component::advance)).
/// Passive components (memory controllers, links) return `None` — they
/// never wake the engine, they are advanced across each segment by the
/// driver that owns them.
pub trait Component {
    /// The next simulated instant at which this component changes state,
    /// or `None` if it never does (again).
    fn next_tick(&self) -> Option<Tick>;
    /// Advances internal state to `now` (guaranteed `now >=` the tick the
    /// component last advanced to).
    fn advance(&mut self, now: Tick);
}

/// How equal-time heap entries are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Lowest component id pops first (matches greedy list-scheduling
    /// tie-breaks, used by the distsim bridge).
    ById,
    /// Seeded hash of the component id: deterministic per seed, but
    /// different seeds interleave equal-time components differently.
    Seeded(u64),
}

/// SplitMix64: cheap, well-distributed 64-bit mixer for tie-break keys.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic global event heap: a min-heap keyed by
/// `(time, tie, component_id)`.
#[derive(Debug)]
pub struct EventHeap {
    heap: BinaryHeap<Reverse<(Tick, u64, u32)>>,
    tie: TieBreak,
}

impl EventHeap {
    /// An empty heap with the given tie-break rule.
    pub fn new(tie: TieBreak) -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            tie,
        }
    }

    fn tie_key(&self, component: u32) -> u64 {
        match self.tie {
            TieBreak::ById => component as u64,
            TieBreak::Seeded(seed) => splitmix64(seed ^ component as u64),
        }
    }

    /// Schedules `component` to wake at `tick`.
    pub fn schedule(&mut self, tick: Tick, component: u32) {
        let tie = self.tie_key(component);
        self.heap.push(Reverse((tick, tie, component)));
    }

    /// Schedules a component's declared next tick, if it has one.
    pub fn schedule_component(&mut self, id: u32, component: &impl Component) {
        if let Some(t) = component.next_tick() {
            self.schedule(t, id);
        }
    }

    /// The earliest pending tick.
    pub fn peek_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// The earliest pending `(tick, tie, component)` triple without popping.
    ///
    /// The middle element is the resolved tie-break key, so two heaps built
    /// with the same [`TieBreak`] rule can be merged by comparing heads
    /// lexicographically — exactly the order a single combined heap would
    /// pop in. This is what the sharded fleet engine uses to pick the next
    /// global event across per-shard heaps.
    pub fn peek(&self) -> Option<(Tick, u64, u32)> {
        self.heap.peek().map(|Reverse(k)| *k)
    }

    /// Pops the earliest `(tick, component)` pair.
    pub fn pop(&mut self) -> Option<(Tick, u32)> {
        self.heap.pop().map(|Reverse((t, _, c))| (t, c))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// What kind of edge a processed event was. Serializes to the same JSON
/// strings the log always used (`"assignment"` / `"activity"`), but as an
/// enum it costs nothing per event — the old `String` field was one of the
/// last per-event heap allocations in the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventEdge {
    /// The supervising agent applied a dynamic-schedule entry.
    Assignment,
    /// An application crossed an activity-pattern edge.
    Activity,
}

impl EventEdge {
    /// The stable lowercase name (`"assignment"` / `"activity"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventEdge::Assignment => "assignment",
            EventEdge::Activity => "activity",
        }
    }
}

/// One processed event: when, which component, and what kind of edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Simulated time, nanoseconds.
    pub t_ns: Tick,
    /// Component id (0 = the supervising agent, `1..=num_apps` = apps).
    pub component: u32,
    /// Edge kind.
    pub kind: EventEdge,
}

/// The ordered log of every event the engine processed. Serializes
/// canonically, so same-seed runs are byte-identical
/// ([`EventLog::to_bytes`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EventLog {
    /// The simulation seed (also seeds heap tie-breaking).
    pub seed: u64,
    /// Processed events in pop order.
    pub events: Vec<SimEvent>,
    /// Number of constant-rate segments integrated (arbitrations
    /// performed). The slice engine would have performed
    /// `duration / quantum` of these.
    pub segments: u64,
}

impl EventLog {
    /// Number of processed events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were processed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of processed events of `kind` (`"assignment"` / `"activity"`).
    pub fn count_of(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind.as_str() == kind).count()
    }

    /// Canonical byte serialization (JSON) for determinism checks.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("event log serializes")
    }
}

/// Component id of the supervising agent (assignment edges).
pub(crate) const AGENT_ID: u32 = 0;
/// First application component id.
pub(crate) const APP_ID0: u32 = 1;

/// An application: wakes at its activity-pattern edges.
pub(crate) struct AppComponent {
    activity: crate::ActivityPattern,
    next: Option<Tick>,
    end: Tick,
}

impl AppComponent {
    pub(crate) fn new(app: &SimApp, end: Tick) -> Self {
        // `max(1)` guards against an edge so early it rounds onto tick 0,
        // which would stall the heap before time ever advances.
        let next = app
            .activity
            .next_edge(0.0)
            .map(|e| s_to_tick(e).max(1))
            .filter(|&t| t < end);
        AppComponent {
            activity: app.activity.clone(),
            next,
            end,
        }
    }
}

impl Component for AppComponent {
    fn next_tick(&self) -> Option<Tick> {
        self.next
    }

    fn advance(&mut self, now: Tick) {
        // Fire the pending edge and look up the next one. `max(now + 1)`
        // guards against an edge that rounds back onto `now`, which would
        // stall the heap.
        self.next = self
            .activity
            .next_edge(tick_to_s(now))
            .map(|e| s_to_tick(e).max(now + 1))
            .filter(|&t| t < self.end);
    }
}

/// The supervising agent: wakes at every dynamic-schedule entry and moves
/// the applied-assignment index forward (the same semantics as the slice
/// engine's per-quantum schedule scan).
pub(crate) struct AgentComponent {
    times: Vec<Tick>,
    pub(crate) idx: usize,
    fired: usize,
}

impl AgentComponent {
    pub(crate) fn new(schedule: &[(f64, ThreadAssignment)]) -> Self {
        AgentComponent {
            times: schedule.iter().map(|(t, _)| s_to_tick(*t)).collect(),
            idx: 0,
            fired: 0,
        }
    }
}

impl Component for AgentComponent {
    fn next_tick(&self) -> Option<Tick> {
        self.times.get(self.fired + 1).copied()
    }

    fn advance(&mut self, now: Tick) {
        while self.idx + 1 < self.times.len() && self.times[self.idx + 1] <= now {
            self.idx += 1;
        }
        self.fired = self.fired.max(self.idx);
    }
}

/// A per-node memory controller: passively integrates delivered bandwidth
/// across each segment.
pub(crate) struct ControllerComponent {
    pub(crate) now: Tick,
    pub(crate) delivered_gb: f64,
}

impl ControllerComponent {
    pub(crate) fn integrate(&mut self, gbs: f64, dt_s: f64) {
        self.delivered_gb += gbs * dt_s;
    }
}

impl Component for ControllerComponent {
    fn next_tick(&self) -> Option<Tick> {
        None
    }

    fn advance(&mut self, now: Tick) {
        debug_assert!(now >= self.now, "controllers only advance forward");
        self.now = now;
    }
}

/// A node's inbound inter-node links, aggregated: passively integrates the
/// remote share of the traffic its controller served.
pub(crate) struct LinkComponent {
    pub(crate) now: Tick,
    pub(crate) remote_gb: f64,
}

impl Component for LinkComponent {
    fn next_tick(&self) -> Option<Tick> {
        None
    }

    fn advance(&mut self, now: Tick) {
        debug_assert!(now >= self.now, "links only advance forward");
        self.now = now;
    }
}

/// Discrete-event `run_dynamic`: same inputs and result shape as the
/// slice engine, plus the processed [`EventLog`].
pub(crate) fn run_dynamic_event(
    sim: &Simulation,
    apps: &[SimApp],
    schedule: &[(f64, ThreadAssignment)],
    duration_s: f64,
    scratch: &mut RateScratch,
) -> crate::Result<(SimResult, EventLog)> {
    sim.validate_run(apps, schedule, duration_s)?;
    let machine = &sim.config.machine;
    let effects = &sim.config.effects;
    let num_nodes = machine.num_nodes();
    let peak = machine.core_peak_gflops();
    let end = s_to_tick(duration_s).max(1);
    let mut rng = StdRng::seed_from_u64(sim.config.seed);

    let tel = sim
        .telemetry
        .as_ref()
        .map(|hub| SimTelemetry::new(hub, machine, sim.time_base_us));

    // Components: agent (id 0), apps (ids 1..=n), then the passive
    // per-node controllers and links.
    let mut agent = AgentComponent::new(schedule);
    let mut app_comps: Vec<AppComponent> =
        apps.iter().map(|a| AppComponent::new(a, end)).collect();
    let mut controllers: Vec<ControllerComponent> = (0..num_nodes)
        .map(|_| ControllerComponent {
            now: 0,
            delivered_gb: 0.0,
        })
        .collect();
    let mut links: Vec<LinkComponent> = (0..num_nodes)
        .map(|_| LinkComponent {
            now: 0,
            remote_gb: 0.0,
        })
        .collect();

    let mut log = EventLog {
        seed: sim.config.seed,
        events: Vec::new(),
        segments: 0,
    };

    // Apply the initial assignment (entries at or before t = 0) *before*
    // seeding the heap, so schedule entries that all land at t = 0 do not
    // leave a stale zero-tick wake-up behind.
    agent.advance(0);
    let mut applied_idx = agent.idx;

    let mut heap = EventHeap::new(TieBreak::Seeded(sim.config.seed));
    heap.schedule_component(AGENT_ID, &agent);
    for (a, comp) in app_comps.iter().enumerate() {
        heap.schedule_component(APP_ID0 + a as u32, comp);
    }
    let mut threads: Vec<Thread> = expand_threads(&schedule[applied_idx].1, num_nodes);
    let mut tracer = EpochTracer::new(apps.len());
    if sim.tracing {
        if let Some(tel) = &tel {
            tracer.on_assignment(tel, 0.0, applied_idx, &schedule[applied_idx].1, apps);
        }
    }

    let mut rr_offset = vec![0usize; num_nodes];
    let mut gflop_done = vec![0.0f64; apps.len()];
    let mut app_rate = vec![0.0f64; apps.len()];
    let mut series: Vec<AppSeries> = apps
        .iter()
        .map(|a| AppSeries {
            name: a.name().to_string(),
            gflop_done: 0.0,
            times_s: Vec::new(),
            gflops_series: Vec::new(),
        })
        .collect();

    let mut now: Tick = 0;
    // The event engine models over-subscription as continuous fair shares
    // (discrete round-robin rotation is a per-quantum notion); long-run
    // throughput matches the slice engine's discrete mode within rounding.
    let discrete = false;

    while now < end {
        // The event horizon: the next pending event, or the end of the run.
        let horizon = heap.peek_tick().map_or(end, |t| t.min(end));
        debug_assert!(horizon > now, "event heap must advance time");
        let dt_s = tick_to_s(horizon - now);
        let mid_s = tick_to_s(now) + dt_s / 2.0;

        // Scratch buffers are hoisted out of the loop and reused;
        // `scratch_reuse = false` restores the allocate-per-segment
        // behavior for the fleet bench's `event_noreuse_ms` A/B column.
        if !sim.config.scratch_reuse {
            *scratch = RateScratch::default();
        }
        // Arbitrate once for the segment `[now, horizon)`. Every activity
        // edge is a heap event, so the active set is constant strictly
        // inside the segment and any interior instant is representative.
        // The midpoint is used rather than the segment start because
        // `tick_to_s(s_to_tick(e))` can land one float ulp before the edge
        // `e` itself, and evaluating `is_active` there would misclassify
        // the whole segment.
        compute_rates(
            machine,
            effects,
            peak,
            apps,
            &threads,
            mid_s,
            discrete,
            &mut rng,
            &mut rr_offset,
            tel.as_ref(),
            scratch,
        );

        // Integrate the constant-rate segment analytically.
        app_rate.fill(0.0);
        for (i, th) in threads.iter().enumerate() {
            if scratch.cap[i] == 0.0 {
                continue;
            }
            let gflops = (apps[th.app].spec.ai * scratch.granted[i]).min(scratch.cap[i]);
            gflop_done[th.app] += gflops * dt_s;
            app_rate[th.app] += gflops;
        }
        for (a, s) in series.iter_mut().enumerate() {
            s.times_s.push(mid_s);
            s.gflops_series.push(app_rate[a]);
        }
        for node in 0..num_nodes {
            controllers[node].integrate(scratch.node_served[node], dt_s);
            controllers[node].advance(horizon);
            links[node].remote_gb += scratch.node_remote_in[node] * dt_s;
            links[node].advance(horizon);
            if let Some(tel) = &tel {
                let util = scratch.node_served[node] / machine.node(NodeId(node)).bandwidth_gbs;
                tel.record_bandwidth_sample(node, mid_s, scratch.node_served[node], util);
            }
        }
        log.segments += 1;
        now = horizon;
        if now >= end {
            break;
        }

        // Drain and apply every event at `now` before re-arbitrating.
        while heap.peek_tick() == Some(now) {
            let (_, id) = heap.pop().expect("peeked");
            if id == AGENT_ID {
                agent.advance(now);
                heap.schedule_component(AGENT_ID, &agent);
                log.events.push(SimEvent {
                    t_ns: now,
                    component: id,
                    kind: EventEdge::Assignment,
                });
            } else {
                let a = (id - APP_ID0) as usize;
                app_comps[a].advance(now);
                heap.schedule_component(id, &app_comps[a]);
                log.events.push(SimEvent {
                    t_ns: now,
                    component: id,
                    kind: EventEdge::Activity,
                });
            }
        }
        if agent.idx != applied_idx {
            threads = expand_threads(&schedule[agent.idx].1, num_nodes);
            if let Some(tel) = &tel {
                tel.record_assignment_switch(tick_to_s(now), agent.idx);
            }
            if sim.tracing {
                if let Some(tel) = &tel {
                    tracer.on_assignment(tel, tick_to_s(now), agent.idx, &schedule[agent.idx].1, apps);
                }
            }
            applied_idx = agent.idx;
        }
    }

    let sim_time = tick_to_s(end);
    for (a, s) in series.iter_mut().enumerate() {
        s.gflop_done = gflop_done[a];
    }
    let node_avg_gbs: Vec<f64> = controllers
        .iter()
        .map(|c| c.delivered_gb / sim_time)
        .collect();
    let node_utilization: Vec<f64> = node_avg_gbs
        .iter()
        .enumerate()
        .map(|(n, &g)| g / machine.node(NodeId(n)).bandwidth_gbs)
        .collect();
    if let Some(tel) = &tel {
        tracer.finish(tel, sim_time);
        tel.record_run_summary(&node_avg_gbs, &node_utilization);
    }

    // `_remote` is currently only observable through the link components'
    // integrals; keep the name bound for future per-link telemetry.
    let _remote: f64 = links.iter().map(|l| l.remote_gb).sum();

    Ok((
        SimResult {
            machine: machine.name().to_string(),
            duration_s: sim_time,
            apps: series,
            node_avg_gbs,
            node_utilization,
        },
        log,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_time_then_tie() {
        let mut h = EventHeap::new(TieBreak::ById);
        h.schedule(30, 2);
        h.schedule(10, 7);
        h.schedule(30, 1);
        h.schedule(20, 5);
        let order: Vec<(Tick, u32)> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order, vec![(10, 7), (20, 5), (30, 1), (30, 2)]);
        assert!(h.is_empty());
    }

    #[test]
    fn seeded_tie_break_is_deterministic_per_seed() {
        let pops = |seed: u64| {
            let mut h = EventHeap::new(TieBreak::Seeded(seed));
            for id in 0..16u32 {
                h.schedule(5, id);
            }
            let mut order = Vec::new();
            while let Some((_, id)) = h.pop() {
                order.push(id);
            }
            order
        };
        assert_eq!(pops(1), pops(1), "same seed, same order");
        assert_ne!(pops(1), pops(2), "different seeds interleave ties differently");
    }

    #[test]
    fn event_edges_serialize_to_the_historic_strings() {
        let e = SimEvent {
            t_ns: 5,
            component: 1,
            kind: EventEdge::Activity,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"activity\""), "{json}");
        assert_eq!(EventEdge::Assignment.as_str(), "assignment");
        let back: SimEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn tick_conversion_round_trips() {
        for t in [0.0, 1e-3, 0.05, 1.0, 3600.0] {
            assert!((tick_to_s(s_to_tick(t)) - t).abs() < 1e-9);
        }
    }
}
