//! Declarative, serializable experiment scenarios.
//!
//! A [`Scenario`] bundles everything one simulator experiment needs —
//! machine, applications, one or more named assignments, duration, effect
//! model, seed — into a single JSON-serializable value, so experiments can
//! be version-controlled, shipped to the CLI (`coop-cli simulate`), and
//! re-run identically anywhere. [`run_scenario`] executes every assignment
//! and, for comparison, also scores each with the analytic model.

use crate::{EffectModel, EngineKind, Result, SimApp, SimConfig, SimError, Simulation};
use numa_topology::Machine;
use roofline_numa::{solve, AppSpec, ThreadAssignment};
use serde::{Deserialize, Serialize};

/// One named thread assignment inside a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedAssignment {
    /// Label used in results (e.g. `"even (5,5,5,5)"`).
    pub name: String,
    /// The `[app][node]` thread matrix.
    pub threads: Vec<Vec<usize>>,
}

/// A complete, self-contained experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// The machine to simulate.
    pub machine: Machine,
    /// The applications.
    pub apps: Vec<SimApp>,
    /// The assignments to compare.
    pub assignments: Vec<NamedAssignment>,
    /// Simulated duration per assignment, seconds.
    pub duration_s: f64,
    /// The effect model.
    pub effects: EffectModel,
    /// Jitter seed.
    pub seed: u64,
}

/// Result for one assignment of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// Assignment label.
    pub name: String,
    /// Simulated (effectful) machine-wide GFLOPS.
    pub simulated_gflops: f64,
    /// Analytic-model machine-wide GFLOPS for the same assignment.
    pub model_gflops: f64,
    /// Per-application simulated GFLOPS.
    pub per_app_gflops: Vec<f64>,
}

/// Result of a whole scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// One row per assignment, in scenario order.
    pub rows: Vec<ScenarioRow>,
}

impl Scenario {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization cannot fail")
    }

    /// Deserializes and validates a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Scenario> {
        let s: Scenario = serde_json::from_str(json).map_err(|e| SimError::Calibration {
            reason: format!("scenario JSON: {e}"),
        })?;
        s.validate()?;
        Ok(s)
    }

    /// Validates apps and assignments against the machine.
    pub fn validate(&self) -> Result<()> {
        for app in &self.apps {
            app.spec.validate(&self.machine)?;
        }
        if self.assignments.is_empty() {
            return Err(SimError::BadTime {
                reason: "scenario needs at least one assignment",
            });
        }
        for a in &self.assignments {
            let t = ThreadAssignment::from_matrix(a.threads.clone());
            if t.num_apps() != self.apps.len() {
                return Err(SimError::Model(
                    roofline_numa::ModelError::AppCountMismatch {
                        specs: self.apps.len(),
                        assignment: t.num_apps(),
                    },
                ));
            }
        }
        Ok(())
    }
}

/// Executes every assignment of the scenario, with the analytic model's
/// score alongside for comparison. The model comparison uses the same
/// machine (no calibration) and requires no over-subscription; assignments
/// that over-subscribe get `model_gflops = NaN`-free `0.0` with the
/// simulated value still reported.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult> {
    run_scenario_on(scenario, None, EngineKind::Slice)
}

/// Like [`run_scenario`], but attaches `hub` to the simulator so every
/// assignment's run publishes per-node bandwidth counter tracks, scheduler
/// switch counters, and utilization gauges into the shared telemetry hub.
pub fn run_scenario_with_telemetry(
    scenario: &Scenario,
    hub: std::sync::Arc<coop_telemetry::TelemetryHub>,
) -> Result<ScenarioResult> {
    run_scenario_on(scenario, Some(hub), EngineKind::Slice)
}

/// The fully general scenario runner: optional telemetry hub plus an
/// explicit [`EngineKind`] (what `coop simulate --engine` calls).
pub fn run_scenario_on(
    scenario: &Scenario,
    hub: Option<std::sync::Arc<coop_telemetry::TelemetryHub>>,
    engine: EngineKind,
) -> Result<ScenarioResult> {
    run_scenario_threaded(scenario, hub, engine, 1)
}

/// Like [`run_scenario_on`], running the event engine on `sim_threads`
/// worker shards (what `coop simulate --sim-threads` calls). Results are
/// bit-identical at any thread count; the slice engine ignores the
/// parameter.
pub fn run_scenario_threaded(
    scenario: &Scenario,
    hub: Option<std::sync::Arc<coop_telemetry::TelemetryHub>>,
    engine: EngineKind,
    sim_threads: usize,
) -> Result<ScenarioResult> {
    scenario.validate()?;
    let mut sim = Simulation::new(
        SimConfig::new(scenario.machine.clone())
            .with_effects(scenario.effects.clone())
            .with_seed(scenario.seed)
            .with_engine(engine)
            .with_sim_threads(sim_threads),
    );
    if let Some(hub) = hub {
        sim = sim.with_telemetry(hub);
    }
    let specs: Vec<AppSpec> = scenario.apps.iter().map(|a| a.spec.clone()).collect();

    let mut rows = Vec::with_capacity(scenario.assignments.len());
    for named in &scenario.assignments {
        let assignment = ThreadAssignment::from_matrix(named.threads.clone());
        let r = sim.run(&scenario.apps, &assignment, scenario.duration_s)?;
        let model_gflops = solve(&scenario.machine, &specs, &assignment)
            .map(|m| m.total_gflops())
            .unwrap_or(0.0);
        rows.push(ScenarioRow {
            name: named.name.clone(),
            simulated_gflops: r.total_gflops(),
            model_gflops,
            per_app_gflops: (0..scenario.apps.len()).map(|a| r.app_gflops(a)).collect(),
        });
    }
    Ok(ScenarioResult {
        name: scenario.name.clone(),
        rows,
    })
}

impl std::fmt::Display for ScenarioResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "scenario: {}", self.name)?;
        writeln!(
            f,
            "{:<28} {:>12} {:>12}",
            "assignment", "simulated", "model"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:>12.2} {:>12.2}",
                r.name, r.simulated_gflops, r.model_gflops
            )?;
        }
        Ok(())
    }
}

/// A ready-made scenario: the paper's Table III local scenarios on the
/// calibrated Skylake machine (handy as a template for custom files —
/// `coop-cli simulate --write-template` emits it).
pub fn template() -> Scenario {
    let machine = numa_topology::presets::paper_skylake_machine();
    Scenario {
        name: "table3-local-scenarios".into(),
        apps: vec![
            SimApp::numa_local("mem1", 1.0 / 32.0),
            SimApp::numa_local("mem2", 1.0 / 32.0),
            SimApp::numa_local("mem3", 1.0 / 32.0),
            SimApp::numa_local("comp", 1.0),
        ],
        assignments: vec![
            NamedAssignment {
                name: "uneven (1,1,1,17)".into(),
                threads: vec![vec![1; 4], vec![1; 4], vec![1; 4], vec![17; 4]],
            },
            NamedAssignment {
                name: "even (5,5,5,5)".into(),
                threads: vec![vec![5; 4]; 4],
            },
        ],
        duration_s: 0.05,
        effects: EffectModel::ideal(),
        seed: 0,
        machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_round_trips_and_runs() {
        let s = template();
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);

        let result = run_scenario(&back).unwrap();
        assert_eq!(result.rows.len(), 2);
        // Ideal effects: simulated == model, and the model values are the
        // paper's Table III rows 1-2.
        for r in &result.rows {
            assert!(
                (r.simulated_gflops - r.model_gflops).abs() < 1e-6,
                "{}: {} vs {}",
                r.name,
                r.simulated_gflops,
                r.model_gflops
            );
        }
        assert!((result.rows[0].model_gflops - 23.20).abs() < 5e-3);
        assert!((result.rows[1].model_gflops - 18.12).abs() < 5e-3);
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let mut s = template();
        s.assignments.clear();
        assert!(s.validate().is_err());

        let mut s = template();
        s.assignments[0].threads.pop(); // app count mismatch
        assert!(matches!(
            s.validate(),
            Err(SimError::Model(
                roofline_numa::ModelError::AppCountMismatch { .. }
            ))
        ));

        assert!(Scenario::from_json("not json").is_err());
    }

    #[test]
    fn display_lists_every_assignment() {
        let result = run_scenario(&template()).unwrap();
        let text = result.to_string();
        assert!(text.contains("uneven (1,1,1,17)"));
        assert!(text.contains("even (5,5,5,5)"));
    }

    #[test]
    fn scenario_with_telemetry_records_bandwidth() {
        let hub = std::sync::Arc::new(coop_telemetry::TelemetryHub::new());
        let result = run_scenario_with_telemetry(&template(), std::sync::Arc::clone(&hub)).unwrap();
        assert_eq!(result.rows.len(), 2);
        assert!(hub.events().iter().any(|e| e.cat == "bandwidth"));
        assert!(hub
            .registry()
            .to_prometheus()
            .contains("memsim_node_utilization"));
    }

    #[test]
    fn event_engine_runs_the_template_scenario() {
        let slice = run_scenario(&template()).unwrap();
        let event = run_scenario_on(&template(), None, EngineKind::Event).unwrap();
        assert_eq!(slice.rows.len(), event.rows.len());
        for (s, e) in slice.rows.iter().zip(&event.rows) {
            assert_eq!(s.name, e.name);
            assert!(
                (s.simulated_gflops - e.simulated_gflops).abs()
                    <= 1e-9 * s.simulated_gflops.max(1.0),
                "{}: slice {} vs event {}",
                s.name,
                s.simulated_gflops,
                e.simulated_gflops
            );
        }
    }

    #[test]
    fn per_app_breakdown_sums_to_total() {
        let result = run_scenario(&template()).unwrap();
        for r in &result.rows {
            let sum: f64 = r.per_app_gflops.iter().sum();
            assert!((sum - r.simulated_gflops).abs() < 1e-6);
        }
    }
}
