//! # memsim
//!
//! An execution-driven simulator of a NUMA machine: virtual cores, per-node
//! memory controllers, inter-node links, and an OS-style scheduler — the
//! substitute for the four-socket Xeon server the paper's §III.B
//! experiments ran on (see the substitution notes in `DESIGN.md`).
//!
//! Where the analytic model (`roofline-numa`) computes a steady state from
//! the paper's five arbitration assumptions, `memsim` *executes* workloads
//! in discrete time quanta and layers on the second-order effects that make
//! real hardware deviate from the model:
//!
//! * per-quantum multiplicative **jitter** (seeded, deterministic),
//! * **remote-access inefficiency** — latency-limited links do not reach
//!   their nominal bandwidth,
//! * **saturation contention** — memory controllers lose efficiency as
//!   utilization approaches 1 (queueing),
//! * **multi-application interference** — distinct applications sharing a
//!   node's memory system (caches, row buffers) cost each other a little
//!   bandwidth,
//! * **over-subscription switching losses** — when more threads than cores
//!   are runnable, time-slicing costs context switches and cache refills
//!   (the effect the paper's §II says Linux handles surprisingly well —
//!   i.e. it is only a few percent),
//! * per-application **synchronization-overhead scaling**, for studying the
//!   "scaling is less than linear" reallocation argument of §II.
//!
//! With all effects disabled ([`EffectModel::ideal`]) the simulator
//! converges to the analytic model exactly — a property the tests assert,
//! cross-validating both implementations.
//!
//! The [`supervise`] module runs a scenario under *model supervision*: each
//! decision tick is predicted with the analytic model, simulated (possibly
//! on a mid-run-perturbed machine), and back-filled into the model-drift
//! observatory so prediction residuals and drift alarms land on the shared
//! telemetry timeline. The [`chaos`] module injects mid-run application
//! failures (kill/revive) and optionally fair-shares the freed cores among
//! the survivors — the simulator-side counterpart of the agent's
//! eviction-and-reclamation path.
//!
//! ## Example: the paper's Table III procedure in miniature
//!
//! ```
//! use memsim::{EffectModel, SimApp, SimConfig, Simulation};
//! use numa_topology::presets::paper_skylake_machine;
//! use roofline_numa::ThreadAssignment;
//!
//! let machine = paper_skylake_machine();
//! let sim = Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::ideal()));
//! let apps = vec![
//!     SimApp::numa_local("mem", 1.0 / 32.0),
//!     SimApp::numa_local("comp", 1.0),
//! ];
//! let assignment = ThreadAssignment::uniform_per_node(&machine, &[10, 10]);
//! let result = sim.run(&apps, &assignment, 0.1).unwrap();
//! assert!(result.total_gflops() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod calibrate;
pub mod chaos;
mod config;
mod engine;
pub mod event;
mod par;
mod result;
pub mod scenario;
pub mod supervise;

pub use app::{ActivityPattern, SimApp};
pub use calibrate::{calibrate_even_scenario, CalibratedMachine};
pub use chaos::{
    run_chaos_scenario, run_chaos_scenario_on, run_chaos_scenario_threaded,
    run_chaos_scenario_with_telemetry, AppOutage, ChaosPlan, ChaosResult,
};
pub use config::{EffectModel, EngineKind, ShardPlan, SimConfig};
pub use engine::Simulation;
pub use event::{Component, EventEdge, EventHeap, EventLog, SimEvent, TieBreak};
pub use result::{AppSeries, SimResult};
pub use scenario::{
    run_scenario, run_scenario_on, run_scenario_threaded, run_scenario_with_telemetry,
    NamedAssignment, Scenario, ScenarioResult, ScenarioRow,
};
pub use supervise::{
    run_supervised, DecisionTick, Perturbation, SupervisedResult, SupervisorConfig,
};

// Re-exported so callers can attach a hub without naming the telemetry
// crate themselves (see `Simulation::with_telemetry`).
pub use coop_telemetry::TelemetryHub;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The model layer rejected the inputs (shape, placement, AI).
    Model(roofline_numa::ModelError),
    /// Duration or quantum is not positive/finite.
    BadTime {
        /// Explanation.
        reason: &'static str,
    },
    /// Over-subscription requested but disabled in the config.
    OverSubscriptionDisabled {
        /// The offending node.
        node: usize,
    },
    /// A calibration input was inconsistent (e.g. no memory-bound class).
    Calibration {
        /// Explanation.
        reason: String,
    },
    /// A [`ShardPlan`] does not cover the simulation's apps and nodes.
    BadPlan {
        /// Explanation.
        reason: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::BadTime { reason } => write!(f, "bad time parameter: {reason}"),
            SimError::OverSubscriptionDisabled { node } => {
                write!(
                    f,
                    "node {node} is over-subscribed but over-subscription is disabled"
                )
            }
            SimError::Calibration { reason } => write!(f, "calibration failed: {reason}"),
            SimError::BadPlan { reason } => write!(f, "bad shard plan: {reason}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roofline_numa::ModelError> for SimError {
    fn from(e: roofline_numa::ModelError) -> Self {
        SimError::Model(e)
    }
}

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, SimError>;
