//! Supervised simulation: the model-drift observatory's predict-then-measure
//! loop over the simulator.
//!
//! [`run_supervised`] slices one scenario assignment into decision ticks.
//! Per tick it
//!
//! 1. solves the analytic model on the scenario's *nominal* machine and
//!    opens a provenance record with the predicted per-app and per-node
//!    series ([`roofline_numa::SolveReport::to_prediction`]),
//! 2. simulates the tick on the *current* machine — the nominal one with
//!    every [`Perturbation`] whose `at_s` has passed applied — and
//! 3. back-fills the record with the measured series, which runs the
//!    residuals through the shared drift detector, updates the
//!    `coop_model_*` Prometheus metrics, and raises alarm events on the
//!    merged timeline.
//!
//! With no perturbations (and ideal effects) predicted and measured agree
//! and the detector stays quiet; degrade a node's bandwidth mid-run and the
//! `node/<n>/bandwidth_gbs` residuals go persistently negative until the
//! CUSUM alarm fires — the continuous analogue of the paper's one-shot
//! Table III model-vs-measurement comparison.

use crate::chaos::{segment_assignment, ChaosPlan};
use crate::engine::RateScratch;
use crate::{EngineKind, Result, Scenario, SimConfig, SimError, SimResult, Simulation};
use coop_alloc::search::{HillClimb, ModelOracle};
use coop_alloc::{Objective, ScoreCache};
use coop_telemetry::{
    ArgValue, DriftConfig, DriftReport, ModelObservatory, ProvenanceRecord, Residual, SeriesValue,
    TelemetryHub, TenantSample,
};
use numa_topology::{Machine, NodeId};
use roofline_numa::{solve, AppSpec, ThreadAssignment};
use std::sync::Arc;

/// A mid-run change the analytic model does not know about: a machine
/// degradation or a misbehaving tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum Perturbation {
    /// A node's local memory bandwidth changes.
    NodeBandwidth {
        /// Simulated time at which the change takes effect, seconds.
        at_s: f64,
        /// The node whose local memory bandwidth changes.
        node: usize,
        /// Multiplier applied to the node's *nominal* bandwidth (e.g.
        /// `0.5` halves it). When several perturbations of the same node
        /// are active, the latest `at_s` wins.
        bandwidth_factor: f64,
    },
    /// One of `app`'s tasks wedges into an infinite loop at `at_s`,
    /// modeling the runtime-side runaway the watchdog hunts: the tick the
    /// wedge lands in runs undetected (the watchdog deadline has not
    /// elapsed yet); at its end the supervisor raises a `runaway` timeline
    /// instant, bumps `coop_runaway_tasks_total`, and snapshots any
    /// installed flight recorder. From the next tick on the app is
    /// *contained*: its threads leave the effective assignment (the
    /// watchdog migrated its queues and excluded the wedged worker),
    /// survivors fair-share the machine, and every contained tick books
    /// one preemption plus a tick of over-budget CPU against the
    /// offender's tenant account.
    RunawayTask {
        /// Simulated time at which the task wedges, seconds.
        at_s: f64,
        /// Index of the offending application in the scenario's `apps`.
        app: usize,
    },
}

impl Perturbation {
    /// Simulated time at which this perturbation takes effect, seconds.
    pub fn at_s(&self) -> f64 {
        match self {
            Perturbation::NodeBandwidth { at_s, .. } => *at_s,
            Perturbation::RunawayTask { at_s, .. } => *at_s,
        }
    }
}

/// Tuning for [`run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Length of one decision tick (predict → simulate → measure), seconds.
    pub decision_period_s: f64,
    /// Total supervised duration, seconds.
    pub duration_s: f64,
    /// Machine changes the model does not know about.
    pub perturbations: Vec<Perturbation>,
    /// Drift-detector tuning shared by every series.
    pub drift: DriftConfig,
    /// Re-run the allocation search each tick instead of replaying the
    /// scenario's fixed assignment. The search warm-starts from the
    /// current assignment and shares one score cache and delta-solver
    /// context across the whole run, so steady-state ticks cost a handful
    /// of incremental solves; per-tick solver-work counters are recorded
    /// as `search/*` inputs on each provenance record.
    pub reoptimize: bool,
    /// Emit synthetic causal spans from each tick's simulation (see
    /// [`Simulation::with_tracing`]): every (app, tick) pair becomes a
    /// traced task in the runtime's hop schema, so a supervised fleet run
    /// assembles with the same [`coop_telemetry::TraceAssembler`] as a
    /// real runtime.
    pub tracing: bool,
    /// Application outages injected into the supervised run (evaluated at
    /// decision-tick granularity: an app is down for a whole tick iff the
    /// plan says it is down at the tick's start). Down apps are removed
    /// from the effective assignment — fair-shared over the survivors
    /// when the plan reclaims — and their tenant accounting epochs close
    /// (`outage`) and re-open (`revived`) on the edges.
    pub chaos: Option<ChaosPlan>,
    /// Which simulator engine executes each decision tick (default
    /// [`EngineKind::Slice`]). The event engine makes long fleet-scale
    /// supervised runs tractable; see `docs/performance.md`.
    pub engine: EngineKind,
    /// Worker threads for the parallel event engine (default 1 =
    /// single-threaded). Only consulted when [`Self::engine`] is
    /// [`EngineKind::Event`]; results are bit-identical at any value.
    pub sim_threads: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            decision_period_s: 0.02,
            duration_s: 0.2,
            perturbations: Vec::new(),
            drift: DriftConfig::default(),
            reoptimize: false,
            tracing: false,
            chaos: None,
            engine: EngineKind::Slice,
            sim_threads: 1,
        }
    }
}

impl SupervisorConfig {
    /// Validates periods and perturbation targets against `machine`.
    pub fn validate(&self, machine: &Machine) -> Result<()> {
        if !(self.decision_period_s > 0.0 && self.decision_period_s.is_finite()) {
            return Err(SimError::BadTime {
                reason: "decision period must be positive and finite",
            });
        }
        if !(self.duration_s > 0.0 && self.duration_s.is_finite()) {
            return Err(SimError::BadTime {
                reason: "supervised duration must be positive and finite",
            });
        }
        for p in &self.perturbations {
            if !(p.at_s() >= 0.0 && p.at_s().is_finite()) {
                return Err(SimError::BadTime {
                    reason: "perturbation time must be non-negative and finite",
                });
            }
            match p {
                Perturbation::NodeBandwidth {
                    node,
                    bandwidth_factor,
                    ..
                } => {
                    if *node >= machine.num_nodes() {
                        return Err(SimError::Calibration {
                            reason: format!(
                                "perturbation targets node {} but the machine has {} nodes",
                                node,
                                machine.num_nodes()
                            ),
                        });
                    }
                    if !(*bandwidth_factor > 0.0 && bandwidth_factor.is_finite()) {
                        return Err(SimError::Calibration {
                            reason: format!(
                                "perturbation of node {node} has non-positive bandwidth factor {bandwidth_factor}"
                            ),
                        });
                    }
                }
                // App bounds are scenario-dependent; checked by
                // `runaway_onsets` in `run_supervised`.
                Perturbation::RunawayTask { .. } => {}
            }
        }
        Ok(())
    }

    /// Earliest runaway onset per app, validated against `num_apps`.
    fn runaway_onsets(&self, num_apps: usize) -> Result<Vec<Option<f64>>> {
        let mut onsets: Vec<Option<f64>> = vec![None; num_apps];
        for p in &self.perturbations {
            if let Perturbation::RunawayTask { at_s, app } = p {
                if *app >= num_apps {
                    return Err(SimError::Calibration {
                        reason: format!(
                            "runaway perturbation targets app {app} but the scenario has {num_apps} apps"
                        ),
                    });
                }
                let slot = &mut onsets[*app];
                if slot.is_none_or(|prev| *at_s < prev) {
                    *slot = Some(*at_s);
                }
            }
        }
        Ok(onsets)
    }

    /// The nominal machine with every perturbation active at time `t_s`
    /// applied (latest-active-per-node wins).
    pub fn machine_at(&self, nominal: &Machine, t_s: f64) -> Result<Machine> {
        let mut factors: Vec<Option<(f64, f64)>> = vec![None; nominal.num_nodes()];
        for p in &self.perturbations {
            let Perturbation::NodeBandwidth {
                at_s,
                node,
                bandwidth_factor,
            } = p
            else {
                continue;
            };
            if *at_s <= t_s {
                let slot = &mut factors[*node];
                if slot.is_none_or(|(at, _)| *at_s >= at) {
                    *slot = Some((*at_s, *bandwidth_factor));
                }
            }
        }
        let mut machine = nominal.clone();
        for (node, slot) in factors.iter().enumerate() {
            if let Some((_, factor)) = slot {
                machine = machine
                    .with_scaled_node_bandwidth(NodeId(node), *factor)
                    .map_err(|e| SimError::Calibration {
                        reason: format!("applying perturbation to node {node}: {e}"),
                    })?;
            }
        }
        Ok(machine)
    }
}

/// One decision tick of a supervised run.
#[derive(Debug, Clone)]
pub struct DecisionTick {
    /// Tick index (0-based).
    pub tick: u64,
    /// Simulated start time of the tick, seconds.
    pub start_s: f64,
    /// Provenance-record id in the observatory's ledger.
    pub provenance: u64,
    /// `true` if a perturbation was active during this tick.
    pub perturbed: bool,
    /// Residuals computed when the tick's record was back-filled.
    pub residuals: Vec<Residual>,
    /// Number of drift alarms raised while closing this tick.
    pub alarms: usize,
}

/// The outcome of [`run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisedResult {
    /// One entry per decision tick, in order.
    pub ticks: Vec<DecisionTick>,
    /// The observatory holding the ledger, detector state, and metrics.
    pub observatory: Arc<ModelObservatory>,
}

impl SupervisedResult {
    /// The drift report accumulated over the run.
    pub fn report(&self) -> DriftReport {
        self.observatory.report()
    }

    /// The retained provenance records, oldest first.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        self.observatory.records()
    }

    /// Total drift alarms raised during the run.
    pub fn total_alarms(&self) -> usize {
        self.ticks.iter().map(|t| t.alarms).sum()
    }

    /// Index of the first tick that raised an alarm, if any.
    pub fn first_alarm_tick(&self) -> Option<u64> {
        self.ticks.iter().find(|t| t.alarms > 0).map(|t| t.tick)
    }
}

/// Runs the first assignment of `scenario` under model supervision,
/// publishing provenance and drift events into `hub` (see the module docs
/// for the per-tick loop).
pub fn run_supervised(
    scenario: &Scenario,
    config: &SupervisorConfig,
    hub: Arc<TelemetryHub>,
) -> Result<SupervisedResult> {
    scenario.validate()?;
    config.validate(&scenario.machine)?;
    if let Some(plan) = &config.chaos {
        plan.validate(scenario)?;
    }
    let observatory = Arc::new(ModelObservatory::with_config(
        Arc::clone(&hub),
        config.drift.clone(),
        1024,
    ));
    let named = &scenario.assignments[0];
    let mut assignment = ThreadAssignment::from_matrix(named.threads.clone());
    let specs: Vec<AppSpec> = scenario.apps.iter().map(|a| a.spec.clone()).collect();

    // The model predicts from the nominal machine: the prediction only
    // changes if the assignment does (under `reoptimize`) — the whole
    // point is that the model does not know about perturbations.
    let report = solve(&scenario.machine, &specs, &assignment)?;
    let mut prediction_template = report.to_prediction();
    prediction_template.assignment = format!("{} {:?}", named.name, named.threads);

    // Under `reoptimize`, one oracle (and thus one score cache and one
    // delta-solver base) persists across every tick of the run.
    let objective = Objective::TotalGflops;
    let mut search_oracle = if config.reoptimize {
        let oracle = ModelOracle::new(&scenario.machine, &specs, &objective)
            .map_err(|e| SimError::Calibration {
                reason: format!("building the search oracle: {e}"),
            })?
            .with_min_threads(1);
        let cache = Arc::new(ScoreCache::new(oracle.fingerprint()));
        Some(
            oracle
                .with_cache(cache)
                .expect("a freshly keyed cache always matches its oracle"),
        )
    } else {
        None
    };

    // Map simulated seconds onto the hub clock exactly like the engine's
    // own telemetry does, so provenance/alarm events interleave with the
    // simulator's bandwidth samples. The same anchor is handed to every
    // tick's simulation (`with_time_base`), so the whole supervised run
    // lives on one simulated clock — each per-tick simulation would
    // otherwise re-anchor to the wall time at which it happened to start.
    let base_us = hub.now_us();
    let ts = |t_s: f64| base_us + (t_s * 1e6) as u64;

    let ticks_total = (config.duration_s / config.decision_period_s).ceil() as u64;
    let mut ticks = Vec::with_capacity(ticks_total as usize);
    let num_apps = scenario.apps.len();
    let num_nodes = scenario.machine.num_nodes();
    // Tenant accounting books: cumulative synthetic counters per app
    // (one "task" = one MFLOP delivered), so supervised runs feed any
    // installed ledger the exact sample shape a live runtime produces.
    let mut books: Vec<TenantBook> = (0..num_apps).map(|_| TenantBook::new(num_nodes)).collect();
    let mut prev_live = vec![false; num_apps];
    // Runaway modeling: the onset tick runs wedged but undetected; the
    // watchdog "fires" at its end (detection events below), and every
    // later tick the offender is contained.
    let runaway_onsets = config.runaway_onsets(num_apps)?;
    let mut runaway_detected = vec![false; num_apps];
    // Hot-loop buffers hoisted out of the per-tick path: one set of
    // arbitration scratch vectors and one tenant-sample buffer serve every
    // tick, so steady-state ticks allocate nothing in the simulate/book
    // stages once the high-water mark is reached.
    let mut scratch = RateScratch::default();
    let mut samples: Vec<TenantSample> = Vec::with_capacity(num_apps);
    let watchdog_track = runaway_onsets
        .iter()
        .any(Option::is_some)
        .then(|| hub.register_track("memsim-watchdog"));
    for tick in 0..ticks_total {
        let start_s = tick as f64 * config.decision_period_s;
        let period = config.decision_period_s.min(config.duration_s - start_s);
        if period <= 0.0 {
            break;
        }
        let machine = config.machine_at(&scenario.machine, start_s)?;
        let perturbed = machine != scenario.machine;

        // Outage edges: down apps leave the effective assignment for the
        // whole tick; ledger epochs close/open on the transitions.
        let live = match &config.chaos {
            Some(plan) => plan.live_at(num_apps, start_s),
            None => vec![true; num_apps],
        };
        if let Some(ledger) = hub.tenant_ledger() {
            for (i, app) in scenario.apps.iter().enumerate() {
                let name = app.spec.name.as_str();
                if live[i] && !prev_live[i] {
                    let reason = if tick == 0 { "managed" } else { "revived" };
                    ledger.open_epoch(&hub, name, reason, ts(start_s));
                    // A new life restarts the tenant's cumulative
                    // counters from zero, exactly like a restarted
                    // runtime; the ledger diffs the new life against a
                    // zero baseline.
                    books[i] = TenantBook::new(num_nodes);
                } else if !live[i] && prev_live[i] {
                    ledger.close_epoch(&hub, name, "outage", ts(start_s));
                }
            }
        }

        let mut prediction = prediction_template.clone();
        if let Some(oracle) = search_oracle.as_mut() {
            // Warm re-search from the current assignment on the nominal
            // machine (the model's view); a deterministic per-tick seed
            // keeps runs reproducible.
            let found = HillClimb::new()
                .with_iterations(600)
                .with_seed(0xc0de ^ tick)
                .with_start(assignment.clone())
                .run_model(&scenario.machine, oracle)
                .map_err(|e| SimError::Calibration {
                    reason: format!("re-optimizing tick {tick}: {e}"),
                })?;
            let counters = found.counters;
            if found.assignment != assignment {
                assignment = found.assignment;
                let report = solve(&scenario.machine, &specs, &assignment)?;
                prediction_template = report.to_prediction();
                prediction_template.assignment =
                    format!("{} {:?}", named.name, assignment.matrix());
                prediction = prediction_template.clone();
            }
            prediction.inputs.push((
                "search/full_solves".to_string(),
                counters.full_solves as f64,
            ));
            prediction.inputs.push((
                "search/delta_solves".to_string(),
                counters.delta_solves as f64,
            ));
            prediction
                .inputs
                .push(("search/cache_hits".to_string(), counters.cache_hits as f64));
            prediction
                .inputs
                .push(("search/warm_start".to_string(), 1.0));
        }

        let id = observatory.open_decision_at(
            tick,
            "memsim-supervisor",
            &format!("simulate {period:.4}s on {}", machine.name()),
            prediction,
            ts(start_s),
        );

        // Contained runaways leave the effective assignment just like
        // dead apps do: the watchdog excluded their workers and the
        // survivors absorb the cores.
        let contained: Vec<bool> = runaway_detected.clone();
        let alloc_live: Vec<bool> = live
            .iter()
            .zip(&contained)
            .map(|(l, c)| *l && !*c)
            .collect();
        let effective = if alloc_live.iter().any(|l| !l) {
            let plan = match &config.chaos {
                Some(plan) => plan.clone(),
                // Containment without a chaos plan reclaims by default —
                // that is the whole point of preempting the offender.
                None => ChaosPlan {
                    outages: Vec::new(),
                    reclaim: true,
                },
            };
            segment_assignment(scenario, &plan, &assignment, &alloc_live)?
        } else {
            assignment.clone()
        };

        let mut sim = Simulation::new(
            SimConfig::new(machine)
                .with_effects(scenario.effects.clone())
                .with_seed(scenario.seed.wrapping_add(tick))
                .with_engine(config.engine)
                .with_sim_threads(config.sim_threads),
        )
        .with_telemetry(Arc::clone(&hub))
        .with_time_base(ts(start_s));
        if config.tracing {
            sim = sim.with_tracing();
        }
        let schedule = [(0.0, effective)];
        let result =
            sim.run_dynamic_with_scratch(&scenario.apps, &schedule, period, &mut scratch)?;
        let effective = &schedule[0].1;

        // Watchdog detection: a wedge whose onset falls inside this tick
        // breaches its deadline by the tick's end — raise the `runaway`
        // instant, bump the counter, and snapshot the flight recorder
        // before the ring overwrites the lead-up.
        for (i, onset) in runaway_onsets.iter().enumerate() {
            let Some(at_s) = onset else { continue };
            if *at_s <= start_s + period && !runaway_detected[i] && live[i] {
                runaway_detected[i] = true;
                let name = scenario.apps[i].spec.name.as_str();
                hub.registry()
                    .counter("coop_runaway_tasks_total", &[("runtime", name)])
                    .inc();
                if let Some(track) = watchdog_track {
                    hub.record_instant_at(
                        0,
                        track,
                        0,
                        "watchdog",
                        "runaway",
                        ts(start_s + period),
                        vec![
                            ("runtime".to_string(), ArgValue::Str(name.to_string())),
                            ("tick".to_string(), ArgValue::U64(tick)),
                        ],
                    );
                }
                if let Some(rec) = hub.flight_recorder() {
                    let _ = rec.trigger_dump("runaway");
                }
            }
        }

        let alarms_before = observatory.detector().total_alarms();
        let residuals = observatory.close_decision_at(
            id,
            measured_series(scenario, &result),
            ts(start_s + period),
        );
        let alarms = (observatory.detector().total_alarms() - alarms_before) as usize;

        book_tenant_tick(
            &hub,
            scenario,
            &mut books,
            effective,
            &live,
            &runaway_detected,
            &result,
            period,
            ts(start_s + period),
            &mut samples,
        );
        prev_live = live;

        ticks.push(DecisionTick {
            tick,
            start_s,
            provenance: id,
            perturbed,
            residuals,
            alarms,
        });
    }

    Ok(SupervisedResult { ticks, observatory })
}

/// Cumulative synthetic tenant counters for one simulated application.
struct TenantBook {
    tasks: u64,
    uptime_us: u64,
    per_node: Vec<u64>,
    local: u64,
    remote: u64,
    preemptions: u64,
    overbudget_cpu_us: u64,
}

impl TenantBook {
    fn new(num_nodes: usize) -> Self {
        TenantBook {
            tasks: 0,
            uptime_us: 0,
            per_node: vec![0; num_nodes],
            local: 0,
            remote: 0,
            preemptions: 0,
            overbudget_cpu_us: 0,
        }
    }
}

/// Books one supervised tick into any ledger installed on `hub`, then
/// lets any installed SLO engine judge the refreshed state.
///
/// One "task" is one MFLOP the simulator delivered, split across nodes
/// proportionally to the app's effective thread row; the app's
/// most-loaded node is its home, and work placed on other nodes is
/// booked as cross-node steals — the same `coop_sched_*` counters a real
/// runtime's scheduler bumps, so ledger totals reconcile with a registry
/// scrape in both worlds. Down apps are not sampled: their delivered
/// share decays to zero exactly like an evicted runtime's.
#[allow(clippy::too_many_arguments)]
fn book_tenant_tick(
    hub: &Arc<TelemetryHub>,
    scenario: &Scenario,
    books: &mut [TenantBook],
    effective: &ThreadAssignment,
    live: &[bool],
    runaway: &[bool],
    result: &SimResult,
    period_s: f64,
    now_us: u64,
    samples: &mut Vec<TenantSample>,
) {
    let Some(ledger) = hub.tenant_ledger() else {
        if let Some(engine) = hub.slo_engine() {
            engine.evaluate(hub, now_us);
        }
        return;
    };
    let registry = hub.registry();
    let num_nodes = scenario.machine.num_nodes();
    let total_cores = scenario.machine.total_cores();
    samples.clear();
    for (i, app) in scenario.apps.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let name = app.spec.name.as_str();
        let mflops = (result.app_gflops(i) * period_s * 1000.0).round() as u64;
        let row: Vec<u64> = (0..num_nodes)
            .map(|n| effective.get(i, NodeId(n)) as u64)
            .collect();
        let row_total: u64 = row.iter().sum();
        // Home node: the app's most-loaded node (lowest id wins ties).
        let home = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(n, _)| n)
            .unwrap_or(0);
        let book = &mut books[i];
        book.uptime_us += (period_s * 1e6) as u64;
        book.tasks += mflops;
        if runaway[i] {
            // The wedged task burned its worker's whole tick past the
            // budget, and the runtime preempted/parked it once per tick:
            // book both against the offender, exactly what a live
            // runtime's `tasks_preempted` / `overbudget_cpu_us` feed.
            book.preemptions += 1;
            book.overbudget_cpu_us += (period_s * 1e6) as u64;
        }
        let mut remote_delta = 0u64;
        if row_total > 0 && mflops > 0 {
            for (n, &t) in row.iter().enumerate() {
                if n == home || t == 0 {
                    continue;
                }
                let share = mflops * t / row_total;
                book.per_node[n] += share;
                remote_delta += share;
            }
            // The home node takes the remainder, so the split always sums
            // to exactly `mflops`.
            book.per_node[home] += mflops - remote_delta;
        }
        let local_delta = mflops - remote_delta;
        book.local += local_delta;
        book.remote += remote_delta;
        if local_delta > 0 {
            registry
                .counter("coop_sched_local_pops_total", &[("runtime", name)])
                .add(local_delta);
        }
        if remote_delta > 0 {
            registry
                .counter(
                    "coop_sched_steals_total",
                    &[("runtime", name), ("tier", "normal"), ("source", "remote")],
                )
                .add(remote_delta);
        }
        if total_cores > 0 {
            ledger.set_entitlement(name, row_total as f64 / total_cores as f64);
        }
        samples.push(TenantSample {
            tenant: name.to_string(),
            tasks_executed: book.tasks,
            uptime_us: book.uptime_us,
            per_node_tasks: book.per_node.clone(),
            running_per_node: row,
            local_pops: book.local,
            remote_steals: book.remote,
            preemptions: book.preemptions,
            overbudget_cpu_us: book.overbudget_cpu_us,
        });
    }
    ledger.tick(hub, now_us, samples);
    if let Some(engine) = hub.slo_engine() {
        engine.evaluate(hub, now_us);
    }
}

/// The measured counterpart of [`roofline_numa::SolveReport::to_prediction`]:
/// per-app throughput and bandwidth plus per-node served bandwidth, from
/// the simulator's counters.
fn measured_series(scenario: &Scenario, result: &SimResult) -> Vec<SeriesValue> {
    let mut series = Vec::with_capacity(scenario.apps.len() * 2 + result.node_avg_gbs.len());
    for (i, app) in scenario.apps.iter().enumerate() {
        let gflops = result.app_gflops(i);
        series.push(SeriesValue::new(
            format!("app/{}/gflops", app.spec.name),
            gflops,
        ));
        // bandwidth = throughput / arithmetic intensity (GFLOPS over
        // FLOP/byte gives GB/s) — the same identity the model uses.
        series.push(SeriesValue::new(
            format!("app/{}/bandwidth_gbs", app.spec.name),
            gflops / app.spec.ai,
        ));
    }
    for (n, &gbs) in result.node_avg_gbs.iter().enumerate() {
        series.push(SeriesValue::new(format!("node/{n}/bandwidth_gbs"), gbs));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::template;
    use crate::EffectModel;

    fn base_scenario() -> Scenario {
        let mut s = template();
        // Single assignment, ideal effects: the simulator matches the
        // analytic model exactly, so residuals are pure perturbation.
        s.assignments.truncate(1);
        s.effects = EffectModel::ideal();
        s
    }

    fn quiet_config() -> SupervisorConfig {
        SupervisorConfig {
            decision_period_s: 0.01,
            duration_s: 0.1,
            perturbations: Vec::new(),
            drift: DriftConfig::default(),
            reoptimize: false,
            tracing: false,
            chaos: None,
            engine: EngineKind::Slice,
            sim_threads: 1,
        }
    }

    #[test]
    fn unperturbed_run_raises_no_alarm() {
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &quiet_config(), hub).unwrap();
        assert_eq!(result.ticks.len(), 10);
        assert_eq!(result.total_alarms(), 0);
        assert!(result.ticks.iter().all(|t| !t.perturbed));
        // Every record is closed with real residuals.
        for record in result.records() {
            assert!(record.is_closed());
            assert!(!record.residuals.is_empty());
        }
    }

    /// Satellite regression (simulated-vs-wall time): every decision tick
    /// builds a fresh `Simulation`, and before the explicit time-base
    /// anchor each one re-anchored its telemetry to the wall clock — so a
    /// 100ms supervised run's bandwidth samples all clustered within the
    /// few wall-milliseconds the loop took. With the fix, tick k's sample
    /// lands exactly `k * decision_period` after tick 0's.
    #[test]
    fn supervised_timeline_carries_simulated_time() {
        let hub = Arc::new(TelemetryHub::new());
        let result =
            run_supervised(&base_scenario(), &quiet_config(), Arc::clone(&hub)).unwrap();
        assert_eq!(result.ticks.len(), 10);
        // 10ms ticks at a 1ms quantum emit one bandwidth sample per node
        // per tick, at the tick's 5ms midpoint.
        let mut sample_ts: Vec<u64> = hub
            .events()
            .iter()
            .filter(|e| e.cat == "bandwidth")
            .map(|e| e.ts_us)
            .collect();
        sample_ts.sort_unstable();
        sample_ts.dedup();
        assert_eq!(sample_ts.len(), 10, "one distinct midpoint per tick");
        for w in sample_ts.windows(2) {
            assert_eq!(
                w[1] - w[0],
                10_000,
                "consecutive ticks' samples must sit exactly one decision period apart"
            );
        }
    }

    /// The supervisor routes through the event engine too: with ideal
    /// effects and no perturbation it matches the model just like the
    /// slice engine does (no drift alarms, identical tick accounting).
    #[test]
    fn supervised_event_engine_stays_quiet_and_books_ticks() {
        let mut config = quiet_config();
        config.engine = EngineKind::Event;
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &config, hub).unwrap();
        assert_eq!(result.ticks.len(), 10);
        assert_eq!(result.total_alarms(), 0);
        for record in result.records() {
            assert!(record.is_closed());
            assert!(!record.residuals.is_empty());
        }
    }

    #[test]
    fn supervised_tracing_emits_assemblable_spans() {
        use coop_telemetry::{hop, TraceAssembler};

        let hub = Arc::new(TelemetryHub::new());
        let mut config = quiet_config();
        config.tracing = true;
        let scenario = base_scenario();
        let result = run_supervised(&scenario, &config, Arc::clone(&hub)).unwrap();

        // One synthetic task per (app, tick): the same assembler that
        // reconstructs real runtime steals reconstructs a supervised run.
        let asm = TraceAssembler::from_hub(&hub);
        assert_eq!(asm.len(), result.ticks.len() * scenario.apps.len());
        for t in asm.tasks() {
            assert!(t.completed(), "{:?}", t.name);
            assert!(!t.truncated);
            assert!(t.hop(hop::STARTED).is_some());
        }
        // Tracing off (the default) emits none.
        let hub2 = Arc::new(TelemetryHub::new());
        run_supervised(&scenario, &quiet_config(), Arc::clone(&hub2)).unwrap();
        assert!(TraceAssembler::from_hub(&hub2).is_empty());
    }

    #[test]
    fn step_change_is_detected_within_a_few_ticks() {
        let mut config = quiet_config();
        config.duration_s = 0.2;
        config.perturbations.push(Perturbation::NodeBandwidth {
            at_s: 0.1,
            node: 0,
            bandwidth_factor: 0.4,
        });
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &config, hub).unwrap();
        assert!(
            result.total_alarms() > 0,
            "perturbation must raise an alarm"
        );
        let first = result.first_alarm_tick().unwrap();
        // The perturbation lands at tick 10; satellite requirement: the
        // detector fires within a handful of decision ticks, not at the
        // very end of the run.
        assert!(
            (10..=16).contains(&first),
            "first alarm at tick {first}, expected within 6 ticks of the step at tick 10"
        );
        // No alarm before the step.
        assert!(result.ticks[..10].iter().all(|t| t.alarms == 0));
    }

    #[test]
    fn perturbed_ticks_are_flagged_and_residuals_negative() {
        let mut config = quiet_config();
        config.perturbations.push(Perturbation::NodeBandwidth {
            at_s: 0.05,
            node: 1,
            bandwidth_factor: 0.5,
        });
        let hub = Arc::new(TelemetryHub::new());
        let scenario = base_scenario();
        let result = run_supervised(&scenario, &config, hub).unwrap();
        assert!(result.ticks[..5].iter().all(|t| !t.perturbed));
        assert!(result.ticks[5..].iter().all(|t| t.perturbed));
    }

    #[test]
    fn reoptimizing_run_records_search_cost_in_provenance() {
        let mut config = quiet_config();
        config.reoptimize = true;
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &config, hub).unwrap();
        assert_eq!(result.ticks.len(), 10);
        let records = result.records();
        assert_eq!(records.len(), 10);
        let solves_of = |r: &ProvenanceRecord, key: &str| -> f64 {
            r.prediction
                .inputs
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .expect("search counters recorded")
        };
        for record in &records {
            assert!(solves_of(record, "search/warm_start") == 1.0);
            // Every tick does some solver work, but the persistent
            // delta/cache context keeps full solves to (at most) the one
            // base rebase per tick.
            let full = solves_of(record, "search/full_solves");
            let delta = solves_of(record, "search/delta_solves");
            let hits = solves_of(record, "search/cache_hits");
            assert!(full + delta + hits > 0.0, "search did no work");
            assert!(
                delta + hits >= full,
                "warm re-solves should be dominated by incremental work \
                 (full={full}, delta={delta}, hits={hits})"
            );
        }
        // Determinism: the same config and scenario replays identically.
        let hub2 = Arc::new(TelemetryHub::new());
        let again = run_supervised(&base_scenario(), &config, hub2).unwrap();
        let a: Vec<String> = records
            .iter()
            .map(|r| r.prediction.assignment.clone())
            .collect();
        let b: Vec<String> = again
            .records()
            .iter()
            .map(|r| r.prediction.assignment.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn supervised_chaos_run_books_tenant_accounting() {
        use crate::chaos::{AppOutage, ChaosPlan};
        use crate::scenario::NamedAssignment;
        use crate::SimApp;
        use coop_telemetry::{scheduler_locality, SloEngine, SloSpec, TenantLedger};
        use numa_topology::presets::tiny;

        let scenario = Scenario {
            name: "supervised-chaos".into(),
            machine: tiny(),
            apps: vec![
                SimApp::numa_local("a", 1.0 / 32.0),
                SimApp::numa_local("b", 1.0 / 32.0),
            ],
            assignments: vec![NamedAssignment {
                name: "even".into(),
                threads: vec![vec![1, 1], vec![1, 1]],
            }],
            duration_s: 0.1,
            effects: EffectModel::ideal(),
            seed: 7,
        };
        let mut config = quiet_config();
        config.chaos = Some(ChaosPlan {
            outages: vec![AppOutage {
                app: 1,
                down_at_s: 0.03,
                up_at_s: Some(0.07),
            }],
            reclaim: true,
        });

        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
        let engine = Arc::new(SloEngine::new(vec![
            SloSpec::min_share("b", 0.25).with_windows(vec![2, 6])
        ]));
        assert!(hub.install_slo_engine(Arc::clone(&engine)));

        let result = run_supervised(&scenario, &config, Arc::clone(&hub)).unwrap();
        assert_eq!(result.ticks.len(), 10);

        let snap = ledger.snapshot();
        let a = snap.tenant("a").unwrap();
        let b = snap.tenant("b").unwrap();

        // Both apps delivered work and ended the run live; the victim's
        // outage shows as a closed "managed" epoch plus a "revived" one.
        assert!(a.tasks_total > 0 && b.tasks_total > 0);
        assert!(a.live && b.live);
        assert_eq!(b.epochs.len(), 2);
        assert_eq!(b.epochs[0].reason, "managed");
        assert!(b.epochs[0].closed_us.is_some());
        assert_eq!(b.epochs[1].reason, "revived");
        assert_eq!(a.epochs.len(), 1);

        // Ledger totals reconcile with the scheduler-counter view.
        for t in [a, b] {
            let (local, remote) = scheduler_locality(hub.registry(), &t.tenant);
            assert_eq!(t.local_pops, local, "{}", t.tenant);
            assert_eq!(t.remote_steals, remote, "{}", t.tenant);
            assert_eq!(
                t.tasks_total,
                t.local_pops + t.remote_steals,
                "every booked task is a pop or a steal"
            );
            assert!(t.cpu_us_per_node.iter().sum::<u64>() > 0);
        }

        // During the outage the survivor owned every window (share 1.0)
        // and was entitled to the whole reclaimed machine; with both
        // apps up it sits at ~0.5. Reclamation moves work across nodes,
        // so the survivor books cross-node steals.
        let peak = a
            .share_history
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-9, "survivor peak share {peak}");
        assert!(a.remote_steals > 0, "reclaimed work crosses nodes");

        // The victim's min-share SLO burned while it was down.
        let report = engine.report();
        assert!(report[0].violations_total >= 2, "{report:?}");
        assert!(report[0].burn_rate_peak > 1.0);
    }

    #[test]
    fn runaway_is_detected_contained_and_booked_against_the_offender() {
        use crate::scenario::NamedAssignment;
        use crate::SimApp;
        use coop_telemetry::{FlightRecorder, TenantLedger};
        use numa_topology::presets::tiny;

        let scenario = Scenario {
            name: "runaway".into(),
            machine: tiny(),
            apps: vec![
                SimApp::numa_local("a", 1.0 / 32.0),
                SimApp::numa_local("b", 1.0 / 32.0),
            ],
            assignments: vec![NamedAssignment {
                name: "even".into(),
                threads: vec![vec![1, 1], vec![1, 1]],
            }],
            duration_s: 0.1,
            effects: EffectModel::ideal(),
            seed: 7,
        };
        // App b wedges at 0.03s: tick 3 runs wedged-undetected, the
        // watchdog fires at its end, ticks 4..9 are contained.
        let mut config = quiet_config();
        config
            .perturbations
            .push(Perturbation::RunawayTask { at_s: 0.03, app: 1 });

        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
        let recorder = Arc::new(FlightRecorder::new(256));
        let dump_dir = std::env::temp_dir().join(format!(
            "coop-runaway-dump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        recorder.set_dump_dir(&dump_dir);
        assert!(hub.install_flight_recorder(Arc::clone(&recorder)));

        let result = run_supervised(&scenario, &config, Arc::clone(&hub)).unwrap();
        assert_eq!(result.ticks.len(), 10);

        // Detected exactly once, on the shared timeline and the counter.
        assert_eq!(
            hub.registry().counter_total("coop_runaway_tasks_total"),
            1
        );
        assert_eq!(
            hub.events()
                .iter()
                .filter(|e| e.cat == "watchdog" && e.name == "runaway")
                .count(),
            1
        );
        // The detection snapshotted the flight recorder.
        let dumps: Vec<_> = std::fs::read_dir(&dump_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with("flight-runaway")
            })
            .collect();
        assert_eq!(dumps.len(), 1, "one runaway dump expected");
        let _ = std::fs::remove_dir_all(&dump_dir);

        // The over-budget CPU is booked against the offender, not the
        // survivor: one preemption per tick from detection onward, plus a
        // tick of over-budget CPU each (the wedge lands at tick boundary
        // 0.03, so detection is at the end of tick 2 or 3).
        let snap = ledger.snapshot();
        let offender = snap.tenant("b").unwrap();
        let survivor = snap.tenant("a").unwrap();
        assert!(
            (7..=8).contains(&offender.preemptions),
            "{offender:?}"
        );
        assert!(offender.overbudget_cpu_us >= 7 * 9_000, "{offender:?}");
        assert!(offender.preemption_rate > 0.0);
        assert_eq!(survivor.preemptions, 0);
        assert_eq!(survivor.overbudget_cpu_us, 0);

        // Containment keeps the survivor whole: it absorbed the machine
        // (entitlement 1.0) and its delivered share sits within 5% of
        // that entitlement — the offender could not starve it.
        let entitled = survivor.entitled_share.unwrap();
        assert!((entitled - 1.0).abs() < 1e-9, "survivor entitled {entitled}");
        assert!(
            survivor.delivered_share + 0.05 >= entitled,
            "survivor delivered {} vs entitled {entitled}",
            survivor.delivered_share
        );
        // The offender's wedge shows up as work stopping.
        let peak = survivor
            .share_history
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-9, "survivor peak share {peak}");
    }

    #[test]
    fn runaway_validation_rejects_bad_app() {
        let scenario = base_scenario();
        let mut config = quiet_config();
        config
            .perturbations
            .push(Perturbation::RunawayTask { at_s: 0.0, app: 99 });
        // Node-bound validation cannot see app counts; the run rejects it.
        let hub = Arc::new(TelemetryHub::new());
        assert!(run_supervised(&scenario, &config, hub).is_err());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let scenario = base_scenario();
        let mut config = quiet_config();
        config.decision_period_s = 0.0;
        assert!(config.validate(&scenario.machine).is_err());

        let mut config = quiet_config();
        config.perturbations.push(Perturbation::NodeBandwidth {
            at_s: 0.0,
            node: 99,
            bandwidth_factor: 0.5,
        });
        assert!(config.validate(&scenario.machine).is_err());

        let mut config = quiet_config();
        config.perturbations.push(Perturbation::NodeBandwidth {
            at_s: 0.0,
            node: 0,
            bandwidth_factor: 0.0,
        });
        assert!(config.validate(&scenario.machine).is_err());
    }

    #[test]
    fn machine_at_latest_perturbation_wins() {
        let scenario = base_scenario();
        let mut config = quiet_config();
        config.perturbations.push(Perturbation::NodeBandwidth {
            at_s: 0.01,
            node: 0,
            bandwidth_factor: 0.5,
        });
        config.perturbations.push(Perturbation::NodeBandwidth {
            at_s: 0.05,
            node: 0,
            bandwidth_factor: 0.25,
        });
        let nominal = scenario.machine.node(NodeId(0)).bandwidth_gbs;
        let m = config.machine_at(&scenario.machine, 0.02).unwrap();
        assert!((m.node(NodeId(0)).bandwidth_gbs - nominal * 0.5).abs() < 1e-9);
        let m = config.machine_at(&scenario.machine, 0.06).unwrap();
        assert!((m.node(NodeId(0)).bandwidth_gbs - nominal * 0.25).abs() < 1e-9);
        let m = config.machine_at(&scenario.machine, 0.0).unwrap();
        assert_eq!(m, scenario.machine);
    }
}
