//! Supervised simulation: the model-drift observatory's predict-then-measure
//! loop over the simulator.
//!
//! [`run_supervised`] slices one scenario assignment into decision ticks.
//! Per tick it
//!
//! 1. solves the analytic model on the scenario's *nominal* machine and
//!    opens a provenance record with the predicted per-app and per-node
//!    series ([`roofline_numa::SolveReport::to_prediction`]),
//! 2. simulates the tick on the *current* machine — the nominal one with
//!    every [`Perturbation`] whose `at_s` has passed applied — and
//! 3. back-fills the record with the measured series, which runs the
//!    residuals through the shared drift detector, updates the
//!    `coop_model_*` Prometheus metrics, and raises alarm events on the
//!    merged timeline.
//!
//! With no perturbations (and ideal effects) predicted and measured agree
//! and the detector stays quiet; degrade a node's bandwidth mid-run and the
//! `node/<n>/bandwidth_gbs` residuals go persistently negative until the
//! CUSUM alarm fires — the continuous analogue of the paper's one-shot
//! Table III model-vs-measurement comparison.

use crate::chaos::{segment_assignment, ChaosPlan};
use crate::{Result, Scenario, SimConfig, SimError, SimResult, Simulation};
use coop_alloc::search::{HillClimb, ModelOracle};
use coop_alloc::{Objective, ScoreCache};
use coop_telemetry::{
    DriftConfig, DriftReport, ModelObservatory, ProvenanceRecord, Residual, SeriesValue,
    TelemetryHub, TenantSample,
};
use numa_topology::{Machine, NodeId};
use roofline_numa::{solve, AppSpec, ThreadAssignment};
use std::sync::Arc;

/// A mid-run change to the simulated machine that the analytic model does
/// not know about.
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbation {
    /// Simulated time at which the change takes effect, seconds.
    pub at_s: f64,
    /// The node whose local memory bandwidth changes.
    pub node: usize,
    /// Multiplier applied to the node's *nominal* bandwidth (e.g. `0.5`
    /// halves it). When several perturbations of the same node are active,
    /// the latest `at_s` wins.
    pub bandwidth_factor: f64,
}

/// Tuning for [`run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Length of one decision tick (predict → simulate → measure), seconds.
    pub decision_period_s: f64,
    /// Total supervised duration, seconds.
    pub duration_s: f64,
    /// Machine changes the model does not know about.
    pub perturbations: Vec<Perturbation>,
    /// Drift-detector tuning shared by every series.
    pub drift: DriftConfig,
    /// Re-run the allocation search each tick instead of replaying the
    /// scenario's fixed assignment. The search warm-starts from the
    /// current assignment and shares one score cache and delta-solver
    /// context across the whole run, so steady-state ticks cost a handful
    /// of incremental solves; per-tick solver-work counters are recorded
    /// as `search/*` inputs on each provenance record.
    pub reoptimize: bool,
    /// Emit synthetic causal spans from each tick's simulation (see
    /// [`Simulation::with_tracing`]): every (app, tick) pair becomes a
    /// traced task in the runtime's hop schema, so a supervised fleet run
    /// assembles with the same [`coop_telemetry::TraceAssembler`] as a
    /// real runtime.
    pub tracing: bool,
    /// Application outages injected into the supervised run (evaluated at
    /// decision-tick granularity: an app is down for a whole tick iff the
    /// plan says it is down at the tick's start). Down apps are removed
    /// from the effective assignment — fair-shared over the survivors
    /// when the plan reclaims — and their tenant accounting epochs close
    /// (`outage`) and re-open (`revived`) on the edges.
    pub chaos: Option<ChaosPlan>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            decision_period_s: 0.02,
            duration_s: 0.2,
            perturbations: Vec::new(),
            drift: DriftConfig::default(),
            reoptimize: false,
            tracing: false,
            chaos: None,
        }
    }
}

impl SupervisorConfig {
    /// Validates periods and perturbation targets against `machine`.
    pub fn validate(&self, machine: &Machine) -> Result<()> {
        if !(self.decision_period_s > 0.0 && self.decision_period_s.is_finite()) {
            return Err(SimError::BadTime {
                reason: "decision period must be positive and finite",
            });
        }
        if !(self.duration_s > 0.0 && self.duration_s.is_finite()) {
            return Err(SimError::BadTime {
                reason: "supervised duration must be positive and finite",
            });
        }
        for p in &self.perturbations {
            if p.node >= machine.num_nodes() {
                return Err(SimError::Calibration {
                    reason: format!(
                        "perturbation targets node {} but the machine has {} nodes",
                        p.node,
                        machine.num_nodes()
                    ),
                });
            }
            if !(p.bandwidth_factor > 0.0 && p.bandwidth_factor.is_finite()) {
                return Err(SimError::Calibration {
                    reason: format!(
                        "perturbation of node {} has non-positive bandwidth factor {}",
                        p.node, p.bandwidth_factor
                    ),
                });
            }
            if !(p.at_s >= 0.0 && p.at_s.is_finite()) {
                return Err(SimError::BadTime {
                    reason: "perturbation time must be non-negative and finite",
                });
            }
        }
        Ok(())
    }

    /// The nominal machine with every perturbation active at time `t_s`
    /// applied (latest-active-per-node wins).
    pub fn machine_at(&self, nominal: &Machine, t_s: f64) -> Result<Machine> {
        let mut factors: Vec<Option<(f64, f64)>> = vec![None; nominal.num_nodes()];
        for p in &self.perturbations {
            if p.at_s <= t_s {
                let slot = &mut factors[p.node];
                if slot.is_none_or(|(at, _)| p.at_s >= at) {
                    *slot = Some((p.at_s, p.bandwidth_factor));
                }
            }
        }
        let mut machine = nominal.clone();
        for (node, slot) in factors.iter().enumerate() {
            if let Some((_, factor)) = slot {
                machine = machine
                    .with_scaled_node_bandwidth(NodeId(node), *factor)
                    .map_err(|e| SimError::Calibration {
                        reason: format!("applying perturbation to node {node}: {e}"),
                    })?;
            }
        }
        Ok(machine)
    }
}

/// One decision tick of a supervised run.
#[derive(Debug, Clone)]
pub struct DecisionTick {
    /// Tick index (0-based).
    pub tick: u64,
    /// Simulated start time of the tick, seconds.
    pub start_s: f64,
    /// Provenance-record id in the observatory's ledger.
    pub provenance: u64,
    /// `true` if a perturbation was active during this tick.
    pub perturbed: bool,
    /// Residuals computed when the tick's record was back-filled.
    pub residuals: Vec<Residual>,
    /// Number of drift alarms raised while closing this tick.
    pub alarms: usize,
}

/// The outcome of [`run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisedResult {
    /// One entry per decision tick, in order.
    pub ticks: Vec<DecisionTick>,
    /// The observatory holding the ledger, detector state, and metrics.
    pub observatory: Arc<ModelObservatory>,
}

impl SupervisedResult {
    /// The drift report accumulated over the run.
    pub fn report(&self) -> DriftReport {
        self.observatory.report()
    }

    /// The retained provenance records, oldest first.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        self.observatory.records()
    }

    /// Total drift alarms raised during the run.
    pub fn total_alarms(&self) -> usize {
        self.ticks.iter().map(|t| t.alarms).sum()
    }

    /// Index of the first tick that raised an alarm, if any.
    pub fn first_alarm_tick(&self) -> Option<u64> {
        self.ticks.iter().find(|t| t.alarms > 0).map(|t| t.tick)
    }
}

/// Runs the first assignment of `scenario` under model supervision,
/// publishing provenance and drift events into `hub` (see the module docs
/// for the per-tick loop).
pub fn run_supervised(
    scenario: &Scenario,
    config: &SupervisorConfig,
    hub: Arc<TelemetryHub>,
) -> Result<SupervisedResult> {
    scenario.validate()?;
    config.validate(&scenario.machine)?;
    if let Some(plan) = &config.chaos {
        plan.validate(scenario)?;
    }
    let observatory = Arc::new(ModelObservatory::with_config(
        Arc::clone(&hub),
        config.drift.clone(),
        1024,
    ));
    let named = &scenario.assignments[0];
    let mut assignment = ThreadAssignment::from_matrix(named.threads.clone());
    let specs: Vec<AppSpec> = scenario.apps.iter().map(|a| a.spec.clone()).collect();

    // The model predicts from the nominal machine: the prediction only
    // changes if the assignment does (under `reoptimize`) — the whole
    // point is that the model does not know about perturbations.
    let report = solve(&scenario.machine, &specs, &assignment)?;
    let mut prediction_template = report.to_prediction();
    prediction_template.assignment = format!("{} {:?}", named.name, named.threads);

    // Under `reoptimize`, one oracle (and thus one score cache and one
    // delta-solver base) persists across every tick of the run.
    let objective = Objective::TotalGflops;
    let mut search_oracle = if config.reoptimize {
        let oracle = ModelOracle::new(&scenario.machine, &specs, &objective)
            .map_err(|e| SimError::Calibration {
                reason: format!("building the search oracle: {e}"),
            })?
            .with_min_threads(1);
        let cache = Arc::new(ScoreCache::new(oracle.fingerprint()));
        Some(
            oracle
                .with_cache(cache)
                .expect("a freshly keyed cache always matches its oracle"),
        )
    } else {
        None
    };

    // Map simulated seconds onto the hub clock exactly like the engine's
    // own telemetry does, so provenance/alarm events interleave with the
    // simulator's bandwidth samples.
    let base_us = hub.now_us();
    let ts = |t_s: f64| base_us + (t_s * 1e6) as u64;

    let ticks_total = (config.duration_s / config.decision_period_s).ceil() as u64;
    let mut ticks = Vec::with_capacity(ticks_total as usize);
    let num_apps = scenario.apps.len();
    let num_nodes = scenario.machine.num_nodes();
    // Tenant accounting books: cumulative synthetic counters per app
    // (one "task" = one MFLOP delivered), so supervised runs feed any
    // installed ledger the exact sample shape a live runtime produces.
    let mut books: Vec<TenantBook> = (0..num_apps).map(|_| TenantBook::new(num_nodes)).collect();
    let mut prev_live = vec![false; num_apps];
    for tick in 0..ticks_total {
        let start_s = tick as f64 * config.decision_period_s;
        let period = config.decision_period_s.min(config.duration_s - start_s);
        if period <= 0.0 {
            break;
        }
        let machine = config.machine_at(&scenario.machine, start_s)?;
        let perturbed = machine != scenario.machine;

        // Outage edges: down apps leave the effective assignment for the
        // whole tick; ledger epochs close/open on the transitions.
        let live = match &config.chaos {
            Some(plan) => plan.live_at(num_apps, start_s),
            None => vec![true; num_apps],
        };
        if let Some(ledger) = hub.tenant_ledger() {
            for (i, app) in scenario.apps.iter().enumerate() {
                let name = app.spec.name.as_str();
                if live[i] && !prev_live[i] {
                    let reason = if tick == 0 { "managed" } else { "revived" };
                    ledger.open_epoch(&hub, name, reason, ts(start_s));
                    // A new life restarts the tenant's cumulative
                    // counters from zero, exactly like a restarted
                    // runtime; the ledger diffs the new life against a
                    // zero baseline.
                    books[i] = TenantBook::new(num_nodes);
                } else if !live[i] && prev_live[i] {
                    ledger.close_epoch(&hub, name, "outage", ts(start_s));
                }
            }
        }

        let mut prediction = prediction_template.clone();
        if let Some(oracle) = search_oracle.as_mut() {
            // Warm re-search from the current assignment on the nominal
            // machine (the model's view); a deterministic per-tick seed
            // keeps runs reproducible.
            let found = HillClimb::new()
                .with_iterations(600)
                .with_seed(0xc0de ^ tick)
                .with_start(assignment.clone())
                .run_model(&scenario.machine, oracle)
                .map_err(|e| SimError::Calibration {
                    reason: format!("re-optimizing tick {tick}: {e}"),
                })?;
            let counters = found.counters;
            if found.assignment != assignment {
                assignment = found.assignment;
                let report = solve(&scenario.machine, &specs, &assignment)?;
                prediction_template = report.to_prediction();
                prediction_template.assignment =
                    format!("{} {:?}", named.name, assignment.matrix());
                prediction = prediction_template.clone();
            }
            prediction.inputs.push((
                "search/full_solves".to_string(),
                counters.full_solves as f64,
            ));
            prediction.inputs.push((
                "search/delta_solves".to_string(),
                counters.delta_solves as f64,
            ));
            prediction
                .inputs
                .push(("search/cache_hits".to_string(), counters.cache_hits as f64));
            prediction
                .inputs
                .push(("search/warm_start".to_string(), 1.0));
        }

        let id = observatory.open_decision_at(
            tick,
            "memsim-supervisor",
            &format!("simulate {period:.4}s on {}", machine.name()),
            prediction,
            ts(start_s),
        );

        let effective = if live.iter().any(|l| !l) {
            let plan = config.chaos.as_ref().expect("dead apps imply a chaos plan");
            segment_assignment(scenario, plan, &assignment, &live)?
        } else {
            assignment.clone()
        };

        let mut sim = Simulation::new(
            SimConfig::new(machine)
                .with_effects(scenario.effects.clone())
                .with_seed(scenario.seed.wrapping_add(tick)),
        )
        .with_telemetry(Arc::clone(&hub));
        if config.tracing {
            sim = sim.with_tracing();
        }
        let result = sim.run(&scenario.apps, &effective, period)?;

        let alarms_before = observatory.detector().total_alarms();
        let residuals = observatory.close_decision_at(
            id,
            measured_series(scenario, &result),
            ts(start_s + period),
        );
        let alarms = (observatory.detector().total_alarms() - alarms_before) as usize;

        book_tenant_tick(
            &hub,
            scenario,
            &mut books,
            &effective,
            &live,
            &result,
            period,
            ts(start_s + period),
        );
        prev_live = live;

        ticks.push(DecisionTick {
            tick,
            start_s,
            provenance: id,
            perturbed,
            residuals,
            alarms,
        });
    }

    Ok(SupervisedResult { ticks, observatory })
}

/// Cumulative synthetic tenant counters for one simulated application.
struct TenantBook {
    tasks: u64,
    uptime_us: u64,
    per_node: Vec<u64>,
    local: u64,
    remote: u64,
}

impl TenantBook {
    fn new(num_nodes: usize) -> Self {
        TenantBook {
            tasks: 0,
            uptime_us: 0,
            per_node: vec![0; num_nodes],
            local: 0,
            remote: 0,
        }
    }
}

/// Books one supervised tick into any ledger installed on `hub`, then
/// lets any installed SLO engine judge the refreshed state.
///
/// One "task" is one MFLOP the simulator delivered, split across nodes
/// proportionally to the app's effective thread row; the app's
/// most-loaded node is its home, and work placed on other nodes is
/// booked as cross-node steals — the same `coop_sched_*` counters a real
/// runtime's scheduler bumps, so ledger totals reconcile with a registry
/// scrape in both worlds. Down apps are not sampled: their delivered
/// share decays to zero exactly like an evicted runtime's.
#[allow(clippy::too_many_arguments)]
fn book_tenant_tick(
    hub: &Arc<TelemetryHub>,
    scenario: &Scenario,
    books: &mut [TenantBook],
    effective: &ThreadAssignment,
    live: &[bool],
    result: &SimResult,
    period_s: f64,
    now_us: u64,
) {
    let Some(ledger) = hub.tenant_ledger() else {
        if let Some(engine) = hub.slo_engine() {
            engine.evaluate(hub, now_us);
        }
        return;
    };
    let registry = hub.registry();
    let num_nodes = scenario.machine.num_nodes();
    let total_cores = scenario.machine.total_cores();
    let mut samples = Vec::with_capacity(scenario.apps.len());
    for (i, app) in scenario.apps.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let name = app.spec.name.as_str();
        let mflops = (result.app_gflops(i) * period_s * 1000.0).round() as u64;
        let row: Vec<u64> = (0..num_nodes)
            .map(|n| effective.get(i, NodeId(n)) as u64)
            .collect();
        let row_total: u64 = row.iter().sum();
        // Home node: the app's most-loaded node (lowest id wins ties).
        let home = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(n, _)| n)
            .unwrap_or(0);
        let book = &mut books[i];
        book.uptime_us += (period_s * 1e6) as u64;
        book.tasks += mflops;
        let mut remote_delta = 0u64;
        if row_total > 0 && mflops > 0 {
            for (n, &t) in row.iter().enumerate() {
                if n == home || t == 0 {
                    continue;
                }
                let share = mflops * t / row_total;
                book.per_node[n] += share;
                remote_delta += share;
            }
            // The home node takes the remainder, so the split always sums
            // to exactly `mflops`.
            book.per_node[home] += mflops - remote_delta;
        }
        let local_delta = mflops - remote_delta;
        book.local += local_delta;
        book.remote += remote_delta;
        if local_delta > 0 {
            registry
                .counter("coop_sched_local_pops_total", &[("runtime", name)])
                .add(local_delta);
        }
        if remote_delta > 0 {
            registry
                .counter(
                    "coop_sched_steals_total",
                    &[("runtime", name), ("tier", "normal"), ("source", "remote")],
                )
                .add(remote_delta);
        }
        if total_cores > 0 {
            ledger.set_entitlement(name, row_total as f64 / total_cores as f64);
        }
        samples.push(TenantSample {
            tenant: name.to_string(),
            tasks_executed: book.tasks,
            uptime_us: book.uptime_us,
            per_node_tasks: book.per_node.clone(),
            running_per_node: row,
            local_pops: book.local,
            remote_steals: book.remote,
        });
    }
    ledger.tick(hub, now_us, &samples);
    if let Some(engine) = hub.slo_engine() {
        engine.evaluate(hub, now_us);
    }
}

/// The measured counterpart of [`roofline_numa::SolveReport::to_prediction`]:
/// per-app throughput and bandwidth plus per-node served bandwidth, from
/// the simulator's counters.
fn measured_series(scenario: &Scenario, result: &SimResult) -> Vec<SeriesValue> {
    let mut series = Vec::with_capacity(scenario.apps.len() * 2 + result.node_avg_gbs.len());
    for (i, app) in scenario.apps.iter().enumerate() {
        let gflops = result.app_gflops(i);
        series.push(SeriesValue::new(
            format!("app/{}/gflops", app.spec.name),
            gflops,
        ));
        // bandwidth = throughput / arithmetic intensity (GFLOPS over
        // FLOP/byte gives GB/s) — the same identity the model uses.
        series.push(SeriesValue::new(
            format!("app/{}/bandwidth_gbs", app.spec.name),
            gflops / app.spec.ai,
        ));
    }
    for (n, &gbs) in result.node_avg_gbs.iter().enumerate() {
        series.push(SeriesValue::new(format!("node/{n}/bandwidth_gbs"), gbs));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::template;
    use crate::EffectModel;

    fn base_scenario() -> Scenario {
        let mut s = template();
        // Single assignment, ideal effects: the simulator matches the
        // analytic model exactly, so residuals are pure perturbation.
        s.assignments.truncate(1);
        s.effects = EffectModel::ideal();
        s
    }

    fn quiet_config() -> SupervisorConfig {
        SupervisorConfig {
            decision_period_s: 0.01,
            duration_s: 0.1,
            perturbations: Vec::new(),
            drift: DriftConfig::default(),
            reoptimize: false,
            tracing: false,
            chaos: None,
        }
    }

    #[test]
    fn unperturbed_run_raises_no_alarm() {
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &quiet_config(), hub).unwrap();
        assert_eq!(result.ticks.len(), 10);
        assert_eq!(result.total_alarms(), 0);
        assert!(result.ticks.iter().all(|t| !t.perturbed));
        // Every record is closed with real residuals.
        for record in result.records() {
            assert!(record.is_closed());
            assert!(!record.residuals.is_empty());
        }
    }

    #[test]
    fn supervised_tracing_emits_assemblable_spans() {
        use coop_telemetry::{hop, TraceAssembler};

        let hub = Arc::new(TelemetryHub::new());
        let mut config = quiet_config();
        config.tracing = true;
        let scenario = base_scenario();
        let result = run_supervised(&scenario, &config, Arc::clone(&hub)).unwrap();

        // One synthetic task per (app, tick): the same assembler that
        // reconstructs real runtime steals reconstructs a supervised run.
        let asm = TraceAssembler::from_hub(&hub);
        assert_eq!(asm.len(), result.ticks.len() * scenario.apps.len());
        for t in asm.tasks() {
            assert!(t.completed(), "{:?}", t.name);
            assert!(!t.truncated);
            assert!(t.hop(hop::STARTED).is_some());
        }
        // Tracing off (the default) emits none.
        let hub2 = Arc::new(TelemetryHub::new());
        run_supervised(&scenario, &quiet_config(), Arc::clone(&hub2)).unwrap();
        assert!(TraceAssembler::from_hub(&hub2).is_empty());
    }

    #[test]
    fn step_change_is_detected_within_a_few_ticks() {
        let mut config = quiet_config();
        config.duration_s = 0.2;
        config.perturbations.push(Perturbation {
            at_s: 0.1,
            node: 0,
            bandwidth_factor: 0.4,
        });
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &config, hub).unwrap();
        assert!(
            result.total_alarms() > 0,
            "perturbation must raise an alarm"
        );
        let first = result.first_alarm_tick().unwrap();
        // The perturbation lands at tick 10; satellite requirement: the
        // detector fires within a handful of decision ticks, not at the
        // very end of the run.
        assert!(
            (10..=16).contains(&first),
            "first alarm at tick {first}, expected within 6 ticks of the step at tick 10"
        );
        // No alarm before the step.
        assert!(result.ticks[..10].iter().all(|t| t.alarms == 0));
    }

    #[test]
    fn perturbed_ticks_are_flagged_and_residuals_negative() {
        let mut config = quiet_config();
        config.perturbations.push(Perturbation {
            at_s: 0.05,
            node: 1,
            bandwidth_factor: 0.5,
        });
        let hub = Arc::new(TelemetryHub::new());
        let scenario = base_scenario();
        let result = run_supervised(&scenario, &config, hub).unwrap();
        assert!(result.ticks[..5].iter().all(|t| !t.perturbed));
        assert!(result.ticks[5..].iter().all(|t| t.perturbed));
    }

    #[test]
    fn reoptimizing_run_records_search_cost_in_provenance() {
        let mut config = quiet_config();
        config.reoptimize = true;
        let hub = Arc::new(TelemetryHub::new());
        let result = run_supervised(&base_scenario(), &config, hub).unwrap();
        assert_eq!(result.ticks.len(), 10);
        let records = result.records();
        assert_eq!(records.len(), 10);
        let solves_of = |r: &ProvenanceRecord, key: &str| -> f64 {
            r.prediction
                .inputs
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .expect("search counters recorded")
        };
        for record in &records {
            assert!(solves_of(record, "search/warm_start") == 1.0);
            // Every tick does some solver work, but the persistent
            // delta/cache context keeps full solves to (at most) the one
            // base rebase per tick.
            let full = solves_of(record, "search/full_solves");
            let delta = solves_of(record, "search/delta_solves");
            let hits = solves_of(record, "search/cache_hits");
            assert!(full + delta + hits > 0.0, "search did no work");
            assert!(
                delta + hits >= full,
                "warm re-solves should be dominated by incremental work \
                 (full={full}, delta={delta}, hits={hits})"
            );
        }
        // Determinism: the same config and scenario replays identically.
        let hub2 = Arc::new(TelemetryHub::new());
        let again = run_supervised(&base_scenario(), &config, hub2).unwrap();
        let a: Vec<String> = records
            .iter()
            .map(|r| r.prediction.assignment.clone())
            .collect();
        let b: Vec<String> = again
            .records()
            .iter()
            .map(|r| r.prediction.assignment.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn supervised_chaos_run_books_tenant_accounting() {
        use crate::chaos::{AppOutage, ChaosPlan};
        use crate::scenario::NamedAssignment;
        use crate::SimApp;
        use coop_telemetry::{scheduler_locality, SloEngine, SloSpec, TenantLedger};
        use numa_topology::presets::tiny;

        let scenario = Scenario {
            name: "supervised-chaos".into(),
            machine: tiny(),
            apps: vec![
                SimApp::numa_local("a", 1.0 / 32.0),
                SimApp::numa_local("b", 1.0 / 32.0),
            ],
            assignments: vec![NamedAssignment {
                name: "even".into(),
                threads: vec![vec![1, 1], vec![1, 1]],
            }],
            duration_s: 0.1,
            effects: EffectModel::ideal(),
            seed: 7,
        };
        let mut config = quiet_config();
        config.chaos = Some(ChaosPlan {
            outages: vec![AppOutage {
                app: 1,
                down_at_s: 0.03,
                up_at_s: Some(0.07),
            }],
            reclaim: true,
        });

        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
        let engine = Arc::new(SloEngine::new(vec![
            SloSpec::min_share("b", 0.25).with_windows(vec![2, 6])
        ]));
        assert!(hub.install_slo_engine(Arc::clone(&engine)));

        let result = run_supervised(&scenario, &config, Arc::clone(&hub)).unwrap();
        assert_eq!(result.ticks.len(), 10);

        let snap = ledger.snapshot();
        let a = snap.tenant("a").unwrap();
        let b = snap.tenant("b").unwrap();

        // Both apps delivered work and ended the run live; the victim's
        // outage shows as a closed "managed" epoch plus a "revived" one.
        assert!(a.tasks_total > 0 && b.tasks_total > 0);
        assert!(a.live && b.live);
        assert_eq!(b.epochs.len(), 2);
        assert_eq!(b.epochs[0].reason, "managed");
        assert!(b.epochs[0].closed_us.is_some());
        assert_eq!(b.epochs[1].reason, "revived");
        assert_eq!(a.epochs.len(), 1);

        // Ledger totals reconcile with the scheduler-counter view.
        for t in [a, b] {
            let (local, remote) = scheduler_locality(hub.registry(), &t.tenant);
            assert_eq!(t.local_pops, local, "{}", t.tenant);
            assert_eq!(t.remote_steals, remote, "{}", t.tenant);
            assert_eq!(
                t.tasks_total,
                t.local_pops + t.remote_steals,
                "every booked task is a pop or a steal"
            );
            assert!(t.cpu_us_per_node.iter().sum::<u64>() > 0);
        }

        // During the outage the survivor owned every window (share 1.0)
        // and was entitled to the whole reclaimed machine; with both
        // apps up it sits at ~0.5. Reclamation moves work across nodes,
        // so the survivor books cross-node steals.
        let peak = a
            .share_history
            .iter()
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-9, "survivor peak share {peak}");
        assert!(a.remote_steals > 0, "reclaimed work crosses nodes");

        // The victim's min-share SLO burned while it was down.
        let report = engine.report();
        assert!(report[0].violations_total >= 2, "{report:?}");
        assert!(report[0].burn_rate_peak > 1.0);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let scenario = base_scenario();
        let mut config = quiet_config();
        config.decision_period_s = 0.0;
        assert!(config.validate(&scenario.machine).is_err());

        let mut config = quiet_config();
        config.perturbations.push(Perturbation {
            at_s: 0.0,
            node: 99,
            bandwidth_factor: 0.5,
        });
        assert!(config.validate(&scenario.machine).is_err());

        let mut config = quiet_config();
        config.perturbations.push(Perturbation {
            at_s: 0.0,
            node: 0,
            bandwidth_factor: 0.0,
        });
        assert!(config.validate(&scenario.machine).is_err());
    }

    #[test]
    fn machine_at_latest_perturbation_wins() {
        let scenario = base_scenario();
        let mut config = quiet_config();
        config.perturbations.push(Perturbation {
            at_s: 0.01,
            node: 0,
            bandwidth_factor: 0.5,
        });
        config.perturbations.push(Perturbation {
            at_s: 0.05,
            node: 0,
            bandwidth_factor: 0.25,
        });
        let nominal = scenario.machine.node(NodeId(0)).bandwidth_gbs;
        let m = config.machine_at(&scenario.machine, 0.02).unwrap();
        assert!((m.node(NodeId(0)).bandwidth_gbs - nominal * 0.5).abs() < 1e-9);
        let m = config.machine_at(&scenario.machine, 0.06).unwrap();
        assert!((m.node(NodeId(0)).bandwidth_gbs - nominal * 0.25).abs() < 1e-9);
        let m = config.machine_at(&scenario.machine, 0.0).unwrap();
        assert_eq!(m, scenario.machine);
    }
}
