//! Simulation results.

use serde::{Deserialize, Serialize};

/// Per-application outcome of a simulation, including a sampled GFLOPS
/// timeline (for burst/dynamic experiments and plots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSeries {
    /// Application name.
    pub name: String,
    /// Total floating-point work completed, GFLOP.
    pub gflop_done: f64,
    /// Sample times, seconds (midpoints of sampling windows).
    pub times_s: Vec<f64>,
    /// Sustained GFLOPS in each sampling window.
    pub gflops_series: Vec<f64>,
}

impl AppSeries {
    /// Average sustained GFLOPS over the whole run.
    pub fn avg_gflops(&self, duration_s: f64) -> f64 {
        self.gflop_done / duration_s
    }
}

/// Complete result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Machine name.
    pub machine: String,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Per-application series, in spec order.
    pub apps: Vec<AppSeries>,
    /// Average bandwidth served by each node's memory over the run, GB/s.
    pub node_avg_gbs: Vec<f64>,
    /// Average fraction of each node's nominal bandwidth in use (0..=1).
    pub node_utilization: Vec<f64>,
}

impl SimResult {
    /// Sustained machine-wide GFLOPS (total work / duration).
    pub fn total_gflops(&self) -> f64 {
        self.apps.iter().map(|a| a.gflop_done).sum::<f64>() / self.duration_s
    }

    /// Sustained GFLOPS of one application.
    pub fn app_gflops(&self, app: usize) -> f64 {
        self.apps[app].avg_gflops(self.duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollups() {
        let r = SimResult {
            machine: "m".into(),
            duration_s: 2.0,
            apps: vec![
                AppSeries {
                    name: "a".into(),
                    gflop_done: 10.0,
                    times_s: vec![0.5, 1.5],
                    gflops_series: vec![5.0, 5.0],
                },
                AppSeries {
                    name: "b".into(),
                    gflop_done: 6.0,
                    times_s: vec![0.5, 1.5],
                    gflops_series: vec![3.0, 3.0],
                },
            ],
            node_avg_gbs: vec![8.0],
            node_utilization: vec![0.25],
        };
        assert!((r.total_gflops() - 8.0).abs() < 1e-12);
        assert!((r.app_gflops(0) - 5.0).abs() < 1e-12);
        assert!((r.apps[1].avg_gflops(2.0) - 3.0).abs() < 1e-12);
    }
}
