//! End-to-end acceptance test for the model-drift observatory.
//!
//! A supervised memsim run whose node bandwidth is perturbed mid-run must
//! produce (a) a decision whose provenance record carries predicted AND
//! measured bandwidth with a nonzero residual, (b) a drift alarm event on
//! the shared timeline, and (c) a nonzero `coop_model_drift_alarms`
//! counter in the Prometheus exposition — while the identical unperturbed
//! run raises no alarm at all.

use coop_telemetry::TelemetryHub;
use memsim::scenario::template;
use memsim::{run_supervised, EffectModel, Perturbation, Scenario, SupervisorConfig};
use std::sync::Arc;

fn scenario() -> Scenario {
    let mut s = template();
    s.assignments.truncate(1);
    s.effects = EffectModel::ideal();
    s
}

fn config(perturbations: Vec<Perturbation>) -> SupervisorConfig {
    SupervisorConfig {
        decision_period_s: 0.01,
        duration_s: 0.2,
        perturbations,
        ..SupervisorConfig::default()
    }
}

#[test]
fn perturbed_run_satisfies_all_acceptance_criteria() {
    let hub = Arc::new(TelemetryHub::new());
    let result = run_supervised(
        &scenario(),
        &config(vec![Perturbation {
            at_s: 0.1,
            node: 0,
            bandwidth_factor: 0.4,
        }]),
        Arc::clone(&hub),
    )
    .unwrap();

    // (a) A closed provenance record with predicted and measured node
    // bandwidth and a nonzero residual on the perturbed node's series.
    let series = "node/0/bandwidth_gbs";
    let record = result
        .records()
        .into_iter()
        .filter(|r| r.is_closed())
        .find(|r| {
            r.residual_for(series)
                .is_some_and(|res| res.relative.abs() > 0.05)
        })
        .expect("a provenance record with a nonzero node/0 residual");
    let residual = record.residual_for(series).unwrap();
    assert!(residual.predicted > 0.0, "prediction must be recorded");
    assert!(residual.measured > 0.0, "measurement must be back-filled");
    assert!(
        residual.measured < residual.predicted,
        "halving node bandwidth must under-deliver the prediction"
    );
    assert_eq!(record.prediction.value(series), Some(residual.predicted));

    // (b) A drift alarm instant on the shared timeline.
    let events = hub.events();
    assert!(
        events.iter().any(|e| e.cat == "drift"),
        "expected a drift alarm event on the timeline"
    );
    assert!(
        events.iter().any(|e| e.cat == "provenance"),
        "expected provenance events on the timeline"
    );

    // (c) A nonzero alarm counter in the Prometheus exposition.
    assert!(result.total_alarms() > 0);
    let prom = hub.registry().to_prometheus();
    let alarm_count: u64 = prom
        .lines()
        .filter(|l| l.starts_with("coop_model_drift_alarms{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert!(
        alarm_count > 0,
        "coop_model_drift_alarms must be nonzero in:\n{prom}"
    );
    assert!(prom.contains("coop_model_residual{"));
}

#[test]
fn unperturbed_run_raises_no_alarm_anywhere() {
    let hub = Arc::new(TelemetryHub::new());
    let result = run_supervised(&scenario(), &config(Vec::new()), Arc::clone(&hub)).unwrap();

    assert_eq!(result.total_alarms(), 0);
    assert!(!hub.events().iter().any(|e| e.cat == "drift"));
    let prom = hub.registry().to_prometheus();
    let alarm_count: u64 = prom
        .lines()
        .filter(|l| l.starts_with("coop_model_drift_alarms{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(alarm_count, 0, "no alarms expected in:\n{prom}");
}
