//! Cross-engine agreement: the time-sliced and discrete-event simulator
//! cores are two integrators over the same physics, so on scenarios whose
//! schedule and activity edges land on quantum boundaries (and with the
//! ideal effect model, which has no per-quantum jitter) they must agree on
//! throughput to float rounding — and the event engine must produce an
//! exactly predictable, byte-reproducible event log.
//!
//! Edge times are written as `k as f64 * QUANTUM_S` so they compare
//! bitwise-equal to the slice engine's `step as f64 * dt` quantum starts;
//! the exact-count test additionally restricts `k` to powers of two so
//! the event engine's float↔tick round-trip is exact and cannot schedule
//! a spurious one-nanosecond repeat edge.

use memsim::{
    run_chaos_scenario_on, run_chaos_scenario_threaded, run_supervised, ActivityPattern,
    ChaosPlan, EffectModel, EngineKind, NamedAssignment, Perturbation, Scenario, ShardPlan,
    SimApp, SimConfig, Simulation, SupervisorConfig, TelemetryHub,
};
use numa_topology::MachineBuilder;
use proptest::prelude::*;
use roofline_numa::ThreadAssignment;
use std::sync::Arc;

/// The default slice quantum; all edge times are multiples of this.
const QUANTUM_S: f64 = 1e-3;

fn machine(nodes: usize, cores: usize, bw: f64, link: f64) -> numa_topology::Machine {
    MachineBuilder::new()
        .symmetric_nodes(nodes, cores)
        .core_peak_gflops(10.0)
        .node_bandwidth_gbs(bw)
        .uniform_link_gbs(link)
        .build()
        .unwrap()
}

/// Relative agreement at 1e-6, with an absolute floor for near-zero values.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

/// Two apps (one always-on, one windowed), one mid-run assignment switch:
/// the shared fixture for the exact-count and determinism tests. Window
/// and switch edges sit at power-of-two quantum multiples.
fn window_fixture() -> (numa_topology::Machine, Vec<SimApp>, Vec<(f64, ThreadAssignment)>) {
    let m = machine(2, 4, 32.0, 8.0);
    let apps = vec![
        SimApp::numa_local("steady", 0.5),
        SimApp::numa_local("windowed", 0.5).with_activity(ActivityPattern::Window {
            start_s: 2.0 * QUANTUM_S,
            end_s: 4.0 * QUANTUM_S,
        }),
    ];
    let a = ThreadAssignment::uniform_per_node(&m, &[2, 1]);
    let b = ThreadAssignment::uniform_per_node(&m, &[1, 2]);
    let schedule = vec![(0.0, a), (8.0 * QUANTUM_S, b)];
    (m, apps, schedule)
}

/// One switch strictly inside the run ⇒ exactly one "assignment" event;
/// a window with both edges strictly inside ⇒ exactly two "activity"
/// events; and the engines agree on every app's throughput.
#[test]
fn window_and_switch_produce_exact_event_log() {
    let (m, apps, schedule) = window_fixture();
    let duration = 16.0 * QUANTUM_S;
    let sim = Simulation::new(SimConfig::new(m).with_effects(EffectModel::ideal()));

    let slice = sim.run_dynamic(&apps, &schedule, duration).unwrap();
    let (event, log) = sim.run_logged(&apps, &schedule, duration).unwrap();

    assert_eq!(log.count_of("assignment"), 1, "one mid-run switch");
    assert_eq!(log.count_of("activity"), 2, "window on + off edges");
    assert_eq!(log.len(), 3, "no other events exist in this scenario");

    assert!(
        close(slice.total_gflops(), event.total_gflops()),
        "total: slice {} vs event {}",
        slice.total_gflops(),
        event.total_gflops()
    );
    for i in 0..apps.len() {
        assert!(
            close(slice.app_gflops(i), event.app_gflops(i)),
            "app {i}: slice {} vs event {}",
            slice.app_gflops(i),
            event.app_gflops(i)
        );
    }
}

/// Same seed ⇒ byte-identical event log; a different seed changes the
/// serialized log (the seed is part of it, and reorders equal-time pops).
#[test]
fn same_seed_means_byte_identical_event_log() {
    let (m, apps, schedule) = window_fixture();
    let duration = 16.0 * QUANTUM_S;
    let run = |seed: u64| {
        let sim = Simulation::new(
            SimConfig::new(m.clone())
                .with_effects(EffectModel::ideal())
                .with_seed(seed),
        );
        let (_, log) = sim.run_logged(&apps, &schedule, duration).unwrap();
        log.to_bytes()
    };
    let first = run(42);
    assert_eq!(first, run(42), "same seed must replay byte-identically");
    assert_ne!(first, run(43), "the seed is part of the log identity");
}

/// A kill/revive chaos plan with reclaim produces identical outage
/// segments and matching throughput on both engines.
#[test]
fn chaos_plan_agrees_across_engines() {
    let scenario = Scenario {
        name: "chaos-agreement".into(),
        machine: machine(2, 4, 32.0, 8.0),
        apps: vec![
            SimApp::numa_local("a", 0.5),
            SimApp::numa_local("b", 0.25),
        ],
        assignments: vec![NamedAssignment {
            name: "even".into(),
            threads: vec![vec![1, 1], vec![1, 1]],
        }],
        duration_s: 16.0 * QUANTUM_S,
        effects: EffectModel::ideal(),
        seed: 7,
    };
    let plan = ChaosPlan::kill_revive(1, 4.0 * QUANTUM_S, 8.0 * QUANTUM_S).with_reclaim(true);

    let slice = run_chaos_scenario_on(&scenario, &plan, None, EngineKind::Slice).unwrap();
    let event = run_chaos_scenario_on(&scenario, &plan, None, EngineKind::Event).unwrap();

    assert_eq!(
        slice.segments, event.segments,
        "outage segmentation is derived from the plan, not the engine"
    );
    assert!(
        close(slice.result.total_gflops(), event.result.total_gflops()),
        "total: slice {} vs event {}",
        slice.result.total_gflops(),
        event.result.total_gflops()
    );
    for i in 0..scenario.apps.len() {
        assert!(
            close(slice.result.app_gflops(i), event.result.app_gflops(i)),
            "app {i}: slice {} vs event {}",
            slice.result.app_gflops(i),
            event.result.app_gflops(i)
        );
    }
}

/// A supervised run with a `RunawayTask` perturbation books the same
/// ticks on both engines: same perturbed flags, same alarm counts, and
/// residuals that agree series-by-series.
#[test]
fn runaway_task_supervised_agreement() {
    let scenario = Scenario {
        name: "runaway-agreement".into(),
        machine: machine(2, 2, 32.0, 8.0),
        apps: vec![
            SimApp::numa_local("a", 1.0 / 32.0),
            SimApp::numa_local("b", 1.0 / 32.0),
        ],
        assignments: vec![NamedAssignment {
            name: "even".into(),
            threads: vec![vec![1, 1], vec![1, 1]],
        }],
        duration_s: 0.2,
        effects: EffectModel::ideal(),
        seed: 7,
    };
    let config = |engine: EngineKind| SupervisorConfig {
        perturbations: vec![Perturbation::RunawayTask { at_s: 0.04, app: 1 }],
        engine,
        ..SupervisorConfig::default()
    };

    let slice = run_supervised(
        &scenario,
        &config(EngineKind::Slice),
        Arc::new(TelemetryHub::new()),
    )
    .unwrap();
    let event = run_supervised(
        &scenario,
        &config(EngineKind::Event),
        Arc::new(TelemetryHub::new()),
    )
    .unwrap();

    assert!(
        slice.ticks.iter().any(|t| t.perturbed),
        "the runaway must land inside the run"
    );
    assert_eq!(slice.ticks.len(), event.ticks.len());
    for (ts, te) in slice.ticks.iter().zip(&event.ticks) {
        assert_eq!(ts.perturbed, te.perturbed, "tick {}", ts.tick);
        assert_eq!(ts.alarms, te.alarms, "tick {}", ts.tick);
        assert_eq!(ts.residuals.len(), te.residuals.len(), "tick {}", ts.tick);
        for (rs, re) in ts.residuals.iter().zip(&te.residuals) {
            assert_eq!(rs.series, re.series, "tick {}", ts.tick);
            assert!(
                close(rs.predicted, re.predicted),
                "tick {} {}: predicted slice {} vs event {}",
                ts.tick,
                rs.series,
                rs.predicted,
                re.predicted
            );
            assert!(
                close(rs.measured, re.measured),
                "tick {} {}: measured slice {} vs event {}",
                ts.tick,
                rs.series,
                rs.measured,
                re.measured
            );
        }
    }
}

/// The parallel event engine's contract is *bit*-identity, not agreement
/// to tolerance: same event-log bytes, same banked floats, at any shard
/// count. These tests run the window+switch fixture, a chaos plan, and
/// explicit (deliberately lopsided) shard plans through 1/2/8 workers.
mod parallel_determinism {
    use super::*;

    fn event_config(m: &numa_topology::Machine, threads: usize) -> SimConfig {
        // Default (non-ideal) effects on purpose: the jitter RNG draws are
        // part of the sequential order the parallel engine must reproduce.
        SimConfig::new(m.clone())
            .with_seed(42)
            .with_engine(EngineKind::Event)
            .with_sim_threads(threads)
    }

    #[test]
    fn window_fixture_is_byte_identical_at_1_2_and_8_threads() {
        let (m, apps, schedule) = window_fixture();
        let duration = 16.0 * QUANTUM_S;
        let run = |threads: usize| {
            Simulation::new(event_config(&m, threads))
                .run_logged(&apps, &schedule, duration)
                .unwrap()
        };
        let (seq, seq_log) = run(1);
        for threads in [2usize, 8] {
            let (par, par_log) = run(threads);
            assert_eq!(
                seq_log.to_bytes(),
                par_log.to_bytes(),
                "{threads} threads: event log diverged"
            );
            assert_eq!(
                seq.total_gflops().to_bits(),
                par.total_gflops().to_bits(),
                "{threads} threads: totals diverged"
            );
            for i in 0..apps.len() {
                assert_eq!(
                    seq.app_gflops(i).to_bits(),
                    par.app_gflops(i).to_bits(),
                    "{threads} threads: app {i} diverged"
                );
            }
        }
    }

    #[test]
    fn chaos_plan_is_bit_identical_at_1_2_and_8_threads() {
        let scenario = Scenario {
            name: "chaos-parallel".into(),
            machine: machine(2, 4, 32.0, 8.0),
            apps: vec![
                SimApp::numa_local("a", 0.5),
                SimApp::numa_local("b", 0.25),
            ],
            assignments: vec![NamedAssignment {
                name: "even".into(),
                threads: vec![vec![1, 1], vec![1, 1]],
            }],
            duration_s: 16.0 * QUANTUM_S,
            effects: EffectModel::ideal(),
            seed: 7,
        };
        let plan = ChaosPlan::kill_revive(1, 4.0 * QUANTUM_S, 8.0 * QUANTUM_S).with_reclaim(true);
        let seq = run_chaos_scenario_on(&scenario, &plan, None, EngineKind::Event).unwrap();
        for threads in [2usize, 8] {
            let par =
                run_chaos_scenario_threaded(&scenario, &plan, None, EngineKind::Event, threads)
                    .unwrap();
            assert_eq!(seq.segments, par.segments);
            assert_eq!(
                seq.result.total_gflops().to_bits(),
                par.result.total_gflops().to_bits(),
                "{threads} threads"
            );
            for i in 0..scenario.apps.len() {
                assert_eq!(
                    seq.result.app_gflops(i).to_bits(),
                    par.result.app_gflops(i).to_bits(),
                    "{threads} threads, app {i}"
                );
            }
        }
    }

    /// Shard boundaries are a performance knob, not a semantic one: even
    /// deliberately lopsided plans (all apps on one shard, all nodes on
    /// another; empty shards) replay the sequential engine byte-for-byte.
    #[test]
    fn explicit_lopsided_shard_plans_do_not_change_the_log() {
        let (m, apps, schedule) = window_fixture();
        let duration = 16.0 * QUANTUM_S;
        let (seq, seq_log) = Simulation::new(event_config(&m, 1))
            .run_logged(&apps, &schedule, duration)
            .unwrap();
        let plans = [
            ShardPlan {
                app_bounds: vec![0, 2, 2],
                node_bounds: vec![0, 0, 2],
            },
            ShardPlan {
                app_bounds: vec![0, 0, 2],
                node_bounds: vec![0, 1, 2],
            },
            ShardPlan {
                app_bounds: vec![0, 1, 2],
                node_bounds: vec![0, 2, 2],
            },
            ShardPlan {
                app_bounds: vec![0, 1, 1, 2],
                node_bounds: vec![0, 1, 2, 2],
            },
        ];
        for plan in &plans {
            let (par, par_log) = Simulation::new(event_config(&m, plan.num_shards()))
                .run_logged_with_plan(&apps, &schedule, duration, plan)
                .unwrap();
            assert_eq!(seq_log.to_bytes(), par_log.to_bytes(), "{plan:?}");
            assert_eq!(
                seq.total_gflops().to_bits(),
                par.total_gflops().to_bits(),
                "{plan:?}"
            );
        }
    }

    #[test]
    fn malformed_shard_plans_are_rejected() {
        let (m, apps, schedule) = window_fixture();
        let bad = ShardPlan {
            app_bounds: vec![0, 1],
            node_bounds: vec![0, 1], // does not span the 2-node machine
        };
        let err = Simulation::new(event_config(&m, 1))
            .run_logged_with_plan(&apps, &schedule, 16.0 * QUANTUM_S, &bad)
            .unwrap_err();
        assert!(format!("{err}").contains("bad shard plan"), "{err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random machines, arithmetic intensities, thread counts, one
    /// quantum-aligned assignment switch and one quantum-aligned activity
    /// window: slice and event totals and per-app shares agree.
    #[test]
    fn engines_agree_on_random_dynamic_schedules(
        nodes in 2usize..4,
        cores in 2usize..7,
        ais in proptest::collection::vec(0.05f64..32.0, 2..4),
        counts_a in proptest::collection::vec(0usize..3, 2..4),
        counts_b in proptest::collection::vec(0usize..3, 2..4),
        switch_ms in 1usize..19,
        win_start_ms in 0usize..10,
        win_len_ms in 1usize..10,
    ) {
        let n_apps = ais.len().min(counts_a.len()).min(counts_b.len());
        let m = machine(nodes, cores, 32.0, 8.0);
        let apps: Vec<SimApp> = ais[..n_apps]
            .iter()
            .enumerate()
            .map(|(i, &ai)| {
                let app = SimApp::numa_local(&format!("a{i}"), ai);
                if i == 0 {
                    // Exercise activity edges alongside the switch.
                    app.with_activity(ActivityPattern::Window {
                        start_s: win_start_ms as f64 * QUANTUM_S,
                        end_s: (win_start_ms + win_len_ms) as f64 * QUANTUM_S,
                    })
                } else {
                    app
                }
            })
            .collect();
        // Clamp per-node thread counts to capacity, keeping >= 1 thread.
        let clamp = |mut v: Vec<usize>| {
            while v.iter().sum::<usize>() > cores {
                let i = v.iter().position(|&c| c > 0).unwrap();
                v[i] -= 1;
            }
            if v.iter().all(|&c| c == 0) {
                v[0] = 1;
            }
            v
        };
        let a = ThreadAssignment::uniform_per_node(&m, &clamp(counts_a[..n_apps].to_vec()));
        let b = ThreadAssignment::uniform_per_node(&m, &clamp(counts_b[..n_apps].to_vec()));
        let schedule = vec![(0.0, a), (switch_ms as f64 * QUANTUM_S, b)];
        let duration = 0.02;

        let slice = Simulation::new(
            SimConfig::new(m.clone()).with_effects(EffectModel::ideal()),
        )
        .run_dynamic(&apps, &schedule, duration)
        .unwrap();
        let event = Simulation::new(
            SimConfig::new(m.clone())
                .with_effects(EffectModel::ideal())
                .with_engine(EngineKind::Event),
        )
        .run_dynamic(&apps, &schedule, duration)
        .unwrap();

        prop_assert!(
            close(slice.total_gflops(), event.total_gflops()),
            "total: slice {} vs event {}",
            slice.total_gflops(),
            event.total_gflops()
        );
        for i in 0..n_apps {
            prop_assert!(
                close(slice.app_gflops(i), event.app_gflops(i)),
                "app {i}: slice {} vs event {}",
                slice.app_gflops(i),
                event.app_gflops(i)
            );
        }
    }

    /// Random schedules through the *parallel* event engine: at any thread
    /// count the event log is byte-identical and the banked floats are
    /// bit-identical to the single-threaded run (default effects, so the
    /// jitter RNG order is exercised too).
    #[test]
    fn parallel_event_engine_replays_random_schedules_bit_identically(
        nodes in 2usize..4,
        cores in 2usize..7,
        ais in proptest::collection::vec(0.05f64..32.0, 2..4),
        counts_a in proptest::collection::vec(0usize..3, 2..4),
        counts_b in proptest::collection::vec(0usize..3, 2..4),
        switch_ms in 1usize..19,
        win_start_ms in 0usize..10,
        win_len_ms in 1usize..10,
        threads in 2usize..9,
    ) {
        let n_apps = ais.len().min(counts_a.len()).min(counts_b.len());
        let m = machine(nodes, cores, 32.0, 8.0);
        let apps: Vec<SimApp> = ais[..n_apps]
            .iter()
            .enumerate()
            .map(|(i, &ai)| {
                let app = SimApp::numa_local(&format!("a{i}"), ai);
                if i == 0 {
                    app.with_activity(ActivityPattern::Window {
                        start_s: win_start_ms as f64 * QUANTUM_S,
                        end_s: (win_start_ms + win_len_ms) as f64 * QUANTUM_S,
                    })
                } else {
                    app
                }
            })
            .collect();
        let clamp = |mut v: Vec<usize>| {
            while v.iter().sum::<usize>() > cores {
                let i = v.iter().position(|&c| c > 0).unwrap();
                v[i] -= 1;
            }
            if v.iter().all(|&c| c == 0) {
                v[0] = 1;
            }
            v
        };
        let a = ThreadAssignment::uniform_per_node(&m, &clamp(counts_a[..n_apps].to_vec()));
        let b = ThreadAssignment::uniform_per_node(&m, &clamp(counts_b[..n_apps].to_vec()));
        let schedule = vec![(0.0, a), (switch_ms as f64 * QUANTUM_S, b)];
        let duration = 0.02;

        let run = |sim_threads: usize| {
            Simulation::new(
                SimConfig::new(m.clone())
                    .with_seed(42)
                    .with_engine(EngineKind::Event)
                    .with_sim_threads(sim_threads),
            )
            .run_dynamic(&apps, &schedule, duration)
            .unwrap()
        };
        let run_logged = |sim_threads: usize| {
            Simulation::new(
                SimConfig::new(m.clone())
                    .with_seed(42)
                    .with_engine(EngineKind::Event)
                    .with_sim_threads(sim_threads),
            )
            .run_logged(&apps, &schedule, duration)
            .unwrap()
        };

        let seq = run(1);
        let par = run(threads);
        prop_assert_eq!(
            seq.total_gflops().to_bits(),
            par.total_gflops().to_bits(),
            "{} threads: totals diverged ({} vs {})",
            threads,
            seq.total_gflops(),
            par.total_gflops()
        );
        for i in 0..n_apps {
            prop_assert_eq!(
                seq.app_gflops(i).to_bits(),
                par.app_gflops(i).to_bits(),
                "{} threads: app {} diverged",
                threads,
                i
            );
        }
        let (_, seq_log) = run_logged(1);
        let (_, par_log) = run_logged(threads);
        prop_assert_eq!(seq_log.to_bytes(), par_log.to_bytes());
    }
}
