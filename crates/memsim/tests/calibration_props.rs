//! Property-based tests of the §III.B calibration procedure: on an ideal
//! (effect-free) machine, the fit recovers the true parameters exactly;
//! with effects, it recovers the *effective* machine the measurements
//! actually exhibit.

use memsim::{calibrate_even_scenario, EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::MachineBuilder;
use proptest::prelude::*;
use roofline_numa::ThreadAssignment;

fn run_even_scenario(machine: &numa_topology::Machine, effects: EffectModel) -> (f64, f64) {
    let sim = Simulation::new(SimConfig::new(machine.clone()).with_effects(effects));
    let apps = vec![
        SimApp::numa_local("m1", 1.0 / 32.0),
        SimApp::numa_local("m2", 1.0 / 32.0),
        SimApp::numa_local("m3", 1.0 / 32.0),
        SimApp::numa_local("c", 1.0),
    ];
    let cores = machine.node(numa_topology::NodeId(0)).num_cores();
    let per = cores / 4;
    let assignment = ThreadAssignment::uniform_per_node(machine, &[per, per, per, per]);
    let r = sim.run(&apps, &assignment, 0.02).unwrap();
    let mem_total: f64 = (0..3).map(|a| r.app_gflops(a)).sum();
    (mem_total, r.app_gflops(3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ideal effects: the fit recovers the true peak exactly and the true
    /// bandwidth whenever the memory-bound apps saturate the node.
    #[test]
    fn ideal_calibration_recovers_truth(
        nodes in 2usize..5,
        cores_q in 1usize..6, // cores = 4*q so the even split is exact
        peak in 0.1f64..2.0,
        bw in 20.0f64..200.0,
    ) {
        let cores = 4 * cores_q;
        let machine = MachineBuilder::new()
            .symmetric_nodes(nodes, cores)
            .core_peak_gflops(peak)
            .node_bandwidth_gbs(bw)
            .uniform_link_gbs(10.0)
            .build()
            .unwrap();
        // Preconditions of the paper's fit: the memory-bound apps must
        // saturate the node (or the bandwidth fit is meaningless), and the
        // compute-bound app must be fully satisfiable at the baseline (or
        // the peak fit is polluted) — both hold by construction in the
        // paper's scenario.
        let mem_demand = (3 * cores / 4) as f64 * peak * 32.0;
        let comp_demand = (cores / 4) as f64 * peak;
        prop_assume!(mem_demand + comp_demand > bw * 1.05);
        prop_assume!(peak < bw / cores as f64 * 0.99);

        let (mem_total, comp) = run_even_scenario(&machine, EffectModel::ideal());
        let comp_threads = nodes * cores / 4;
        let cal = calibrate_even_scenario(&machine, mem_total, 1.0 / 32.0, comp, comp_threads)
            .unwrap();
        prop_assert!(
            (cal.core_peak_gflops - peak).abs() < 1e-9,
            "peak: fit {} vs true {peak}",
            cal.core_peak_gflops
        );
        prop_assert!(
            (cal.node_bandwidth_gbs - bw).abs() < 1e-6 * bw.max(1.0),
            "bandwidth: fit {} vs true {bw}",
            cal.node_bandwidth_gbs
        );
    }

    /// With lossy effects (jitter off for determinism), the fitted
    /// bandwidth is never above the true hardware value, and the fitted
    /// peak never above the true per-core peak: calibration sees only
    /// what the machine actually delivers.
    #[test]
    fn lossy_calibration_is_conservative(
        peak in 0.2f64..1.0,
        bw in 60.0f64..160.0,
    ) {
        let machine = MachineBuilder::new()
            .symmetric_nodes(4, 20)
            .core_peak_gflops(peak)
            .node_bandwidth_gbs(bw)
            .uniform_link_gbs(10.0)
            .build()
            .unwrap();
        let mem_demand = 15.0 * peak * 32.0;
        prop_assume!(mem_demand > bw * 1.1);

        let mut effects = EffectModel::skylake_like();
        effects.jitter = 0.0;
        let (mem_total, comp) = run_even_scenario(&machine, effects);
        let cal = calibrate_even_scenario(&machine, mem_total, 1.0 / 32.0, comp, 20).unwrap();
        prop_assert!(cal.core_peak_gflops <= peak * (1.0 + 1e-9));
        prop_assert!(cal.node_bandwidth_gbs <= bw * (1.0 + 1e-9));
        // And not absurdly low either: the effects are mild.
        prop_assert!(cal.node_bandwidth_gbs >= bw * 0.7);
        prop_assert!(cal.core_peak_gflops >= peak * 0.9);
    }
}
