//! Property-based tests: the simulator agrees with the analytic model when
//! effects are off, and effects only ever reduce throughput.

use memsim::{EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::MachineBuilder;
use proptest::prelude::*;
use roofline_numa::{solve, AppSpec, ThreadAssignment};

fn machine(nodes: usize, cores: usize, bw: f64, link: f64) -> numa_topology::Machine {
    MachineBuilder::new()
        .symmetric_nodes(nodes, cores)
        .core_peak_gflops(10.0)
        .node_bandwidth_gbs(bw)
        .uniform_link_gbs(link)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ideal simulator == analytic model, for random NUMA-local scenarios.
    #[test]
    fn ideal_sim_matches_model_local(
        nodes in 2usize..4,
        cores in 1usize..7,
        ais in proptest::collection::vec(0.05f64..32.0, 1..4),
        counts in proptest::collection::vec(0usize..3, 1..4),
    ) {
        let n_apps = ais.len().min(counts.len());
        let m = machine(nodes, cores, 32.0, 8.0);
        let sim_apps: Vec<SimApp> = ais[..n_apps]
            .iter()
            .enumerate()
            .map(|(i, &ai)| SimApp::numa_local(&format!("a{i}"), ai))
            .collect();
        let model_apps: Vec<AppSpec> = sim_apps.iter().map(|a| a.spec.clone()).collect();
        let mut per_app = counts[..n_apps].to_vec();
        // Clamp to capacity.
        while per_app.iter().sum::<usize>() > cores {
            let i = per_app.iter().position(|&c| c > 0).unwrap();
            per_app[i] -= 1;
        }
        let assignment = ThreadAssignment::uniform_per_node(&m, &per_app);
        let sim = Simulation::new(
            SimConfig::new(m.clone()).with_effects(EffectModel::ideal()),
        );
        let r = sim.run(&sim_apps, &assignment, 0.01).unwrap();
        let model = solve(&m, &model_apps, &assignment).unwrap();
        prop_assert!(
            (r.total_gflops() - model.total_gflops()).abs() < 1e-6,
            "sim {} vs model {}",
            r.total_gflops(),
            model.total_gflops()
        );
        for a in 0..n_apps {
            prop_assert!((r.app_gflops(a) - model.app_gflops(a)).abs() < 1e-6);
        }
    }

    /// Ideal simulator == analytic model with a NUMA-bad application in the
    /// mix (exercises the remote path).
    #[test]
    fn ideal_sim_matches_model_cross_node(
        cores in 1usize..7,
        ai_local in 0.05f64..8.0,
        ai_bad in 0.05f64..8.0,
        bad_node in 0usize..3,
        c1 in 0usize..3,
        c2 in 0usize..3,
    ) {
        let m = machine(3, cores, 32.0, 6.0);
        let sim_apps = vec![
            SimApp::numa_local("loc", ai_local),
            SimApp::numa_bad("bad", ai_bad, numa_topology::NodeId(bad_node)),
        ];
        let model_apps: Vec<AppSpec> = sim_apps.iter().map(|a| a.spec.clone()).collect();
        let mut per_app = vec![c1, c2];
        while per_app.iter().sum::<usize>() > cores {
            let i = per_app.iter().position(|&c| c > 0).unwrap();
            per_app[i] -= 1;
        }
        let assignment = ThreadAssignment::uniform_per_node(&m, &per_app);
        let sim = Simulation::new(
            SimConfig::new(m.clone()).with_effects(EffectModel::ideal()),
        );
        let r = sim.run(&sim_apps, &assignment, 0.01).unwrap();
        let model = solve(&m, &model_apps, &assignment).unwrap();
        prop_assert!(
            (r.total_gflops() - model.total_gflops()).abs() < 1e-6,
            "sim {} vs model {}",
            r.total_gflops(),
            model.total_gflops()
        );
    }

    /// With effects enabled, throughput never exceeds the ideal run
    /// (effects are pure losses, up to jitter which we disable here).
    #[test]
    fn effects_never_gain(
        cores in 1usize..7,
        ai in 0.05f64..8.0,
        count in 1usize..4,
    ) {
        let count = count.min(cores);
        let m = machine(2, cores, 32.0, 6.0);
        let apps = vec![SimApp::numa_bad("b", ai, numa_topology::NodeId(0))];
        let assignment = ThreadAssignment::uniform_per_node(&m, &[count]);
        let ideal = Simulation::new(
            SimConfig::new(m.clone()).with_effects(EffectModel::ideal()),
        )
        .run(&apps, &assignment, 0.01)
        .unwrap();
        let mut lossy_effects = EffectModel::skylake_like();
        lossy_effects.jitter = 0.0; // keep the comparison deterministic
        let lossy = Simulation::new(SimConfig::new(m.clone()).with_effects(lossy_effects))
            .run(&apps, &assignment, 0.01)
            .unwrap();
        prop_assert!(
            lossy.total_gflops() <= ideal.total_gflops() + 1e-9,
            "lossy {} > ideal {}",
            lossy.total_gflops(),
            ideal.total_gflops()
        );
    }

    /// Node bandwidth conservation holds in the simulator for any scenario:
    /// average served GB/s never exceeds nominal capacity.
    #[test]
    fn served_bandwidth_conserved(
        cores in 1usize..7,
        ai in 0.02f64..8.0,
        count in 1usize..4,
        seed in 0u64..100,
    ) {
        let count = count.min(cores);
        let m = machine(2, cores, 20.0, 5.0);
        let apps = vec![
            SimApp::numa_local("l", ai),
            SimApp::numa_bad("b", ai, numa_topology::NodeId(1)),
        ];
        let per = count.min(cores / 2).max(if cores >= 2 { 1 } else { 0 });
        if per == 0 || 2 * per > cores {
            return Ok(());
        }
        let assignment = ThreadAssignment::uniform_per_node(&m, &[per, per]);
        let r = Simulation::new(SimConfig::new(m.clone()).with_seed(seed))
            .run(&apps, &assignment, 0.02)
            .unwrap();
        for (n, &gbs) in r.node_avg_gbs.iter().enumerate() {
            let cap = m.node(numa_topology::NodeId(n)).bandwidth_gbs;
            // Jitter can push instantaneous demand slightly over; allow 2%.
            prop_assert!(gbs <= cap * 1.02, "node {n}: {gbs} > {cap}");
        }
    }
}
