//! Formatting and recording helpers shared by the experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Scenario label.
    pub label: String,
    /// Value the paper reports (None when the paper gives no number).
    pub paper: Option<f64>,
    /// Value this reproduction measured/computed.
    pub measured: f64,
}

impl Row {
    /// Creates a row with a paper reference value.
    pub fn with_paper(label: &str, paper: f64, measured: f64) -> Self {
        Row {
            label: label.to_string(),
            paper: Some(paper),
            measured,
        }
    }

    /// Creates a row without a paper reference.
    pub fn new(label: &str, measured: f64) -> Self {
        Row {
            label: label.to_string(),
            paper: None,
            measured,
        }
    }

    /// Relative deviation from the paper value, if any.
    pub fn deviation(&self) -> Option<f64> {
        self.paper.map(|p| (self.measured - p) / p)
    }
}

/// A titled block of comparison rows, printable and serializable.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table {
    /// Experiment title (e.g. "Table III").
    pub title: String,
    /// Unit of the values (e.g. "GFLOPS").
    pub unit: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, unit: &str) -> Self {
        Table {
            title: title.to_string(),
            unit: unit.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Largest absolute relative deviation across rows that have paper
    /// values.
    pub fn max_deviation(&self) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.deviation())
            .fold(0.0, |m, d| m.max(d.abs()))
    }

    /// Serializes to pretty JSON (for `EXPERIMENTS.md` regeneration).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialization cannot fail")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ({}) ==", self.title, self.unit)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        writeln!(
            f,
            "{:<label_w$}  {:>10}  {:>10}  {:>8}",
            "scenario", "paper", "measured", "dev"
        )?;
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "-".to_string());
            let dev = r
                .deviation()
                .map(|d| format!("{:+.1}%", d * 100.0))
                .unwrap_or_else(|| "-".to_string());
            writeln!(
                f,
                "{:<label_w$}  {:>10}  {:>10.2}  {:>8}",
                r.label, paper, r.measured, dev
            )?;
        }
        Ok(())
    }
}

/// Renders several tables with blank-line separators (used by `repro_all`).
pub fn render_all(tables: &[Table]) -> String {
    let mut out = String::new();
    for t in tables {
        let _ = writeln!(out, "{t}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_compute_deviation() {
        let r = Row::with_paper("x", 100.0, 95.0);
        assert!((r.deviation().unwrap() + 0.05).abs() < 1e-12);
        assert!(Row::new("y", 3.0).deviation().is_none());
    }

    #[test]
    fn table_display_includes_everything() {
        let mut t = Table::new("Table X", "GFLOPS");
        t.push(Row::with_paper("even", 140.0, 140.0));
        t.push(Row::new("extra", 99.5));
        let s = t.to_string();
        assert!(s.contains("Table X"));
        assert!(s.contains("even"));
        assert!(s.contains("140.00"));
        assert!(s.contains("+0.0%"));
        assert!(s.contains("99.50"));
        assert!((t.max_deviation() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrips_structurally() {
        let mut t = Table::new("T", "u");
        t.push(Row::with_paper("a", 1.0, 2.0));
        let json = t.to_json();
        assert!(json.contains("\"paper\": 1.0"));
        assert!(json.contains("\"measured\": 2.0"));
    }
}
