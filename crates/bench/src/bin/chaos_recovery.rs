//! E-chaos: survivor throughput with reclaimed vs idle cores when one
//! cooperating application dies mid-run (the supervision layer's payoff).
fn main() {
    println!("{}", coop_bench::experiments::chaos::run(0.1));
    println!("Each mix kills one app at half-time; the ratio compares survivor");
    println!("throughput when its cores are fair-shared among the survivors");
    println!("(the agent's reclamation path) against letting them idle.");
}
