//! E-dist: translating on-node speedup to overall distributed speedup (§V).
fn main() {
    println!("{}", coop_bench::experiments::dist::run(16, 6400, 42));
    println!("paper (§V): tight synchronization limits the benefit; loose");
    println!("synchronization translates most of the local speedup.");
}
