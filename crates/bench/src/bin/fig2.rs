//! Regenerates Figure 2: the three allocation scenarios of the worked
//! model example (uneven / even / node-per-application).
fn main() {
    println!("{}", coop_bench::experiments::table12::figure2());
}
