//! Regenerates Figure 3: the NUMA-bad application case where whole-node
//! allocation beats the even split (reversing the Figure 2 ranking).
fn main() {
    println!("{}", coop_bench::experiments::fig3::figure3());
    println!("note: machine bandwidths are the documented fit (DESIGN.md §2);");
    println!("the paper reports 138 and 150 GFLOPS for the first two rows.");
}
