//! E-library: the tight-integration "library application" scenario (§II).
use numa_topology::presets::dual_socket;

fn main() {
    println!(
        "{}",
        coop_bench::experiments::library::run(&dual_socket(), 1.0)
    );
    println!("'burst shifting' is what the agent's LibraryBurst policy produces:");
    println!("cores move to the library during its bursts and back afterwards.");
}
