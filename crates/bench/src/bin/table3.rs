//! Regenerates Table III: the full §III.B procedure — simulate the
//! benchmark on 'real' hardware (memsim), calibrate the model from the
//! even scenario, predict all five scenarios, compare.
//!
//! With `--residuals`, replays the even scenario as a stream of
//! predict/measure decision ticks instead (the model-drift observatory's
//! continuous version of the same comparison):
//! `cargo run -p coop-bench --bin table3 -- --residuals [duration_s [period_s]]`
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--residuals") {
        let nums: Vec<f64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        let duration = nums.first().copied().unwrap_or(0.2);
        let period = nums.get(1).copied().unwrap_or(0.02);
        let r = coop_bench::experiments::table3::run_residuals(duration, period);
        println!("Table III — continuous residual mode\n");
        println!(
            "calibrated parameters: {:.4} GFLOPS/thread, {:.1} GB/s per node",
            r.calibrated_peak, r.calibrated_bandwidth
        );
        println!("{r}");
        println!("{}", r.report.to_text());
        return;
    }
    let t = coop_bench::experiments::table3::run(0.2);
    println!("Table III — model vs (simulated) real hardware\n");
    println!("{t}");
    println!("\n{}", t.model_table());
    println!("{}", t.real_table());
}
