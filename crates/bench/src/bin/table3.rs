//! Regenerates Table III: the full §III.B procedure — simulate the
//! benchmark on 'real' hardware (memsim), calibrate the model from the
//! even scenario, predict all five scenarios, compare.
fn main() {
    let t = coop_bench::experiments::table3::run(0.2);
    println!("Table III — model vs (simulated) real hardware\n");
    println!("{t}");
    println!("\n{}", t.model_table());
    println!("{}", t.real_table());
}
