//! E-sublin: shifting cores away from a sub-linearly scaling application
//! (§II claim).
use numa_topology::presets::dual_socket;

fn main() {
    for alpha in [0.0, 0.1, 0.25, 0.5] {
        let r = coop_bench::experiments::sublinear::run(&dual_socket(), alpha, 0.05);
        println!("{}", r.table);
        println!(
            "searched allocation: sublinear app {} threads, linear app {} threads\n",
            r.sublinear_threads, r.linear_threads
        );
    }
}
