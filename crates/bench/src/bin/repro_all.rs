//! Runs every reproduction experiment in order (Tables I-III, Figures 1-3,
//! and the extension experiments from DESIGN.md).
use coop_bench::experiments::*;
use numa_topology::presets::{dual_socket, paper_model_machine, tiny};

fn main() {
    println!(
        "================ Table I ================\n{}",
        table12::table1()
    );
    println!(
        "================ Table II ===============\n{}",
        table12::table2()
    );
    println!(
        "================ Figure 2 ===============\n{}",
        table12::figure2()
    );
    println!(
        "================ Figure 3 ===============\n{}",
        fig3::figure3()
    );
    let t3 = table3::run(0.2);
    println!("================ Table III ==============\n{t3}");
    println!("{}", t3.model_table());
    println!("{}", t3.real_table());
    println!("=============== Figure 1 ================");
    println!("{}", fig1::run(&fig1::Fig1Config::new(tiny())));
    println!("=============== E-osched ================");
    let m = paper_model_machine();
    println!("{}", oversub::run(&m, 2, 10.0, 0.1));
    println!("=============== E-sublin ================");
    let r = sublinear::run(&dual_socket(), 0.25, 0.05);
    println!("{}", r.table);
    println!(
        "searched: sublinear {} threads, linear {} threads\n",
        r.sublinear_threads, r.linear_threads
    );
    println!("=============== E-library ===============");
    println!("{}", library::run(&dual_socket(), 1.0));
    println!("=============== E-dist ==================");
    println!("{}", dist::run(16, 6400, 42));
    println!("=============== E-e2e ===================");
    println!("{}", e2e::run(12, 0.1));
    println!("=============== E-chaos =================");
    println!("{}", chaos::run(0.1));
}
