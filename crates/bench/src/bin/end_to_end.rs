//! E-e2e: composed experiment — on-node model-guided allocation gains
//! (memsim) translated to cluster-level speedup (distsim).
fn main() {
    println!("{}", coop_bench::experiments::e2e::run(12, 0.1));
    println!("Per-node gains come from real allocation searches measured in the");
    println!("effectful simulator; the distributed layer then shows how much of the");
    println!("mean survives each synchronization/distribution regime (SV).");
}
