//! Regenerates Table II of the paper: the even (2,2,2,2) allocation,
//! every intermediate row.
fn main() {
    println!("Table II — even thread allocation (2,2,2,2)");
    println!("machine: 4 NUMA nodes x 8 cores, 10 GFLOPS/core, 32 GB/s/node\n");
    let trace = coop_bench::experiments::table12::table2();
    println!("{trace}");
    println!("paper bottom line: 35 GFLOPS/node, 140 GFLOPS total");
}
