//! Dumps per-application GFLOPS time series as CSV for external plotting —
//! e.g. the library-burst scenario's resource shifts over time.
//!
//! The simulation runs with a telemetry hub attached, so each row also
//! carries the per-node bandwidth utilization sampled by the memory
//! controllers, and the `switch_t_s` column marks the reallocation
//! (assignment-switch) timestamps that fell inside the sample window.
//!
//! Each row additionally carries model-drift columns: the analytic model's
//! predicted bandwidth for the node under the assignment active in the
//! sample window, the relative residual of the measured sample against it,
//! and whether the residual stream's CUSUM detector is alarming in this
//! window (`node<N>_pred_gbs`, `node<N>_residual`, `node<N>_alarm`).
//!
//! Usage: `cargo run -p coop-bench --bin timeline_csv > series.csv`

use coop_telemetry::{ArgValue, DriftDetector, EventKind, TelemetryHub};
use memsim::{ActivityPattern, EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::presets::dual_socket;
use roofline_numa::{solve, AppSpec, ThreadAssignment};
use std::sync::Arc;

fn main() {
    let machine = dual_socket();
    let hub = Arc::new(TelemetryHub::new());
    let sim = Simulation::new(
        SimConfig::new(machine.clone())
            .with_effects(EffectModel::ideal())
            .with_quantum(1e-3),
    )
    .with_telemetry(Arc::clone(&hub));
    let apps = vec![
        SimApp::numa_local("main", 8.0),
        SimApp::numa_local("library", 8.0).with_activity(ActivityPattern::Bursts {
            period_s: 0.2,
            duty: 0.3,
            phase_s: 0.0,
        }),
    ];
    // Burst-shifting schedule, like the library_burst experiment.
    let burst = ThreadAssignment::from_matrix(vec![vec![1, 1], vec![15, 15]]);
    let idle = ThreadAssignment::from_matrix(vec![vec![16, 16], vec![0, 0]]);
    let mut schedule = Vec::new();
    let mut t = 0.0;
    while t < 1.0 {
        schedule.push((t, burst.clone()));
        schedule.push((t + 0.06, idle.clone()));
        t += 0.2;
    }
    let r = sim.run_dynamic(&apps, &schedule, 1.0).unwrap();

    // Pull the per-node bandwidth samples and reallocation timestamps back
    // off the hub. Bandwidth counters arrive one per node per sample
    // window, in time order, so grouping by lane aligns them with the
    // GFLOPS series.
    let num_nodes = machine.num_nodes();
    let mut node_util: Vec<Vec<f64>> = vec![Vec::new(); num_nodes];
    let mut node_gbs: Vec<Vec<f64>> = vec![Vec::new(); num_nodes];
    let mut switches: Vec<f64> = Vec::new();
    for e in hub.events() {
        match &e.kind {
            EventKind::Counter { value } if e.cat == "bandwidth" => {
                if let Some((_, ArgValue::F64(u))) = e.args.iter().find(|(k, _)| k == "utilization")
                {
                    node_util[(e.lane - 1) as usize].push(*u);
                    node_gbs[(e.lane - 1) as usize].push(*value);
                }
            }
            EventKind::Instant if e.cat == "scheduler" => {
                if let Some((_, ArgValue::F64(t))) = e.args.iter().find(|(k, _)| k == "t_s") {
                    switches.push(*t);
                }
            }
            _ => {}
        }
    }

    // Model predictions per schedule segment: the node bandwidth the
    // roofline model expects under each assignment. The activity pattern
    // is invisible to the model (it predicts the library app computing at
    // full duty), which is exactly what makes the residual stream
    // interesting: it goes negative whenever the library is idle.
    let specs: Vec<AppSpec> = apps.iter().map(|a| a.spec.clone()).collect();
    let predicted: Vec<Vec<f64>> = schedule
        .iter()
        .map(|(_, a)| {
            solve(&machine, &specs, a)
                .map(|rep| rep.node_bandwidths_gbs())
                .unwrap_or_else(|_| vec![0.0; num_nodes])
        })
        .collect();
    let segment_at = |t: f64| -> usize {
        match schedule.iter().rposition(|(start, _)| *start <= t) {
            Some(i) => i,
            None => 0,
        }
    };
    let detector = DriftDetector::default();

    let mut header = String::from("time_s,main_gflops,library_gflops");
    for n in 0..num_nodes {
        header.push_str(&format!(",node{n}_util"));
    }
    for n in 0..num_nodes {
        header.push_str(&format!(",node{n}_pred_gbs,node{n}_residual,node{n}_alarm"));
    }
    header.push_str(",switch_t_s");
    println!("{header}");

    let mut prev = 0.0f64;
    for i in 0..r.apps[0].times_s.len() {
        let time = r.apps[0].times_s[i];
        let mut row = format!(
            "{:.4},{:.2},{:.2}",
            time, r.apps[0].gflops_series[i], r.apps[1].gflops_series[i]
        );
        for util in &node_util {
            row.push_str(&format!(",{:.4}", util.get(i).copied().unwrap_or(0.0)));
        }
        let seg = segment_at(time);
        for n in 0..num_nodes {
            let pred = predicted[seg][n];
            let meas = node_gbs[n].get(i).copied().unwrap_or(0.0);
            let residual = DriftDetector::relative_residual(pred, meas);
            let alarm = detector
                .observe(&format!("node/{n}/bandwidth_gbs"), residual)
                .is_some();
            row.push_str(&format!(
                ",{:.3},{:.4},{}",
                pred,
                residual,
                if alarm { 1 } else { 0 }
            ));
        }
        // Reallocation decisions that landed inside this sample window.
        let in_window: Vec<String> = switches
            .iter()
            .filter(|&&s| s > prev && s <= time)
            .map(|s| format!("{s:.4}"))
            .collect();
        row.push(',');
        row.push_str(&in_window.join(";"));
        println!("{row}");
        prev = time;
    }
}
