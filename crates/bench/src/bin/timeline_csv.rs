//! Dumps per-application GFLOPS time series as CSV for external plotting —
//! e.g. the library-burst scenario's resource shifts over time.
//!
//! Usage: `cargo run -p coop-bench --bin timeline_csv > series.csv`

use memsim::{ActivityPattern, EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::presets::dual_socket;
use roofline_numa::ThreadAssignment;

fn main() {
    let machine = dual_socket();
    let sim = Simulation::new(
        SimConfig::new(machine.clone())
            .with_effects(EffectModel::ideal())
            .with_quantum(1e-3),
    );
    let apps = vec![
        SimApp::numa_local("main", 8.0),
        SimApp::numa_local("library", 8.0).with_activity(ActivityPattern::Bursts {
            period_s: 0.2,
            duty: 0.3,
            phase_s: 0.0,
        }),
    ];
    // Burst-shifting schedule, like the library_burst experiment.
    let burst = ThreadAssignment::from_matrix(vec![vec![1, 1], vec![15, 15]]);
    let idle = ThreadAssignment::from_matrix(vec![vec![16, 16], vec![0, 0]]);
    let mut schedule = Vec::new();
    let mut t = 0.0;
    while t < 1.0 {
        schedule.push((t, burst.clone()));
        schedule.push((t + 0.06, idle.clone()));
        t += 0.2;
    }
    let r = sim.run_dynamic(&apps, &schedule, 1.0).unwrap();

    println!("time_s,main_gflops,library_gflops");
    for i in 0..r.apps[0].times_s.len() {
        println!(
            "{:.4},{:.2},{:.2}",
            r.apps[0].times_s[i], r.apps[0].gflops_series[i], r.apps[1].gflops_series[i]
        );
    }
}
