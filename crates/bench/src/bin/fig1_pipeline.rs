//! Regenerates the Figure 1 experiment: producer-consumer pipeline with
//! and without the coordinating agent (SBAC-PAD'18 scenario).
use coop_bench::experiments::fig1;
use numa_topology::presets::tiny;

fn main() {
    let config = fig1::Fig1Config::new(tiny());
    let result = fig1::run(&config);
    println!("Figure 1 — agent-coordinated producer-consumer pipeline");
    println!("(two runtimes on a 2x2 machine; consumer tasks 3x heavier)\n");
    println!("{result}");
    println!("paper: marginal throughput change, clear reduction in");
    println!("intermediate data (the producer stays only a few iterations ahead).");
}
