//! Regenerates Table I of the paper: the uneven (1,1,1,5) allocation,
//! every intermediate row.
fn main() {
    println!("Table I — uneven thread allocation (1,1,1,5)");
    println!("machine: 4 NUMA nodes x 8 cores, 10 GFLOPS/core, 32 GB/s/node\n");
    let trace = coop_bench::experiments::table12::table1();
    println!("{trace}");
    println!("paper bottom line: 63.5 GFLOPS/node, 254 GFLOPS total");
}
