//! E-osched: over-subscription vs coordinated fair share (§II claim:
//! the win is only a few percent).
use numa_topology::presets::paper_model_machine;

fn main() {
    let m = paper_model_machine();
    for (apps, ai) in [(2usize, 10.0), (4, 10.0), (2, 0.5)] {
        println!(
            "{}",
            coop_bench::experiments::oversub::run(&m, apps, ai, 0.1)
        );
    }
}
