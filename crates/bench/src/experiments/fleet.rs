//! E-fleet: the fleet-scale scenario sweep behind `BENCH_fleet.json`.
//!
//! Three scenario families, each at fleet scale (hundreds to thousands of
//! tenant runtimes over 8–256 NUMA nodes), run on both execution engines:
//!
//! * **churn** — tenants arrive and depart in cohorts: 10% of the fleet is
//!   only active inside a cohort-aligned [`memsim::ActivityPattern::Window`],
//!   the rest always on.
//! * **diurnal** — every tenant follows a duty cycle
//!   ([`memsim::ActivityPattern::Bursts`]) drawn from 16 phase groups, so
//!   load swings like a day/night curve and edges coincide within a group.
//! * **outages** — correlated failures: contiguous 10% blocks of the fleet
//!   die and revive together in waves (a [`memsim::ChaosPlan`] with
//!   reclamation on).
//!
//! Every cell measures the slice engine (with and without arbitration
//! scratch reuse — the honest before/after column for the
//! allocation-hoisting work), the event engine, the slice-vs-event speedup
//! and events/sec, and cross-checks that both engines bank the same work
//! (ideal effects, so the comparison is exact up to float accumulation).

use memsim::{
    run_chaos_scenario_on, run_chaos_scenario_threaded, ActivityPattern, AppOutage, ChaosPlan,
    EffectModel, EngineKind, Scenario, SimApp, SimConfig, Simulation,
};
use numa_topology::{Machine, MachineBuilder};
use roofline_numa::ThreadAssignment;
use serde::Serialize;
use std::time::Instant;

/// The slice engine's quantum; every scenario edge below is snapped onto
/// this grid so the two engines agree exactly (see docs/performance.md).
const QUANTUM_S: f64 = 1e-3;

/// Snaps a time onto the quantum grid in the exact float form
/// (`k as f64 * QUANTUM_S`) the slice engine computes its step times in,
/// so a snapped schedule edge compares bitwise-equal to its quantum start
/// and both engines switch assignments at the same instant. (A decimal
/// like `4.0 * 0.3` can land one float ulp above the grid point, which
/// would make the per-quantum schedule scan apply it a full quantum late.)
fn snap(t_s: f64) -> f64 {
    (t_s / QUANTUM_S).round() * QUANTUM_S
}

/// One point of the sweep: how many tenant runtimes over how many nodes,
/// simulated for how long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetScale {
    /// Number of tenant runtimes (one simulated thread each).
    pub runtimes: usize,
    /// Number of NUMA nodes in the fleet machine.
    pub nodes: usize,
    /// Simulated duration, seconds.
    pub duration_s: f64,
}

impl FleetScale {
    /// The default duration for a scale: 4 simulated seconds, shortened to
    /// 1 for the 5k-runtime cell (the slice engine's cost per quantum grows
    /// with `runtimes × nodes`).
    pub fn with_default_duration(runtimes: usize, nodes: usize) -> Self {
        FleetScale {
            runtimes,
            nodes,
            duration_s: if runtimes >= 5000 { 1.0 } else { 4.0 },
        }
    }
}

/// The scenario families of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetScenario {
    /// Tenant churn: cohort-aligned arrival/departure windows.
    Churn,
    /// Diurnal load: phase-grouped duty cycles.
    Diurnal,
    /// Correlated outages: contiguous blocks dying and reviving in waves.
    Outages,
}

impl FleetScenario {
    /// All families, sweep order.
    pub fn all() -> [FleetScenario; 3] {
        [
            FleetScenario::Churn,
            FleetScenario::Diurnal,
            FleetScenario::Outages,
        ]
    }

    /// Stable lowercase name (JSON column / env-var spelling).
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetScenario::Churn => "churn",
            FleetScenario::Diurnal => "diurnal",
            FleetScenario::Outages => "outages",
        }
    }

    /// Parses the lowercase spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "churn" => Some(FleetScenario::Churn),
            "diurnal" => Some(FleetScenario::Diurnal),
            "outages" => Some(FleetScenario::Outages),
            _ => None,
        }
    }
}

/// One measured cell of the sweep (a row of `BENCH_fleet.json`).
#[derive(Debug, Clone, Serialize)]
pub struct FleetCell {
    /// Scenario family name.
    pub scenario: String,
    /// Tenant runtimes simulated.
    pub runtimes: usize,
    /// NUMA nodes simulated.
    pub nodes: usize,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Slice-engine wall time, milliseconds (scratch reuse on).
    pub slice_ms: f64,
    /// Slice-engine wall time with per-quantum scratch reallocation (the
    /// pre-hoisting behaviour); `None` where it was not measured.
    pub slice_noreuse_ms: Option<f64>,
    /// Event-engine wall time, milliseconds.
    pub event_ms: f64,
    /// Event-engine wall time with per-segment scratch reallocation (the
    /// pre-hoisting behaviour); `None` where it was not measured.
    pub event_noreuse_ms: Option<f64>,
    /// `slice_ms / event_ms`.
    pub speedup: f64,
    /// Parallel event engine at 2 worker shards, milliseconds; `None` when
    /// skipped by the sim-threads cap.
    pub par2_ms: Option<f64>,
    /// Parallel event engine at 8 worker shards, milliseconds; `None` when
    /// skipped by the sim-threads cap.
    pub par8_ms: Option<f64>,
    /// `event_ms / par2_ms` — parallel speedup over the sequential event
    /// engine at 2 shards.
    pub par2_speedup: Option<f64>,
    /// `event_ms / par8_ms` — parallel speedup at 8 shards.
    pub par8_speedup: Option<f64>,
    /// Events per wall-clock second at 2 shards.
    pub par2_events_per_sec: Option<f64>,
    /// Events per wall-clock second at 8 shards.
    pub par8_events_per_sec: Option<f64>,
    /// Max relative difference in banked GFLOP between the parallel runs
    /// and the sequential event run. Exactly 0.0 when bit-identical (the
    /// engine's contract); `None` when no parallel run was measured.
    pub par_gflops_rel_err: Option<f64>,
    /// Discrete events the event engine processed (activity/assignment
    /// edges; for outage cells, the number of schedule segments).
    pub events: usize,
    /// Constant-rate segments the event engine integrated (its arbitration
    /// count; the slice engine arbitrates `duration / quantum` times).
    pub segments: u64,
    /// Events processed per wall-clock second of the event-engine run.
    pub events_per_sec: f64,
    /// Relative difference in total banked GFLOP between the engines.
    pub gflops_rel_err: f64,
}

/// The symmetric fleet machine for a sweep point: enough cores per node to
/// host the tenant population without over-subscription.
pub fn fleet_machine(nodes: usize, cores_per_node: usize) -> Machine {
    MachineBuilder::new()
        .name(&format!("fleet-{nodes}n"))
        .symmetric_nodes(nodes, cores_per_node)
        .core_peak_gflops(12.8)
        .node_bandwidth_gbs(80.0)
        .uniform_link_gbs(12.0)
        .build()
        .expect("fleet machine parameters are well-formed")
}

/// The tenant population for one scenario family. Alternates memory-bound
/// and compute-bound tenants; the family decides the activity patterns.
pub fn tenants(scenario: FleetScenario, runtimes: usize, duration_s: f64) -> Vec<SimApp> {
    // Cohort grid for churn windows: tenants arrive/depart in deploy
    // waves, so the distinct edge count stays bounded as the fleet grows.
    const COHORT_SLOTS: usize = 32;
    (0..runtimes)
        .map(|i| {
            let ai = if i % 2 == 0 { 1.0 / 32.0 } else { 1.0 };
            let app = SimApp::numa_local(&format!("t{i}"), ai);
            match scenario {
                FleetScenario::Churn => {
                    if i % 10 == 0 {
                        let slot = (i / 10) % (COHORT_SLOTS - 4);
                        let start_s =
                            snap(duration_s * (slot as f64 + 1.0) / COHORT_SLOTS as f64);
                        let end_s =
                            snap(duration_s * (slot as f64 + 4.0) / COHORT_SLOTS as f64);
                        app.with_activity(ActivityPattern::Window { start_s, end_s })
                    } else {
                        app
                    }
                }
                FleetScenario::Diurnal => {
                    // The default durations (4s / 1s) snap the period to an
                    // even quantum count, so the duty edges at half-period
                    // offsets stay on the grid too.
                    let period_s = snap(duration_s / 4.0);
                    let phase_s = snap(period_s * ((i % 16) as f64 / 16.0));
                    app.with_activity(ActivityPattern::Bursts {
                        period_s,
                        duty: 0.5,
                        phase_s,
                    })
                }
                FleetScenario::Outages => app,
            }
        })
        .collect()
}

/// One thread per tenant, striped across the nodes.
pub fn fleet_matrix(runtimes: usize, nodes: usize) -> Vec<Vec<usize>> {
    let mut matrix = vec![vec![0usize; nodes]; runtimes];
    for (i, row) in matrix.iter_mut().enumerate() {
        row[i % nodes] = 1;
    }
    matrix
}

/// The correlated-outage plan: four waves, each killing a contiguous 10%
/// block of the fleet for a tenth of the run.
pub fn outage_plan(runtimes: usize, duration_s: f64) -> ChaosPlan {
    let block = (runtimes / 10).max(1);
    let mut outages = Vec::new();
    for wave in 0..4usize {
        let down_at_s = snap(duration_s * (0.1 + 0.2 * wave as f64));
        let up_at_s = snap(down_at_s + duration_s * 0.1);
        let lo = (wave * block) % runtimes;
        for app in lo..(lo + block).min(runtimes) {
            outages.push(AppOutage {
                app,
                down_at_s,
                up_at_s: Some(up_at_s),
            });
        }
    }
    ChaosPlan { outages, reclaim: true }
}

/// Best-of-`repeats` wall time for one closure, in seconds.
fn time_best<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one repeat"))
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1.0)
}

/// The parallel shard counts a cell measures (subject to the cap).
pub const PAR_THREADS: [usize; 2] = [2, 8];

/// Runs one cell: times the slice engine (optionally also without scratch
/// reuse), the event engine (sequential, no-reuse, and parallel at the
/// [`PAR_THREADS`] shard counts up to `sim_threads_cap`), and cross-checks
/// the banked work. Pass `sim_threads_cap = 1` to skip the parallel runs
/// entirely (e.g. on single-core runners, where the extra wall time buys
/// no information).
pub fn run_cell(
    scenario: FleetScenario,
    scale: &FleetScale,
    measure_noreuse: bool,
    repeats: usize,
    sim_threads_cap: usize,
) -> FleetCell {
    let cores_per_node = scale.runtimes.div_ceil(scale.nodes) + 2;
    let machine = fleet_machine(scale.nodes, cores_per_node);
    let apps = tenants(scenario, scale.runtimes, scale.duration_s);
    let matrix = fleet_matrix(scale.runtimes, scale.nodes);

    let config = |engine: EngineKind, reuse: bool| {
        SimConfig::new(machine.clone())
            .with_effects(EffectModel::ideal())
            .with_seed(42)
            .with_engine(engine)
            .with_scratch_reuse(reuse)
    };

    type ParRuns = [Option<(f64, f64)>; 2];
    #[allow(clippy::type_complexity)]
    let (slice_s, slice_noreuse_s, event_s, event_noreuse_s, par, events, segments, slice_gflops, event_gflops): (f64, Option<f64>, f64, Option<f64>, ParRuns, usize, u64, f64, f64) =
        if scenario == FleetScenario::Outages {
            let scn = Scenario {
                name: format!("fleet-outages-{}x{}", scale.runtimes, scale.nodes),
                machine: machine.clone(),
                apps: apps.clone(),
                assignments: vec![memsim::NamedAssignment {
                    name: "striped".into(),
                    threads: matrix.clone(),
                }],
                duration_s: scale.duration_s,
                effects: EffectModel::ideal(),
                seed: 42,
            };
            let plan = outage_plan(scale.runtimes, scale.duration_s);
            let (slice_s, slice_r) = time_best(repeats, || {
                run_chaos_scenario_on(&scn, &plan, None, EngineKind::Slice)
                    .expect("fleet outage scenario runs on the slice engine")
            });
            let (event_s, event_r) = time_best(repeats, || {
                run_chaos_scenario_on(&scn, &plan, None, EngineKind::Event)
                    .expect("fleet outage scenario runs on the event engine")
            });
            let par = PAR_THREADS.map(|threads| {
                (threads <= sim_threads_cap).then(|| {
                    let (s, r) = time_best(repeats, || {
                        run_chaos_scenario_threaded(&scn, &plan, None, EngineKind::Event, threads)
                            .expect("fleet outage scenario runs on the parallel event engine")
                    });
                    (s, r.result.total_gflops())
                })
            });
            let edges = slice_r.segments.len();
            (
                slice_s,
                None,
                event_s,
                None,
                par,
                edges,
                edges as u64,
                slice_r.result.total_gflops(),
                event_r.result.total_gflops(),
            )
        } else {
            let schedule = [(0.0, ThreadAssignment::from_matrix(matrix.clone()))];
            let (slice_s, slice_r) = time_best(repeats, || {
                Simulation::new(config(EngineKind::Slice, true))
                    .run_dynamic(&apps, &schedule, scale.duration_s)
                    .expect("fleet scenario runs on the slice engine")
            });
            let slice_noreuse_s = measure_noreuse.then(|| {
                time_best(repeats, || {
                    Simulation::new(config(EngineKind::Slice, false))
                        .run_dynamic(&apps, &schedule, scale.duration_s)
                        .expect("fleet scenario runs without scratch reuse")
                })
                .0
            });
            let (event_s, (event_r, log)) = time_best(repeats, || {
                Simulation::new(config(EngineKind::Event, true))
                    .run_logged(&apps, &schedule, scale.duration_s)
                    .expect("fleet scenario runs on the event engine")
            });
            let event_noreuse_s = measure_noreuse.then(|| {
                time_best(repeats, || {
                    Simulation::new(config(EngineKind::Event, false))
                        .run_logged(&apps, &schedule, scale.duration_s)
                        .expect("fleet scenario runs without event scratch reuse")
                })
                .0
            });
            let par = PAR_THREADS.map(|threads| {
                (threads <= sim_threads_cap).then(|| {
                    let (s, (r, _log)) = time_best(repeats, || {
                        Simulation::new(config(EngineKind::Event, true).with_sim_threads(threads))
                            .run_logged(&apps, &schedule, scale.duration_s)
                            .expect("fleet scenario runs on the parallel event engine")
                    });
                    (s, r.total_gflops())
                })
            });
            (
                slice_s,
                slice_noreuse_s,
                event_s,
                event_noreuse_s,
                par,
                log.len(),
                log.segments,
                slice_r.total_gflops(),
                event_r.total_gflops(),
            )
        };

    let par_gflops_rel_err = par
        .iter()
        .flatten()
        .map(|&(_, g)| rel_err(event_gflops, g))
        .fold(None, |m: Option<f64>, e| Some(m.map_or(e, |m| m.max(e))));
    FleetCell {
        scenario: scenario.as_str().to_string(),
        runtimes: scale.runtimes,
        nodes: scale.nodes,
        duration_s: scale.duration_s,
        slice_ms: slice_s * 1e3,
        slice_noreuse_ms: slice_noreuse_s.map(|s| s * 1e3),
        event_ms: event_s * 1e3,
        event_noreuse_ms: event_noreuse_s.map(|s| s * 1e3),
        speedup: slice_s / event_s,
        par2_ms: par[0].map(|(s, _)| s * 1e3),
        par8_ms: par[1].map(|(s, _)| s * 1e3),
        par2_speedup: par[0].map(|(s, _)| event_s / s),
        par8_speedup: par[1].map(|(s, _)| event_s / s),
        par2_events_per_sec: par[0].map(|(s, _)| events as f64 / s),
        par8_events_per_sec: par[1].map(|(s, _)| events as f64 / s),
        par_gflops_rel_err,
        events,
        segments,
        events_per_sec: events as f64 / event_s,
        gflops_rel_err: rel_err(slice_gflops, event_gflops),
    }
}

/// The sweep's scales: `FLEET_SCALES` (e.g. `100x8,1000x64`) if set,
/// otherwise 100×8 and 1k×64 — plus 5k×256 outside smoke mode.
pub fn scales_from_env(smoke: bool) -> Vec<FleetScale> {
    if let Ok(spec) = std::env::var("FLEET_SCALES") {
        let parsed: Vec<FleetScale> = spec
            .split(',')
            .filter_map(|cell| {
                let (r, n) = cell.trim().split_once('x')?;
                Some(FleetScale::with_default_duration(
                    r.trim().parse().ok()?,
                    n.trim().parse().ok()?,
                ))
            })
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
        eprintln!("FLEET_SCALES={spec:?} did not parse; using defaults");
    }
    let mut scales = vec![
        FleetScale::with_default_duration(100, 8),
        FleetScale::with_default_duration(1000, 64),
    ];
    if !smoke {
        scales.push(FleetScale::with_default_duration(5000, 256));
    }
    scales
}

/// The sweep's scenario families: `FLEET_SCENARIOS` (e.g. `churn,diurnal`)
/// if set, otherwise all three.
pub fn scenarios_from_env() -> Vec<FleetScenario> {
    if let Ok(spec) = std::env::var("FLEET_SCENARIOS") {
        let parsed: Vec<FleetScenario> =
            spec.split(',').filter_map(FleetScenario::parse).collect();
        if !parsed.is_empty() {
            return parsed;
        }
        eprintln!("FLEET_SCENARIOS={spec:?} did not parse; using defaults");
    }
    FleetScenario::all().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> FleetScale {
        FleetScale {
            runtimes: 40,
            nodes: 4,
            duration_s: 1.0,
        }
    }

    #[test]
    fn engines_agree_on_every_scenario_family() {
        for scenario in FleetScenario::all() {
            let cell = run_cell(scenario, &tiny_scale(), true, 1, 1);
            assert!(
                cell.gflops_rel_err < 1e-6,
                "{}: engines disagree by {}",
                cell.scenario,
                cell.gflops_rel_err
            );
            assert!(cell.events > 0, "{}: no events", cell.scenario);
            // The event engine arbitrates far fewer times than the slice
            // engine's 1000 quanta (that asymmetry is the whole point).
            assert!(
                cell.segments < 500,
                "{}: {} segments for 1000 quanta",
                cell.scenario,
                cell.segments
            );
            assert!(cell.slice_noreuse_ms.is_some() || scenario == FleetScenario::Outages);
            assert!(cell.event_noreuse_ms.is_some() || scenario == FleetScenario::Outages);
            // Cap 1: no parallel cells measured, and the cell says so.
            assert!(cell.par2_ms.is_none() && cell.par8_ms.is_none());
            assert!(cell.par_gflops_rel_err.is_none());
        }
    }

    #[test]
    fn parallel_event_runs_bank_bit_identical_work() {
        for scenario in FleetScenario::all() {
            let cell = run_cell(scenario, &tiny_scale(), false, 1, 8);
            assert!(
                cell.par2_ms.is_some() && cell.par8_ms.is_some(),
                "{}: parallel cells must be measured under cap 8",
                cell.scenario
            );
            // Conservative sync is deterministic: the parallel engine banks
            // exactly the sequential engine's floats, not approximations.
            assert_eq!(
                cell.par_gflops_rel_err,
                Some(0.0),
                "{}: parallel engine diverged",
                cell.scenario
            );
        }
    }

    #[test]
    fn churn_edges_stay_cohort_bounded() {
        // Distinct churn edges must not grow with fleet size: cohorts cap
        // them at 2 × (COHORT_SLOTS - 4).
        let small = run_cell(FleetScenario::Churn, &tiny_scale(), false, 1, 1);
        let bigger = run_cell(
            FleetScenario::Churn,
            &FleetScale {
                runtimes: 400,
                nodes: 8,
                duration_s: 1.0,
            },
            false,
            1,
            1,
        );
        assert!(bigger.segments <= small.segments + 60);
    }

    #[test]
    fn env_parsers_round_trip() {
        for s in FleetScenario::all() {
            assert_eq!(FleetScenario::parse(s.as_str()), Some(s));
        }
        assert_eq!(FleetScenario::parse("nope"), None);
        let scale = FleetScale::with_default_duration(5000, 256);
        assert_eq!(scale.duration_s, 1.0);
        assert_eq!(FleetScale::with_default_duration(100, 8).duration_s, 4.0);
    }

    #[test]
    fn outage_plan_covers_four_waves() {
        let plan = outage_plan(100, 4.0);
        assert_eq!(plan.outages.len(), 40);
        assert!(plan.reclaim);
        let mut downs: Vec<f64> = plan.outages.iter().map(|o| o.down_at_s).collect();
        downs.dedup();
        assert_eq!(downs.len(), 4);
        for o in &plan.outages {
            assert!(o.up_at_s.unwrap() < 4.0);
        }
    }
}
