//! E-dist: §V — translating on-node speedup into overall speedup.
//!
//! A 16-node cluster where the on-node coordination layer achieved a mix
//! of local speedups (some nodes benefit a lot, some not at all — the
//! realistic outcome of co-allocating different application mixes per
//! node). The experiment sweeps the four combinations of synchronization
//! (tight barrier per iteration vs loose task bag) and work distribution
//! (static partition vs dynamic pool) and reports how much of the mean
//! local speedup survives.

use crate::report::{Row, Table};
use distsim::{simulate, Cluster, Distribution, Synchronization, Workload};

/// The heterogeneous local-speedup vector used by the experiment: mean
/// 1.15, but uneven — exactly the "more aggressive strategies" regime the
/// paper warns needs dynamic redistribution.
pub fn speedup_vector(ranks: usize) -> Vec<f64> {
    (0..ranks)
        .map(|i| match i % 4 {
            0 => 1.40,
            1 => 1.20,
            2 => 1.00,
            _ => 1.00,
        })
        .collect()
}

/// Runs the sweep and returns the summary table.
pub fn run(ranks: usize, units: usize, seed: u64) -> Table {
    let cluster = Cluster::uniform(ranks, 1.0).with_speedups(&speedup_vector(ranks));
    let mean = cluster.mean_speedup();

    let mut t = Table::new(
        &format!("Distributed translation on {ranks} ranks (mean local speedup {mean:.3})"),
        "overall speedup",
    );
    for (sync, sync_label) in [
        (Synchronization::Tight, "tight (barrier/iter)"),
        (Synchronization::Loose, "loose (task bag)"),
    ] {
        for (dist, dist_label) in [
            (Distribution::Static, "static"),
            (Distribution::Dynamic, "dynamic"),
        ] {
            let w = Workload::new(units, 1.0)
                .iterations(20)
                .sync(sync)
                .distribution(dist)
                .unit_variability(0.2);
            let r = simulate(&cluster, &w, seed);
            t.push(Row::new(
                &format!("{sync_label} + {dist_label}"),
                r.speedup_vs_uniform,
            ));
        }
    }
    t.push(Row::new("mean local speedup (upper bound)", mean));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loose_dynamic_translates_best_and_tight_static_worst() {
        let t = run(16, 6400, 42);
        let find = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label.starts_with(label))
                .unwrap()
                .measured
        };
        let tight_static = find("tight (barrier/iter) + static");
        let loose_dynamic = find("loose (task bag) + dynamic");
        let mean = find("mean local speedup");

        assert!(
            loose_dynamic > tight_static,
            "{loose_dynamic} vs {tight_static}"
        );
        // Loose+dynamic captures most of the available speedup...
        assert!(
            loose_dynamic > 1.0 + 0.7 * (mean - 1.0),
            "loose+dynamic {loose_dynamic}, mean {mean}"
        );
        // ...while tight+static is bounded by the *slowest* node (speedup
        // 1.0 in the vector), so it translates almost nothing.
        assert!(
            tight_static < 1.0 + 0.3 * (mean - 1.0),
            "tight+static should translate little: {tight_static}"
        );
        // Nothing exceeds the mean local speedup by more than scheduling
        // noise.
        for r in &t.rows {
            assert!(r.measured <= mean * 1.05, "{}: {}", r.label, r.measured);
        }
    }
}
