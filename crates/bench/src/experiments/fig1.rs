//! Figure 1: the agent-coordinated producer-consumer pipeline.
//!
//! Reproduces the SBAC-PAD'18 experiment the paper builds on: two
//! task-based runtimes run a producer-consumer pipeline; a dedicated agent
//! polls their counters and throttles the producer's thread count so it
//! stays only a few iterations ahead. The paper's findings, which this
//! experiment regenerates:
//!
//! * throughput changes only marginally (a few percent either way —
//!   "in most cases, the Linux operating system can do a very good job"),
//! * but the intermediate-data footprint (queue depth) drops sharply —
//!   "we have observed a clear benefit on storage thanks to the reduced
//!   size of intermediate data".

use coop_agent::{policies::ProducerConsumerThrottle, Agent};
use coop_runtime::{Runtime, RuntimeConfig};
use coop_workloads::pipeline::{run_pipeline, PipelineConfig, PipelineReport};
use numa_topology::Machine;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of the controlled-vs-uncontrolled comparison.
#[derive(Debug)]
pub struct Fig1Result {
    /// Pipeline without any agent (producer free-runs).
    pub uncontrolled: PipelineReport,
    /// Pipeline with the agent throttling the producer.
    pub controlled: PipelineReport,
    /// Commands the agent issued.
    pub agent_decisions: usize,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Machine both runtimes believe they run on.
    pub machine: Machine,
    /// Pipeline shape.
    pub pipeline: PipelineConfig,
    /// Queue-depth watermarks for the throttle policy.
    pub low_watermark: u64,
    /// Upper watermark (the "small number of iterations" the producer may
    /// lead by).
    pub high_watermark: u64,
    /// Agent tick interval.
    pub tick: Duration,
}

impl Fig1Config {
    /// Defaults sized so the experiment runs in about a second.
    pub fn new(machine: Machine) -> Self {
        Fig1Config {
            machine,
            pipeline: PipelineConfig {
                iterations: 60,
                tasks_per_iteration: 6,
                work_per_task: 150_000,
                item_bytes: 1 << 16,
                // Consumer tasks are 3x heavier: the producer runs ahead
                // unless something throttles it.
                consumer_work_factor: 3.0,
                sample_interval: Duration::from_micros(300),
            },
            low_watermark: 1,
            high_watermark: 2,
            tick: Duration::from_micros(500),
        }
    }
}

fn run_once(config: &Fig1Config, with_agent: bool) -> (PipelineReport, usize) {
    let producer = Arc::new(
        Runtime::start(RuntimeConfig::new("producer", config.machine.clone()))
            .expect("runtime starts"),
    );
    let consumer = Arc::new(
        Runtime::start(RuntimeConfig::new("consumer", config.machine.clone()))
            .expect("runtime starts"),
    );

    let agent_handle = with_agent.then(|| {
        let mut agent = Agent::new(Box::new(ProducerConsumerThrottle::new(
            0,
            1,
            config.low_watermark,
            config.high_watermark,
            1,
            config.machine.total_cores(),
        )));
        agent.manage(Box::new(Arc::clone(&producer)));
        agent.manage(Box::new(Arc::clone(&consumer)));
        agent.spawn(config.tick).expect("agent thread starts")
    });

    let report = run_pipeline(&producer, &consumer, &config.pipeline);
    let decisions = agent_handle.map(|h| h.stop().decisions.len()).unwrap_or(0);
    producer.shutdown();
    consumer.shutdown();
    (report, decisions)
}

/// Runs the comparison: uncontrolled, then agent-controlled.
pub fn run(config: &Fig1Config) -> Fig1Result {
    let (uncontrolled, _) = run_once(config, false);
    let (controlled, agent_decisions) = run_once(config, true);
    Fig1Result {
        uncontrolled,
        controlled,
        agent_decisions,
    }
}

impl std::fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<14} {:>10} {:>10} {:>10} {:>12} {:>14}",
            "variant", "items", "items/s", "max lead", "mean lead", "peak interm."
        )?;
        for (label, r) in [
            ("uncontrolled", &self.uncontrolled),
            ("agent", &self.controlled),
        ] {
            writeln!(
                f,
                "{:<14} {:>10} {:>10.1} {:>10} {:>12.2} {:>12} KiB",
                label,
                r.consumed,
                r.throughput,
                r.max_lead,
                r.mean_lead,
                r.peak_intermediate_bytes / 1024
            )?;
        }
        writeln!(f, "agent decisions: {}", self.agent_decisions)?;
        writeln!(
            f,
            "throughput ratio (agent/uncontrolled): {:.3}  |  mean-lead ratio: {:.3}",
            self.controlled.throughput / self.uncontrolled.throughput,
            self.controlled.mean_lead / self.uncontrolled.mean_lead.max(1e-9),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::tiny;

    fn fast_config() -> Fig1Config {
        let mut c = Fig1Config::new(tiny());
        c.pipeline.iterations = 30;
        c.pipeline.work_per_task = 60_000;
        c
    }

    #[test]
    fn agent_bounds_the_lead_without_losing_items() {
        let r = run(&fast_config());
        assert_eq!(r.controlled.consumed, 30);
        assert_eq!(r.uncontrolled.consumed, 30);
        // The throttled producer's backlog must be clearly smaller than the
        // free-running one's (allow generous slack: CI machines are noisy).
        assert!(
            r.controlled.mean_lead <= r.uncontrolled.mean_lead * 0.8 + 1.0,
            "agent should shrink the backlog: {} vs {}",
            r.controlled.mean_lead,
            r.uncontrolled.mean_lead
        );
        // ...and the agent actually did something.
        assert!(r.agent_decisions > 0, "agent never issued a command");
    }

    #[test]
    fn uncontrolled_builds_backlog_with_slow_consumer() {
        let (report, _) = run_once(&fast_config(), false);
        assert!(
            report.max_lead >= 2,
            "3x-heavier consumer should let the queue grow: {}",
            report.max_lead
        );
    }
}
