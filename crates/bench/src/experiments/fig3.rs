//! Figure 3: the NUMA-bad application reverses the allocation ranking.

use crate::report::{Row, Table};
use coop_alloc::strategies;
use coop_workloads::apps::crossnode_mix;
use numa_topology::presets::paper_crossnode_machine;
use numa_topology::NodeId;
use roofline_numa::{solve, ThreadAssignment};

/// Runs the Figure 3 comparison. The paper reports 138 GFLOPS for the even
/// allocation and 150 for node-per-application (with the NUMA-bad code "on
/// the right node"); our fitted machine yields 138.75 and 150 exactly —
/// see `DESIGN.md` §2 for the parameter fit.
pub fn figure3() -> Table {
    let machine = paper_crossnode_machine();
    let apps = crossnode_mix(NodeId(3));

    let even = ThreadAssignment::uniform_per_node(&machine, &[2, 2, 2, 2]);
    let right =
        strategies::node_per_app_mapped(&machine, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .expect("distinct nodes");
    // Ablation: the same whole-node allocation but with the NUMA-bad app
    // on the WRONG node (its data stays on node 3, its threads on node 0).
    let wrong =
        strategies::node_per_app_mapped(&machine, &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)])
            .expect("distinct nodes");

    let mut t = Table::new("Figure 3: NUMA-bad application (data on node 3)", "GFLOPS");
    let score = |a: &ThreadAssignment| solve(&machine, &apps, a).unwrap().total_gflops();
    t.push(Row::with_paper("even (2,2,2,2)", 138.0, score(&even)));
    t.push(Row::with_paper(
        "node per app, bad on its node",
        150.0,
        score(&right),
    ));
    t.push(Row::new("node per app, bad on wrong node", score(&wrong)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_values_and_reversal() {
        let t = figure3();
        assert!((t.rows[0].measured - 138.75).abs() < 1e-9);
        assert!((t.rows[1].measured - 150.0).abs() < 1e-9);
        // The reversal vs Figure 2: whole-node now wins.
        assert!(t.rows[1].measured > t.rows[0].measured);
        // Placement matters: the wrong node is strictly worse than the
        // right node.
        assert!(t.rows[2].measured < t.rows[1].measured);
        // Fit quality: within 1% of the paper's (rounded) 138.
        assert!(t.max_deviation() < 0.01);
    }
}
