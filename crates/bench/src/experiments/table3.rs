//! Table III: model vs (simulated) real hardware, five scenarios,
//! including the paper's calibration procedure.
//!
//! The paper's procedure, §III.B, which this module re-enacts end to end:
//!
//! 1. Run the synthetic benchmark on the real machine in the even-
//!    allocation scenario. (Here: `memsim` with [`EffectModel::skylake_like`]
//!    on a "true" machine whose raw parameters — 118 GB/s per node,
//!    0.2905 GFLOPS per thread, 11.6 GB/s links — are deliberately richer
//!    than what software can observe, exactly like real hardware specs
//!    exceed achievable STREAM numbers.)
//! 2. Fit the model's machine parameters from that one scenario
//!    ([`memsim::calibrate_even_scenario`]); the paper got 100 GB/s and
//!    0.29 GFLOPS/thread, and so does the fit here.
//! 3. Predict all five scenarios with the model and compare against the
//!    "real" measurements.
//!
//! The paper's observation — the model is a good match on the NUMA-local
//! scenarios and *over*-estimates the NUMA-bad ones by ~5% — emerges from
//! the simulator's effect model rather than being hard-coded.

use crate::report::{Row, Table};
use coop_telemetry::{DriftReport, ModelObservatory, SeriesValue, TelemetryHub};
use coop_workloads::apps::{sim_apps_with_sync, skylake_bad_mix, skylake_mix};
use memsim::{calibrate_even_scenario, EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::{Machine, MachineBuilder, NodeId};
use roofline_numa::{solve, AppSpec, ThreadAssignment};
use std::sync::Arc;

/// Per-scenario outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario label (matches the paper's rows).
    pub label: String,
    /// Model prediction on the calibrated machine, GFLOPS.
    pub model: f64,
    /// "Real" (simulated hardware) measurement, GFLOPS.
    pub real: f64,
    /// The paper's model value.
    pub paper_model: f64,
    /// The paper's real value.
    pub paper_real: f64,
}

/// Full Table III result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Fitted peak GFLOPS per thread (paper: 0.29).
    pub calibrated_peak: f64,
    /// Fitted node bandwidth (paper: 100 GB/s).
    pub calibrated_bandwidth: f64,
    /// The five scenarios, in the paper's order.
    pub scenarios: Vec<Scenario>,
}

/// The "true" hardware the simulator runs: richer than the calibrated
/// view, as real hardware is.
pub fn true_machine() -> Machine {
    MachineBuilder::new()
        .name("skylake-4x20-true")
        .symmetric_nodes(4, 20)
        .core_peak_gflops(0.2905)
        .node_bandwidth_gbs(118.0)
        .uniform_link_gbs(11.6)
        .build()
        .expect("true machine is valid")
}

/// The per-app synchronization overhead used for the compute-bound
/// benchmark (a statically-partitioned kernel pays a little coordination
/// cost per extra thread; this is what makes the paper's uneven scenario
/// fall slightly below the model).
const COMP_SYNC_ALPHA: f64 = 0.0003;

fn sim_mix(specs: &[AppSpec]) -> Vec<SimApp> {
    // The 4th app is the compute-bound (or NUMA-bad) one; only the
    // compute-bound kernel carries the sync overhead.
    let alphas: Vec<f64> = specs
        .iter()
        .map(|s| if s.ai >= 1.0 { COMP_SYNC_ALPHA } else { 0.0 })
        .collect();
    sim_apps_with_sync(specs, &alphas)
}

/// Runs the whole Table III procedure. `duration_s` trades precision for
/// time (0.2 s of simulated time is plenty; the binary uses 0.2, tests use
/// less).
pub fn run(duration_s: f64) -> Table3 {
    let machine = true_machine();
    let sim =
        Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()));

    let local = skylake_mix();
    let bad0 = skylake_bad_mix(NodeId(0));
    let bad3 = skylake_bad_mix(NodeId(3));

    let uneven = ThreadAssignment::uniform_per_node(&machine, &[1, 1, 1, 17]);
    let even = ThreadAssignment::uniform_per_node(&machine, &[5, 5, 5, 5]);
    let per_node = ThreadAssignment::node_per_app(&machine, 4).expect("4 apps, 4 nodes");

    // --- Step 1: "measure" all five scenarios on the true hardware. ----
    let r_uneven = sim.run(&sim_mix(&local), &uneven, duration_s).unwrap();
    let r_even = sim.run(&sim_mix(&local), &even, duration_s).unwrap();
    let r_pernode = sim.run(&sim_mix(&local), &per_node, duration_s).unwrap();
    let r_bad_cross = sim.run(&sim_mix(&bad0), &even, duration_s).unwrap();
    let r_bad_on = sim.run(&sim_mix(&bad3), &per_node, duration_s).unwrap();

    // --- Step 2: calibrate from the even scenario, like the paper. -----
    let mem_total: f64 = (0..3).map(|a| r_even.app_gflops(a)).sum();
    let comp = r_even.app_gflops(3);
    let cal = calibrate_even_scenario(&machine, mem_total, 1.0 / 32.0, comp, 20)
        .expect("calibration inputs are sane");
    // The model machine uses the fitted peak/bandwidth and the 10 GB/s
    // link assumption of `paper_skylake_machine` (links are estimated from
    // separate STREAM runs in the paper, not from this scenario).
    let model_machine = MachineBuilder::new()
        .name("skylake-4x20-calibrated")
        .symmetric_nodes(4, 20)
        .core_peak_gflops(cal.core_peak_gflops)
        .node_bandwidth_gbs(cal.node_bandwidth_gbs)
        .uniform_link_gbs(10.0)
        .build()
        .expect("calibrated machine is valid");

    // --- Step 3: model predictions. -------------------------------------
    let model = |apps: &[AppSpec], a: &ThreadAssignment| {
        solve(&model_machine, apps, a).unwrap().total_gflops()
    };

    let scenarios = vec![
        Scenario {
            label: "uneven (1,1,1,17)".into(),
            model: model(&local, &uneven),
            real: r_uneven.total_gflops(),
            paper_model: 23.20,
            paper_real: 22.82,
        },
        Scenario {
            label: "even (5,5,5,5)".into(),
            model: model(&local, &even),
            real: r_even.total_gflops(),
            paper_model: 18.12,
            paper_real: 18.14,
        },
        Scenario {
            label: "node per app".into(),
            model: model(&local, &per_node),
            real: r_pernode.total_gflops(),
            paper_model: 15.18,
            paper_real: 15.28,
        },
        Scenario {
            label: "NUMA-bad cross-node".into(),
            model: model(&bad0, &even),
            real: r_bad_cross.total_gflops(),
            paper_model: 13.98,
            paper_real: 13.25,
        },
        Scenario {
            label: "NUMA-bad on-node".into(),
            model: model(&bad3, &per_node),
            real: r_bad_on.total_gflops(),
            paper_model: 15.18,
            paper_real: 14.52,
        },
    ];

    Table3 {
        calibrated_peak: cal.core_peak_gflops,
        calibrated_bandwidth: cal.node_bandwidth_gbs,
        scenarios,
    }
}

/// One decision tick of the continuous residual replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualTick {
    /// Tick index.
    pub tick: u64,
    /// Model prediction for the tick, machine-wide GFLOPS.
    pub predicted_gflops: f64,
    /// Simulated "real" measurement for the tick, machine-wide GFLOPS.
    pub measured_gflops: f64,
    /// Relative machine-wide residual `(measured - predicted)/predicted`.
    pub residual: f64,
}

/// Result of [`run_residuals`]: the Table III even scenario replayed as a
/// stream of predict/measure decision ticks instead of one aggregate row.
#[derive(Debug, Clone)]
pub struct Table3Residuals {
    /// Fitted peak GFLOPS per thread (paper: 0.29).
    pub calibrated_peak: f64,
    /// Fitted node bandwidth (paper: 100 GB/s).
    pub calibrated_bandwidth: f64,
    /// Per-tick predicted vs measured throughput.
    pub ticks: Vec<ResidualTick>,
    /// The observatory's drift report over all series.
    pub report: DriftReport,
}

impl Table3Residuals {
    /// Mean absolute machine-wide relative residual.
    pub fn mean_abs_residual(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        self.ticks.iter().map(|t| t.residual.abs()).sum::<f64>() / self.ticks.len() as f64
    }
}

impl std::fmt::Display for Table3Residuals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "continuous Table III (even scenario): {} ticks, mean |residual| {:.4}, {} alarms",
            self.ticks.len(),
            self.mean_abs_residual(),
            self.report.total_alarms()
        )?;
        writeln!(
            f,
            "{:>5} {:>10} {:>10} {:>9}",
            "tick", "model", "real", "residual"
        )?;
        for t in &self.ticks {
            writeln!(
                f,
                "{:>5} {:>10.2} {:>10.2} {:>+9.4}",
                t.tick, t.predicted_gflops, t.measured_gflops, t.residual
            )?;
        }
        Ok(())
    }
}

/// The continuous residual mode: replay the paper's even scenario as a
/// stream of decision ticks. Each tick is predicted with the *calibrated*
/// model machine, measured on the *true* machine (with the full effect
/// model), and back-filled into a [`ModelObservatory`] — Table III's
/// one-shot model-vs-real comparison turned into residual tracking. With
/// calibration as good as the paper's, the machine-wide residual stays in
/// the low percent range and the drift detector stays quiet.
pub fn run_residuals(duration_s: f64, decision_period_s: f64) -> Table3Residuals {
    let machine = true_machine();
    let local = skylake_mix();
    let even = ThreadAssignment::uniform_per_node(&machine, &[5, 5, 5, 5]);

    // Calibrate exactly like `run` (one even-scenario measurement).
    let sim =
        Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()));
    let r_even = sim.run(&sim_mix(&local), &even, duration_s).unwrap();
    let mem_total: f64 = (0..3).map(|a| r_even.app_gflops(a)).sum();
    let comp = r_even.app_gflops(3);
    let cal = calibrate_even_scenario(&machine, mem_total, 1.0 / 32.0, comp, 20)
        .expect("calibration inputs are sane");
    let model_machine = MachineBuilder::new()
        .name("skylake-4x20-calibrated")
        .symmetric_nodes(4, 20)
        .core_peak_gflops(cal.core_peak_gflops)
        .node_bandwidth_gbs(cal.node_bandwidth_gbs)
        .uniform_link_gbs(10.0)
        .build()
        .expect("calibrated machine is valid");

    // One prediction per tick from the calibrated machine; one measurement
    // per tick from the true machine (fresh jitter seed each segment).
    let report = solve(&model_machine, &local, &even).expect("even scenario solves");
    let mut prediction = report.to_prediction();
    prediction.assignment = "even (5,5,5,5)".to_string();
    let predicted_gflops = report.total_gflops();

    let hub = Arc::new(TelemetryHub::new());
    let observatory = ModelObservatory::new(Arc::clone(&hub));
    let apps = sim_mix(&local);
    let n_ticks = (duration_s / decision_period_s).ceil().max(1.0) as u64;
    let mut ticks = Vec::with_capacity(n_ticks as usize);
    for tick in 0..n_ticks {
        let id = observatory.open_decision(tick, "table3", "even (5,5,5,5)", prediction.clone());
        let sim = Simulation::new(
            SimConfig::new(machine.clone())
                .with_effects(EffectModel::skylake_like())
                .with_seed(tick),
        );
        let r = sim.run(&apps, &even, decision_period_s).unwrap();
        let mut measured = Vec::with_capacity(local.len() * 2 + machine.num_nodes());
        for (i, spec) in local.iter().enumerate() {
            let gflops = r.app_gflops(i);
            measured.push(SeriesValue::new(
                format!("app/{}/gflops", spec.name),
                gflops,
            ));
            measured.push(SeriesValue::new(
                format!("app/{}/bandwidth_gbs", spec.name),
                gflops / spec.ai,
            ));
        }
        for (n, &gbs) in r.node_avg_gbs.iter().enumerate() {
            measured.push(SeriesValue::new(format!("node/{n}/bandwidth_gbs"), gbs));
        }
        observatory.close_decision(id, measured);
        let measured_gflops = r.total_gflops();
        ticks.push(ResidualTick {
            tick,
            predicted_gflops,
            measured_gflops,
            residual: (measured_gflops - predicted_gflops) / predicted_gflops,
        });
    }

    Table3Residuals {
        calibrated_peak: cal.core_peak_gflops,
        calibrated_bandwidth: cal.node_bandwidth_gbs,
        ticks,
        report: observatory.report(),
    }
}

impl Table3 {
    /// The model column as a comparison table against the paper's model
    /// column.
    pub fn model_table(&self) -> Table {
        let mut t = Table::new("Table III — model column", "GFLOPS");
        for s in &self.scenarios {
            t.push(Row::with_paper(&s.label, s.paper_model, s.model));
        }
        t
    }

    /// The real column as a comparison table against the paper's real
    /// column.
    pub fn real_table(&self) -> Table {
        let mut t = Table::new("Table III — real (simulated hardware) column", "GFLOPS");
        for s in &self.scenarios {
            t.push(Row::with_paper(&s.label, s.paper_real, s.real));
        }
        t
    }
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "calibrated parameters: {:.4} GFLOPS/thread (paper 0.29), {:.1} GB/s per node (paper 100)",
            self.calibrated_peak, self.calibrated_bandwidth
        )?;
        writeln!(
            f,
            "{:<22} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "scenario", "model", "real", "p.model", "p.real", "m/r", "paper m/r"
        )?;
        for s in &self.scenarios {
            writeln!(
                f,
                "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.3} {:>9.3}",
                s.label,
                s.model,
                s.real,
                s.paper_model,
                s.paper_real,
                s.model / s.real,
                s.paper_model / s.paper_real
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_lands_on_paper_values() {
        let t = run(0.05);
        assert!(
            (t.calibrated_peak - 0.29).abs() < 0.005,
            "peak {}",
            t.calibrated_peak
        );
        assert!(
            (t.calibrated_bandwidth - 100.0).abs() < 2.0,
            "bandwidth {}",
            t.calibrated_bandwidth
        );
    }

    #[test]
    fn model_column_matches_paper_within_2_percent() {
        let t = run(0.05);
        let m = t.model_table();
        assert!(
            m.max_deviation() < 0.02,
            "model column deviation {}",
            m.max_deviation()
        );
    }

    #[test]
    fn real_column_matches_paper_within_5_percent() {
        let t = run(0.05);
        let r = t.real_table();
        assert!(
            r.max_deviation() < 0.05,
            "real column deviation {}",
            r.max_deviation()
        );
    }

    #[test]
    fn residual_mode_tracks_calibrated_model() {
        let r = run_residuals(0.05, 0.01);
        assert_eq!(r.ticks.len(), 5);
        // The even scenario is the calibration target: the continuous
        // machine-wide residual stays small...
        assert!(
            r.mean_abs_residual() < 0.03,
            "mean |residual| {}",
            r.mean_abs_residual()
        );
        // ...every tick has a real (nonzero) residual — this is measured
        // hardware-with-effects against an analytic model...
        assert!(r.ticks.iter().any(|t| t.residual != 0.0));
        // ...and a well-calibrated model raises no drift alarms.
        assert_eq!(
            r.report.total_alarms(),
            0,
            "report:\n{}",
            r.report.to_text()
        );
        // The report carries per-app and per-node series.
        assert!(r.report.series.iter().any(|s| s.series.starts_with("app/")));
        assert!(r
            .report
            .series
            .iter()
            .any(|s| s.series.starts_with("node/")));
    }

    #[test]
    fn shape_of_discrepancies_matches_paper() {
        let t = run(0.05);
        let s = &t.scenarios;
        // Even scenario is the calibration target: near-exact.
        assert!((s[1].model / s[1].real - 1.0).abs() < 0.005);
        // Node-per-app: real beats the model (paper: 15.28 > 15.18).
        assert!(s[2].real > s[2].model);
        // NUMA-bad rows: the model over-estimates.
        assert!(
            s[3].model > s[3].real,
            "cross-node: model should over-estimate"
        );
        assert!(
            s[4].model > s[4].real,
            "on-node: model should over-estimate"
        );
        // And the ordering of scenarios by performance matches the paper:
        // uneven > even > {node-per-app, on-node} > cross-node.
        assert!(s[0].real > s[1].real);
        assert!(s[1].real > s[2].real);
        assert!(s[2].real > s[3].real);
        assert!(s[4].real > s[3].real);
    }
}
