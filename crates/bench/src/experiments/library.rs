//! E-library: the §II tight-integration "library application" scenario.
//!
//! "One application might use the other application like a library,
//! delegating a specific job to it whenever needed. In this case, quickly
//! shifting resources to the 'library' application when it is called could
//! improve efficiency. Similarly, when the 'library' finishes, we can
//! quickly free up the CPU cores that were used to run it and move them
//! back to the 'main' application."
//!
//! Modeled in `memsim`: the main application computes continuously; the
//! library is active only in periodic bursts. Three resource policies:
//!
//! * **static split** — half the cores each, always;
//! * **main-owns-all** — the library squeezed into a minimal share;
//! * **burst shifting** — a dynamic schedule that gives the library most
//!   of the machine exactly during its bursts (what the agent's
//!   `LibraryBurst` policy produces), and the main app everything
//!   otherwise.
//!
//! The figure of merit is *library work completed* (its jobs must finish
//! within their bursts) together with main-app throughput.

use crate::report::{Row, Table};
use memsim::{ActivityPattern, EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::Machine;
use roofline_numa::ThreadAssignment;

/// Builds the burst-shifting dynamic schedule: library cores during
/// bursts, main cores otherwise.
fn burst_schedule(
    machine: &Machine,
    period_s: f64,
    duty: f64,
    duration_s: f64,
) -> Vec<(f64, ThreadAssignment)> {
    let full: Vec<usize> = machine.nodes().map(|n| n.num_cores()).collect();
    let one_each: Vec<usize> = machine
        .nodes()
        .map(|n| (n.num_cores() - 1).max(1))
        .collect();
    // Main keeps one core per node during bursts; library gets the rest.
    let burst = ThreadAssignment::from_matrix(vec![
        machine.nodes().map(|_| 1usize).collect(),
        one_each.clone(),
    ]);
    let idle = ThreadAssignment::from_matrix(vec![full, machine.nodes().map(|_| 0).collect()]);

    let mut schedule = Vec::new();
    let mut t = 0.0;
    while t < duration_s {
        schedule.push((t, burst.clone()));
        schedule.push((t + duty * period_s, idle.clone()));
        t += period_s;
    }
    schedule
}

/// Runs the library-burst comparison.
pub fn run(machine: &Machine, duration_s: f64) -> Table {
    let period = duration_s / 5.0;
    let duty = 0.3;
    let sim = Simulation::new(
        SimConfig::new(machine.clone())
            .with_effects(EffectModel::ideal())
            .with_quantum(duration_s / 1000.0),
    );
    let apps = vec![
        SimApp::numa_local("main", 8.0),
        SimApp::numa_local("library", 8.0).with_activity(ActivityPattern::Bursts {
            period_s: period,
            duty,
            phase_s: 0.0,
        }),
    ];

    let half: Vec<Vec<usize>> = vec![
        machine.nodes().map(|n| n.num_cores() / 2).collect(),
        machine
            .nodes()
            .map(|n| n.num_cores() - n.num_cores() / 2)
            .collect(),
    ];
    let static_split = ThreadAssignment::from_matrix(half);
    let main_owns = ThreadAssignment::from_matrix(vec![
        machine.nodes().map(|n| n.num_cores() - 1).collect(),
        machine.nodes().map(|_| 1usize).collect(),
    ]);
    let shifting = burst_schedule(machine, period, duty, duration_s);

    let r_static = sim.run(&apps, &static_split, duration_s).expect("runs");
    let r_main = sim.run(&apps, &main_owns, duration_s).expect("runs");
    let r_shift = sim.run_dynamic(&apps, &shifting, duration_s).expect("runs");

    let mut t = Table::new("Library bursts: total work completed", "GFLOP");
    for (label, r) in [
        ("static half/half", &r_static),
        ("main owns machine", &r_main),
        ("burst shifting (agent)", &r_shift),
    ] {
        t.push(Row::new(
            &format!("{label} [total]"),
            r.apps[0].gflop_done + r.apps[1].gflop_done,
        ));
        t.push(Row::new(
            &format!("{label} [library]"),
            r.apps[1].gflop_done,
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::dual_socket;

    #[test]
    fn burst_shifting_dominates() {
        let t = run(&dual_socket(), 1.0);
        let total = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label.starts_with(label) && r.label.ends_with("[total]"))
                .unwrap()
                .measured
        };
        let library = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label.starts_with(label) && r.label.ends_with("[library]"))
                .unwrap()
                .measured
        };
        // Shifting beats the static split on total work: during the 70% of
        // time the library is idle, its static cores are wasted.
        assert!(
            total("burst shifting") > total("static half/half") * 1.2,
            "shifting {} vs static {}",
            total("burst shifting"),
            total("static half/half")
        );
        // And it gives the library far more than the starved variant.
        assert!(library("burst shifting") > library("main owns") * 2.0);
        // Total-wise, shifting is at least competitive with main-owns.
        assert!(total("burst shifting") >= total("main owns") * 0.95);
    }
}
