//! E-osched: the §II over-subscription claim.
//!
//! "Normally, each application would create and use as many worker threads
//! as there are cores, leading to significant over-subscription. ... Our
//! earlier experiments have shown that in most cases, the Linux operating
//! system can do a very good job when scheduling the threads of such
//! applications, so the benefits of the thread allocation techniques may
//! not be as good as one would imagine — only marginal (a few percent)
//! improvement in performance."
//!
//! This experiment quantifies that: `n` identical applications each run
//! either a full machine's worth of threads (the default, over-subscribed
//! n-fold) or a fair share (coordinated, no over-subscription), on the
//! `memsim` OS scheduler.

use crate::report::{Row, Table};
use coop_alloc::strategies;
use memsim::{EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::Machine;
use roofline_numa::ThreadAssignment;

/// Runs the over-subscription comparison for `num_apps` identical
/// applications with the given AI on `machine`.
pub fn run(machine: &Machine, num_apps: usize, ai: f64, duration_s: f64) -> Table {
    let sim =
        Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()));
    let apps: Vec<SimApp> = (0..num_apps)
        .map(|i| SimApp::numa_local(&format!("app{i}"), ai))
        .collect();

    // Over-subscribed: every app runs cores-per-node threads on each node.
    let full: Vec<usize> = machine.nodes().map(|n| n.num_cores()).collect();
    let oversub = ThreadAssignment::from_matrix(vec![full; num_apps]);
    // Fair share: total threads equal the core count.
    let fair = strategies::fair_share(machine, num_apps).expect("fair share is valid");

    let r_over = sim.run(&apps, &oversub, duration_s).expect("runs");
    let r_fair = sim.run(&apps, &fair, duration_s).expect("runs");

    // Ablation: the same over-subscription under the discrete round-robin
    // scheduler instead of continuous fair shares.
    let mut discrete = EffectModel::skylake_like();
    discrete.discrete_timeslice = true;
    let sim_discrete = Simulation::new(SimConfig::new(machine.clone()).with_effects(discrete));
    let r_over_discrete = sim_discrete.run(&apps, &oversub, duration_s).expect("runs");

    let mut t = Table::new(
        &format!("Over-subscription: {num_apps} apps x full machine vs fair share (AI={ai})"),
        "GFLOPS",
    );
    t.push(Row::new(
        &format!("{num_apps}x over-subscribed"),
        r_over.total_gflops(),
    ));
    t.push(Row::new(
        &format!("{num_apps}x over-subscribed (discrete RR)"),
        r_over_discrete.total_gflops(),
    ));
    t.push(Row::new("fair share (coordinated)", r_fair.total_gflops()));
    t.push(Row::new(
        "improvement %",
        (r_fair.total_gflops() / r_over.total_gflops() - 1.0) * 100.0,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::paper_model_machine;

    #[test]
    fn fair_share_wins_by_only_a_few_percent() {
        // Compute-bound apps: over-subscription costs switching overhead
        // only. The paper's claim: the win is marginal, not dramatic.
        let t = run(&paper_model_machine(), 2, 10.0, 0.05);
        let improvement = t.rows[3].measured;
        assert!(
            improvement > 0.0,
            "coordination should help at least a little: {improvement}%"
        );
        assert!(
            improvement < 10.0,
            "the paper says a few percent, got {improvement}%"
        );
    }

    #[test]
    fn memory_bound_apps_see_even_less_benefit() {
        // Bandwidth-bound apps are limited by the memory system either
        // way; the scheduler overhead is hidden behind the bandwidth wall.
        let t = run(&paper_model_machine(), 2, 0.1, 0.05);
        let improvement = t.rows[3].measured;
        assert!(
            improvement.abs() < 5.0,
            "bandwidth-bound: negligible difference, got {improvement}%"
        );
    }
}
