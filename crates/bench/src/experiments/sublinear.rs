//! E-sublin: the §II sub-linear scaling claim.
//!
//! "If the scaling of the applications is less than linear, we might get
//! better efficiency by reducing the number of threads. Note that we are
//! not assuming that the performance of that application actually degrades
//! with more threads ... it might be better to limit the number of threads
//! allocated to this application and assign the CPU cores to another
//! application, which can make better use of them."
//!
//! Two applications: one compute-bound with a synchronization overhead
//! that makes its scaling sub-linear (but still monotonic), one with
//! perfect scaling. A greedy search that uses the *simulator* as its
//! oracle discovers that capping the sub-linear application's threads and
//! giving the rest to the perfectly-scaling one beats the fair share.

use crate::report::{Row, Table};
use coop_alloc::search::GreedySearch;
use coop_alloc::strategies;
use memsim::{EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::Machine;
use roofline_numa::ThreadAssignment;

/// Outcome of the sub-linear scaling experiment.
#[derive(Debug, Clone)]
pub struct SublinearResult {
    /// The comparison table.
    pub table: Table,
    /// Threads the searched allocation gave the sub-linear application.
    pub sublinear_threads: usize,
    /// Threads the searched allocation gave the linear application.
    pub linear_threads: usize,
}

/// Runs the experiment on `machine` with the sub-linear app's overhead
/// coefficient `alpha` (per extra thread).
pub fn run(machine: &Machine, alpha: f64, duration_s: f64) -> SublinearResult {
    let sim = Simulation::new(
        SimConfig::new(machine.clone())
            .with_effects(EffectModel::ideal()) // isolate the scaling effect
            .with_quantum(2e-3),
    );
    // Both compute-bound, so bandwidth sharing is not the story here.
    let apps = vec![
        SimApp::numa_local("sublinear", 8.0).with_sync_overhead(alpha),
        SimApp::numa_local("linear", 8.0),
    ];

    let fair = strategies::fair_share(machine, 2).expect("fair share valid");
    let r_fair = sim.run(&apps, &fair, duration_s).expect("runs");

    // Model-guided (simulator-oracle) greedy search, with both apps kept
    // alive (at least one thread each).
    let mut oracle = |a: &ThreadAssignment| -> coop_alloc::Result<f64> {
        if a.app_total(0) == 0 || a.app_total(1) == 0 {
            return Ok(f64::NEG_INFINITY);
        }
        Ok(sim.run(&apps, a, duration_s).expect("runs").total_gflops())
    };
    let found = GreedySearch::new()
        .filling()
        .run_with_oracle(machine, 2, &mut oracle)
        .expect("search succeeds");
    let r_found = sim.run(&apps, &found.assignment, duration_s).expect("runs");

    let mut table = Table::new(
        &format!("Sub-linear scaling (alpha={alpha}): fair share vs searched allocation"),
        "GFLOPS",
    );
    table.push(Row::new("fair share", r_fair.total_gflops()));
    table.push(Row::new("searched", r_found.total_gflops()));
    table.push(Row::new(
        "improvement %",
        (r_found.total_gflops() / r_fair.total_gflops() - 1.0) * 100.0,
    ));
    SublinearResult {
        table,
        sublinear_threads: found.assignment.app_total(0),
        linear_threads: found.assignment.app_total(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topology::presets::tiny;
    use numa_topology::MachineBuilder;

    fn small_machine() -> Machine {
        // 2 nodes x 4 cores keeps the simulator-oracle search fast.
        MachineBuilder::new()
            .symmetric_nodes(2, 4)
            .core_peak_gflops(10.0)
            .node_bandwidth_gbs(100.0)
            .uniform_link_gbs(10.0)
            .build()
            .unwrap()
    }

    #[test]
    fn search_shifts_threads_to_the_linear_app() {
        let r = run(&small_machine(), 0.25, 0.02);
        assert!(
            r.linear_threads > r.sublinear_threads,
            "linear app should get more threads: {} vs {}",
            r.linear_threads,
            r.sublinear_threads
        );
        let improvement = r.table.rows[2].measured;
        assert!(
            improvement > 1.0,
            "searched allocation should beat fair share, got {improvement}%"
        );
    }

    #[test]
    fn no_overhead_means_fair_share_is_optimal() {
        let r = run(&tiny(), 0.0, 0.02);
        let improvement = r.table.rows[2].measured;
        assert!(
            improvement.abs() < 0.5,
            "identical perfectly-scaling apps: nothing to gain, got {improvement}%"
        );
    }
}
