//! The experiment implementations, one module per table/figure.

pub mod chaos;
pub mod dist;
pub mod e2e;
pub mod fig1;
pub mod fig3;
pub mod fleet;
pub mod library;
pub mod oversub;
pub mod sublinear;
pub mod table12;
pub mod table3;
