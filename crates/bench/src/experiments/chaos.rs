//! E-chaos: what core reclamation buys under partial failure.
//!
//! The supervision layer's promise (agent `supervise` module) is that when
//! one cooperating application dies, the survivors absorb its cores
//! instead of letting them idle. This experiment measures that promise in
//! the simulator across application mixes: each mix runs the same
//! kill-at-half-time outage twice — once with the dead application's cores
//! idling (no reclamation) and once with the survivors fair-sharing them —
//! and reports the survivor-throughput ratio. A ratio above 1.0 is the
//! payoff of eviction + reclamation; symmetric memory-bound mixes show the
//! smallest gain (the freed cores add bandwidth pressure, not compute),
//! compute-heavy mixes the largest.

use crate::report::{Row, Table};
use memsim::chaos::{run_chaos_scenario, AppOutage, ChaosPlan};
use memsim::scenario::NamedAssignment;
use memsim::{EffectModel, Scenario, SimApp};
use numa_topology::presets::dual_socket;

/// One experiment mix: a label, the applications, and which one dies.
fn mixes() -> Vec<(&'static str, Vec<SimApp>, usize)> {
    vec![
        (
            "compute mix, comp dies",
            vec![
                SimApp::numa_local("mem", 1.0 / 16.0),
                SimApp::numa_local("comp1", 8.0),
                SimApp::numa_local("comp2", 8.0),
            ],
            1,
        ),
        (
            "compute mix, mem dies",
            vec![
                SimApp::numa_local("mem", 1.0 / 16.0),
                SimApp::numa_local("comp1", 8.0),
                SimApp::numa_local("comp2", 8.0),
            ],
            0,
        ),
        (
            "symmetric memory-bound",
            vec![
                SimApp::numa_local("mem1", 1.0 / 16.0),
                SimApp::numa_local("mem2", 1.0 / 16.0),
                SimApp::numa_local("mem3", 1.0 / 16.0),
            ],
            2,
        ),
    ]
}

/// Builds the fair-share starting scenario for one mix.
fn scenario(label: &str, apps: Vec<SimApp>, duration_s: f64) -> Scenario {
    let machine = dual_socket();
    let fair = coop_alloc::strategies::fair_share(&machine, apps.len())
        .expect("fair share of dual-socket is valid");
    Scenario {
        name: format!("chaos:{label}"),
        assignments: vec![NamedAssignment {
            name: "fair".into(),
            threads: fair.matrix().to_vec(),
        }],
        duration_s,
        effects: EffectModel::skylake_like(),
        seed: 11,
        machine,
        apps,
    }
}

/// Survivor throughput (GFLOPS, dead app excluded) of one chaos run.
fn survivor_gflops(s: &Scenario, victim: usize, reclaim: bool, duration_s: f64) -> f64 {
    let plan = ChaosPlan {
        outages: vec![AppOutage {
            app: victim,
            down_at_s: duration_s / 2.0,
            up_at_s: None,
        }],
        reclaim,
    };
    let r = run_chaos_scenario(s, &plan).expect("chaos scenario runs");
    (0..s.apps.len())
        .filter(|&i| i != victim)
        .map(|i| r.result.app_gflops(i))
        .sum()
}

/// Runs the experiment: survivor-throughput ratio (reclaimed / idle) per
/// mix, simulated for `duration_s` seconds each.
pub fn run(duration_s: f64) -> Table {
    let mut table = Table::new(
        "E-chaos: survivor throughput, reclaimed vs idle cores",
        "ratio",
    );
    for (label, apps, victim) in mixes() {
        let s = scenario(label, apps, duration_s);
        let idle = survivor_gflops(&s, victim, false, duration_s);
        let reclaimed = survivor_gflops(&s, victim, true, duration_s);
        table.push(Row::new(label, reclaimed / idle));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclamation_never_hurts_and_helps_compute_mixes() {
        let table = run(0.05);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            assert!(
                row.measured >= 0.9,
                "{}: reclamation must not hurt survivors ({})",
                row.label,
                row.measured
            );
        }
        // Losing a compute app frees cores the other compute app can use
        // productively: a clear win.
        assert!(
            table.rows[1].measured > 1.05,
            "compute survivors must gain from reclaimed cores ({})",
            table.rows[1].measured
        );
    }
}
