//! E-e2e: the paper's full pipeline, composed — on-node model-guided core
//! allocation produces per-node speedups, which the distributed layer then
//! translates (or fails to translate) into end-to-end speedup.
//!
//! This is the experiment the paper sketches across §II+§V but never runs:
//! a 12-node cluster where each node hosts a *different* mix of
//! cooperating applications. For every node we measure (in `memsim`) the
//! throughput of the naive allocation (every app gets a fair share)
//! versus the model-guided allocation found by greedy search with a
//! keep-alive floor; the ratio is that node's local speedup. The speedup
//! vector then drives `distsim` under the four synchronization/
//! distribution regimes.

use crate::report::{Row, Table};
use coop_alloc::{search::GreedySearch, strategies, ThreadAssignment};
use distsim::{simulate, Cluster, Distribution, Synchronization, Workload};
use memsim::{EffectModel, SimApp, SimConfig, Simulation};
use numa_topology::presets::dual_socket;
use roofline_numa::AppSpec;

/// One cluster node's application mix (by variant index).
fn node_mix(variant: usize) -> Vec<AppSpec> {
    match variant % 3 {
        // Strongly skewed: the classic Table-I-style mix — big win.
        0 => vec![
            AppSpec::numa_local("mem1", 1.0 / 16.0),
            AppSpec::numa_local("mem2", 1.0 / 16.0),
            AppSpec::numa_local("comp", 16.0),
        ],
        // Mildly skewed.
        1 => vec![
            AppSpec::numa_local("mem", 0.25),
            AppSpec::numa_local("comp", 4.0),
        ],
        // Symmetric: nothing to gain over fair share.
        _ => vec![AppSpec::numa_local("a", 1.0), AppSpec::numa_local("b", 1.0)],
    }
}

/// Computes one node's local speedup: model-guided allocation vs fair
/// share, both measured in the effectful simulator.
fn local_speedup(variant: usize, duration_s: f64) -> f64 {
    let machine = dual_socket();
    let apps = node_mix(variant);
    let sim = Simulation::new(
        SimConfig::new(machine.clone())
            .with_effects(EffectModel::skylake_like())
            .with_seed(variant as u64),
    );
    let sim_apps: Vec<SimApp> = apps
        .iter()
        .map(|s| SimApp {
            spec: s.clone(),
            activity: memsim::ActivityPattern::AlwaysOn,
            sync_overhead: 0.0,
        })
        .collect();

    let fair = strategies::fair_share(&machine, apps.len()).expect("fair share valid");
    let r_fair = sim.run(&sim_apps, &fair, duration_s).expect("sim runs");

    // Model-guided with a keep-alive floor (every app keeps >= 1 thread).
    let mut oracle = |a: &ThreadAssignment| -> coop_alloc::Result<f64> {
        let starved = (0..apps.len()).filter(|&i| a.app_total(i) == 0).count();
        if starved > 0 {
            return Ok(-(starved as f64) * 1e12);
        }
        coop_alloc::score(&machine, &apps, a, &coop_alloc::Objective::TotalGflops)
    };
    let found = GreedySearch::new()
        .run_with_oracle(&machine, apps.len(), &mut oracle)
        .expect("search succeeds");
    let r_guided = sim
        .run(&sim_apps, &found.assignment, duration_s)
        .expect("sim runs");

    (r_guided.total_gflops() / r_fair.total_gflops()).max(1.0)
}

/// Runs the composed experiment on a `ranks`-node cluster.
pub fn run(ranks: usize, duration_s: f64) -> Table {
    // Per-node speedups from the on-node layer (3 distinct mixes).
    let per_variant: Vec<f64> = (0..3).map(|v| local_speedup(v, duration_s)).collect();
    let speedups: Vec<f64> = (0..ranks).map(|i| per_variant[i % 3]).collect();
    let cluster = Cluster::uniform(ranks, 1.0).with_speedups(&speedups);
    let mean = cluster.mean_speedup();

    let mut t = Table::new(
        &format!(
            "End-to-end: on-node gains {:.2}/{:.2}/{:.2} per mix, mean {:.3}",
            per_variant[0], per_variant[1], per_variant[2], mean
        ),
        "overall speedup",
    );
    for (sync, sl) in [
        (Synchronization::Tight, "tight"),
        (Synchronization::Loose, "loose"),
    ] {
        for (dist, dl) in [
            (Distribution::Static, "static"),
            (Distribution::Dynamic, "dynamic"),
        ] {
            let w = Workload::new(ranks * 400, 1.0)
                .iterations(16)
                .sync(sync)
                .distribution(dist)
                .unit_variability(0.15);
            let r = simulate(&cluster, &w, 99);
            t.push(Row::new(&format!("{sl} + {dl}"), r.speedup_vs_uniform));
        }
    }
    t.push(Row::new("mean local speedup", mean));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_mix_gains_most_symmetric_gains_nothing() {
        let s0 = local_speedup(0, 0.03);
        let s2 = local_speedup(2, 0.03);
        assert!(s0 > 1.1, "skewed mix should gain well over 10%: {s0}");
        assert!(s2 < 1.05, "symmetric mix has nothing to gain: {s2}");
        assert!(s0 > s2);
    }

    #[test]
    fn composed_pipeline_translates_when_loose() {
        let t = run(12, 0.03);
        let find = |prefix: &str| {
            t.rows
                .iter()
                .find(|r| r.label.starts_with(prefix))
                .unwrap()
                .measured
        };
        let mean = find("mean local speedup");
        assert!(mean > 1.0, "the on-node layer must produce some gain");
        let loose_dyn = find("loose + dynamic");
        let tight_static = find("tight + static");
        assert!(loose_dyn > tight_static);
        assert!(
            loose_dyn > 1.0 + 0.6 * (mean - 1.0),
            "loose+dynamic {loose_dyn} vs mean {mean}"
        );
    }
}
