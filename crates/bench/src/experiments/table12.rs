//! Tables I & II and Figure 2: the worked model examples.

use crate::report::{Row, Table};
use coop_workloads::apps::model_mix;
use numa_topology::presets::paper_model_machine;
use roofline_numa::trace::{solve_traced, TableTrace};
use roofline_numa::{solve, ThreadAssignment};

/// Runs the Table I computation (uneven allocation 1,1,1,5) and returns
/// the full row-by-row trace.
pub fn table1() -> TableTrace {
    let machine = paper_model_machine();
    let (_, trace) =
        solve_traced(&machine, &model_mix(), &[1, 1, 1, 5]).expect("paper scenario is valid");
    trace
}

/// Runs the Table II computation (even allocation 2,2,2,2).
pub fn table2() -> TableTrace {
    let machine = paper_model_machine();
    let (_, trace) =
        solve_traced(&machine, &model_mix(), &[2, 2, 2, 2]).expect("paper scenario is valid");
    trace
}

/// Runs all three Figure 2 scenarios and returns the comparison table.
pub fn figure2() -> Table {
    let machine = paper_model_machine();
    let apps = model_mix();

    let uneven = ThreadAssignment::uniform_per_node(&machine, &[1, 1, 1, 5]);
    let even = ThreadAssignment::uniform_per_node(&machine, &[2, 2, 2, 2]);
    let whole = ThreadAssignment::node_per_app(&machine, 4).expect("4 apps on 4 nodes");

    let mut t = Table::new("Figure 2: three allocation scenarios", "GFLOPS");
    for (label, paper, assignment) in [
        ("a) uneven (1,1,1,5)", 254.0, &uneven),
        ("b) even (2,2,2,2)", 140.0, &even),
        ("c) node per app", 128.0, &whole),
    ] {
        let r = solve(&machine, &apps, assignment).expect("paper scenario is valid");
        t.push(Row::with_paper(label, paper, r.total_gflops()));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bottom_line() {
        let t = table1();
        assert!((t.gflops_per_node - 63.5).abs() < 1e-9);
        assert!((t.total_gflops - 254.0).abs() < 1e-9);
    }

    #[test]
    fn table2_bottom_line() {
        let t = table2();
        assert!((t.gflops_per_node - 35.0).abs() < 1e-9);
        assert!((t.total_gflops - 140.0).abs() < 1e-9);
    }

    #[test]
    fn figure2_matches_paper_exactly() {
        let t = figure2();
        assert_eq!(t.rows.len(), 3);
        assert!(t.max_deviation() < 1e-9, "deviation {}", t.max_deviation());
        // Ranking: uneven > even > whole-node (the paper's point).
        assert!(t.rows[0].measured > t.rows[1].measured);
        assert!(t.rows[1].measured > t.rows[2].measured);
    }
}
