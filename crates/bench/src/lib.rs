//! # coop-bench
//!
//! The reproduction harness: one module (and one binary) per table and
//! figure of the paper, plus the extension experiments from `DESIGN.md`.
//! Each experiment returns a structured result whose `Display` prints the
//! same rows/series the paper reports, alongside the paper's published
//! values, so `cargo run -p coop-bench --bin repro_all` regenerates the
//! whole evaluation and `EXPERIMENTS.md` can be checked line by line.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table I (uneven allocation, every intermediate row) |
//! | `table2` | Table II (even allocation, every intermediate row) |
//! | `fig2` | Figure 2 (three allocation scenarios: 254 / 140 / 128) |
//! | `fig3` | Figure 3 (NUMA-bad app: even 138.75 vs whole-node 150) |
//! | `table3` | Table III (model vs simulated hardware, 5 scenarios, incl. the paper's calibration procedure) |
//! | `fig1_pipeline` | Figure 1 architecture: producer-consumer with and without the agent |
//! | `oversub` | §II claim: over-subscription costs only a few percent |
//! | `sublinear` | §II claim: shifting cores away from a sub-linearly scaling app helps |
//! | `library_burst` | §II tight-integration "library application" scenario |
//! | `distributed` | §V: local-to-global speedup translation |
//! | `chaos_recovery` | partial failure: survivor throughput with reclaimed vs idle cores |
//! | `repro_all` | everything above, in order |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
