//! Benchmarks of the decision-support tooling built on the model: sweeps,
//! consensus resolution, the stability planner, and simulated annealing.

use coop_agent::consensus::{resolve, DemandProfile};
use coop_alloc::strategies;
use coop_alloc::{search::SimulatedAnnealing, Objective, ReallocPlanner};
use coop_workloads::apps::model_mix;
use criterion::{criterion_group, criterion_main, Criterion};
use numa_topology::presets::{paper_model_machine, paper_skylake_machine};
use roofline_numa::{sweep, AppSpec};
use std::hint::black_box;

fn bench_tools(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_tools");
    g.sample_size(20);

    let machine = paper_model_machine();
    let apps = model_mix();

    g.bench_function("thread_sweep_full_node", |b| {
        let mem = vec![AppSpec::numa_local("mem", 0.5)];
        b.iter(|| black_box(sweep::thread_sweep(&machine, &mem, 0, &[0]).unwrap()))
    });

    g.bench_function("consensus_resolve_4_apps", |b| {
        let profiles: Vec<DemandProfile> = apps
            .iter()
            .enumerate()
            .map(|(i, s)| DemandProfile::new(s.clone(), 1.0 + i as f64 * 0.5))
            .collect();
        b.iter(|| black_box(resolve(&machine, &profiles)))
    });

    g.bench_function("realloc_plan_fair_to_best", |b| {
        let current = strategies::fair_share(&machine, apps.len()).unwrap();
        let planner = ReallocPlanner::new(Objective::TotalGflops, 1.0);
        b.iter(|| black_box(planner.plan(&machine, &apps, &current).unwrap()))
    });

    g.bench_function("annealing_1000_iters_skylake", |b| {
        let m = paper_skylake_machine();
        let mix = coop_workloads::apps::skylake_mix();
        b.iter(|| {
            black_box(
                SimulatedAnnealing::new()
                    .with_iterations(1000)
                    .run(&m, &mix, &Objective::TotalGflops)
                    .unwrap(),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tools);
criterion_main!(benches);
