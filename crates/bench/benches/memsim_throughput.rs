//! A-sim: simulator throughput — simulated seconds per wall second for the
//! Table III machine, and the cost of the effect model vs the ideal path.

use coop_workloads::apps::{sim_apps, skylake_bad_mix, skylake_mix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memsim::{EffectModel, SimConfig, Simulation};
use numa_topology::presets::paper_skylake_machine;
use numa_topology::NodeId;
use roofline_numa::ThreadAssignment;
use std::hint::black_box;

const SIM_SECONDS: f64 = 0.05;

fn bench_sim(c: &mut Criterion) {
    let machine = paper_skylake_machine();
    let even = ThreadAssignment::uniform_per_node(&machine, &[5, 5, 5, 5]);
    let local = sim_apps(&skylake_mix());
    let bad = sim_apps(&skylake_bad_mix(NodeId(0)));

    let mut g = c.benchmark_group("memsim");
    g.throughput(Throughput::Elements((SIM_SECONDS / 1e-3) as u64)); // quanta
    g.sample_size(20);

    g.bench_function("ideal_local", |b| {
        let sim =
            Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::ideal()));
        b.iter(|| black_box(sim.run(&local, &even, SIM_SECONDS).unwrap()))
    });

    g.bench_function("skylake_effects_local", |b| {
        let sim = Simulation::new(
            SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()),
        );
        b.iter(|| black_box(sim.run(&local, &even, SIM_SECONDS).unwrap()))
    });

    g.bench_function("skylake_effects_crossnode", |b| {
        let sim = Simulation::new(
            SimConfig::new(machine.clone()).with_effects(EffectModel::skylake_like()),
        );
        b.iter(|| black_box(sim.run(&bad, &even, SIM_SECONDS).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
