//! A-runtime: task-runtime overheads — spawn/execute throughput for
//! independent tasks, dependency-chained tasks, and fan-out/fan-in
//! diamonds, on a small virtual machine.

use coop_runtime::{Runtime, RuntimeConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use numa_topology::presets::tiny;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TASKS: u64 = 500;

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.throughput(Throughput::Elements(TASKS));
    g.sample_size(20);

    g.bench_function("independent_tasks", |b| {
        b.iter_with_setup(
            || Runtime::start(RuntimeConfig::new("bench", tiny())).unwrap(),
            |rt| {
                let count = Arc::new(AtomicU64::new(0));
                for i in 0..TASKS {
                    let count = count.clone();
                    rt.task(&format!("t{i}"))
                        .body(move |_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        })
                        .spawn()
                        .unwrap();
                }
                rt.wait_quiescent().unwrap();
                assert_eq!(count.load(Ordering::Relaxed), TASKS);
                rt.shutdown();
            },
        )
    });

    g.bench_function("dependency_chain", |b| {
        b.iter_with_setup(
            || Runtime::start(RuntimeConfig::new("bench", tiny())).unwrap(),
            |rt| {
                let mut prev: Option<coop_runtime::Event> = None;
                for i in 0..TASKS {
                    let mut builder = rt.task(&format!("t{i}"));
                    if let Some(ev) = &prev {
                        builder = builder.depends_on(ev);
                    }
                    let (_, finish) = builder.body(|_| {}).spawn_with_finish().unwrap();
                    prev = Some(finish);
                }
                rt.wait_quiescent().unwrap();
                rt.shutdown();
            },
        )
    });

    g.bench_function("fanout_fanin_diamonds", |b| {
        b.iter_with_setup(
            || Runtime::start(RuntimeConfig::new("bench", tiny())).unwrap(),
            |rt| {
                let width = 10u64;
                let rounds = TASKS / width;
                for _ in 0..rounds {
                    let latch = rt.new_latch_event(width);
                    rt.task("join")
                        .depends_on(&latch)
                        .body(|_| {})
                        .spawn()
                        .unwrap();
                    for i in 0..width {
                        let latch = latch.clone();
                        rt.task(&format!("leg{i}"))
                            .body(move |ctx| ctx.satisfy(&latch))
                            .spawn()
                            .unwrap();
                    }
                }
                rt.wait_quiescent().unwrap();
                rt.shutdown();
            },
        )
    });

    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
