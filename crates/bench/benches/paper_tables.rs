//! Microbenchmarks of the paper-scenario computations themselves: how long
//! each table/figure regeneration takes. These double as regression
//! anchors — every iteration re-asserts the paper's headline numbers, so a
//! solver change that breaks the reproduction fails the bench loudly.

use coop_bench::experiments::{fig3, table12};
use coop_workloads::apps::{skylake_bad_mix, skylake_mix};
use criterion::{criterion_group, criterion_main, Criterion};
use numa_topology::presets::paper_skylake_machine;
use numa_topology::NodeId;
use roofline_numa::{solve, ThreadAssignment};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");

    g.bench_function("table1_trace", |b| {
        b.iter(|| {
            let t = table12::table1();
            assert!((t.total_gflops - 254.0).abs() < 1e-9);
            black_box(t)
        })
    });

    g.bench_function("table2_trace", |b| {
        b.iter(|| {
            let t = table12::table2();
            assert!((t.total_gflops - 140.0).abs() < 1e-9);
            black_box(t)
        })
    });

    g.bench_function("figure2_all_scenarios", |b| {
        b.iter(|| {
            let t = table12::figure2();
            assert!(t.max_deviation() < 1e-9);
            black_box(t)
        })
    });

    g.bench_function("figure3_crossnode", |b| {
        b.iter(|| {
            let t = fig3::figure3();
            assert!(t.max_deviation() < 0.01);
            black_box(t)
        })
    });

    // Table III model column only (the simulation side is covered by the
    // memsim_throughput bench).
    g.bench_function("table3_model_column", |b| {
        let machine = paper_skylake_machine();
        let local = skylake_mix();
        let bad = skylake_bad_mix(NodeId(0));
        let uneven = ThreadAssignment::uniform_per_node(&machine, &[1, 1, 1, 17]);
        let even = ThreadAssignment::uniform_per_node(&machine, &[5, 5, 5, 5]);
        let per_node = ThreadAssignment::node_per_app(&machine, 4).unwrap();
        b.iter(|| {
            let r1 = solve(&machine, &local, &uneven).unwrap().total_gflops();
            let r2 = solve(&machine, &local, &even).unwrap().total_gflops();
            let r3 = solve(&machine, &local, &per_node).unwrap().total_gflops();
            let r4 = solve(&machine, &bad, &even).unwrap().total_gflops();
            assert!((r1 - 23.20).abs() < 5e-3);
            assert!((r2 - 18.12).abs() < 5e-3);
            assert!((r3 - 15.18).abs() < 5e-3);
            assert!((r4 - 13.98).abs() < 5e-3);
            black_box((r1, r2, r3, r4))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
