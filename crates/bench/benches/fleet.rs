//! Fleet bench: the slice-vs-event scenario sweep (tenant churn, diurnal
//! load, correlated outages at fleet scales), writing `BENCH_fleet.json`
//! (override the path via the `BENCH_FLEET_JSON` environment variable).
//! Restrict the sweep with `FLEET_SCALES` (e.g. `100x8,1000x64`) and
//! `FLEET_SCENARIOS` (e.g. `churn,outages`). Under `--test` (the CI smoke
//! run) the 5k×256 cell is skipped and each cell runs once instead of
//! best-of-2.
//!
//! `--sim-threads N` caps which parallel event-engine columns are measured
//! (the sweep tries 2 and 8 worker shards). The default cap is the host's
//! available parallelism: on a 2-core runner the 8-shard column is skipped
//! — and printed as skipped, so a thin report is never mistaken for a
//! complete one.

use coop_bench::experiments::fleet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let repeats = if smoke { 1 } else { 2 };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sim_threads_cap = args
        .iter()
        .position(|a| a == "--sim-threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(host_parallelism);
    let scales = fleet::scales_from_env(smoke);
    let scenarios = fleet::scenarios_from_env();

    let skipped: Vec<usize> = fleet::PAR_THREADS
        .into_iter()
        .filter(|&t| t > sim_threads_cap)
        .collect();
    if !skipped.is_empty() {
        println!(
            "parallel columns skipped at shard counts {skipped:?} \
             (cap {sim_threads_cap}, host parallelism {host_parallelism})"
        );
    }

    let mut cells = Vec::new();
    for scenario in &scenarios {
        for scale in &scales {
            // The no-reuse columns re-run a whole engine each; skip them
            // on the biggest cells where the reference run already
            // dominates the sweep's wall time.
            let measure_noreuse = scale.runtimes < 5000;
            let cell = fleet::run_cell(*scenario, scale, measure_noreuse, repeats, sim_threads_cap);
            let par = |ms: Option<f64>, speedup: Option<f64>| match (ms, speedup) {
                (Some(ms), Some(s)) => format!("{ms:>8.2} ms ({s:>4.2}x)"),
                _ => "skipped".to_string(),
            };
            println!(
                "{:<8} {:>5} runtimes x {:>3} nodes over {:>3.1}s: \
                 slice {:>9.2} ms, event {:>8.2} ms, speedup {:>7.1}x, \
                 par2 {}, par8 {}, \
                 {:>6} events ({:>5} segments), gflops rel err {:.2e}",
                cell.scenario,
                cell.runtimes,
                cell.nodes,
                cell.duration_s,
                cell.slice_ms,
                cell.event_ms,
                cell.speedup,
                par(cell.par2_ms, cell.par2_speedup),
                par(cell.par8_ms, cell.par8_speedup),
                cell.events,
                cell.segments,
                cell.gflops_rel_err,
            );
            cells.push(cell);
        }
    }

    let report = serde_json::json!({
        "bench": "fleet",
        "smoke": smoke,
        "quantum_s": 1e-3,
        "host_parallelism": host_parallelism,
        "sim_threads_cap": sim_threads_cap,
        "skipped_par_threads": skipped,
        "cells": cells,
    });
    let path =
        std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| "BENCH_fleet.json".to_string());
    let body = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
    println!("{body}");
}
