//! Fleet bench: the slice-vs-event scenario sweep (tenant churn, diurnal
//! load, correlated outages at fleet scales), writing `BENCH_fleet.json`
//! (override the path via the `BENCH_FLEET_JSON` environment variable).
//! Restrict the sweep with `FLEET_SCALES` (e.g. `100x8,1000x64`) and
//! `FLEET_SCENARIOS` (e.g. `churn,outages`). Under `--test` (the CI smoke
//! run) the 5k×256 cell is skipped and each cell runs once instead of
//! best-of-2.

use coop_bench::experiments::fleet;

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let repeats = if smoke { 1 } else { 2 };
    let scales = fleet::scales_from_env(smoke);
    let scenarios = fleet::scenarios_from_env();

    let mut cells = Vec::new();
    for scenario in &scenarios {
        for scale in &scales {
            // The no-reuse column re-runs the whole slice engine; skip it
            // on the biggest cells where the reference run already
            // dominates the sweep's wall time.
            let measure_noreuse = scale.runtimes < 5000;
            let cell = fleet::run_cell(*scenario, scale, measure_noreuse, repeats);
            println!(
                "{:<8} {:>5} runtimes x {:>3} nodes over {:>3.1}s: \
                 slice {:>9.2} ms, event {:>8.2} ms, speedup {:>7.1}x, \
                 {:>6} events ({:>5} segments), gflops rel err {:.2e}",
                cell.scenario,
                cell.runtimes,
                cell.nodes,
                cell.duration_s,
                cell.slice_ms,
                cell.event_ms,
                cell.speedup,
                cell.events,
                cell.segments,
                cell.gflops_rel_err,
            );
            cells.push(cell);
        }
    }

    let report = serde_json::json!({
        "bench": "fleet",
        "smoke": smoke,
        "quantum_s": 1e-3,
        "cells": cells,
    });
    let path =
        std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| "BENCH_fleet.json".to_string());
    let body = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
    println!("{body}");
}
