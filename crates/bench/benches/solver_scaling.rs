//! A-solver: how the analytic solver's cost scales with machine size and
//! application count. The solver sits on the agent's hot path (the
//! model-guided policy may call it thousands of times per repartition), so
//! its absolute cost matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numa_topology::MachineBuilder;
use roofline_numa::{solve, AppSpec, ThreadAssignment};
use std::hint::black_box;

fn machine(nodes: usize, cores: usize) -> numa_topology::Machine {
    MachineBuilder::new()
        .symmetric_nodes(nodes, cores)
        .core_peak_gflops(10.0)
        .node_bandwidth_gbs(64.0)
        .uniform_link_gbs(12.0)
        .build()
        .unwrap()
}

fn mixed_apps(n: usize, nodes: usize) -> Vec<AppSpec> {
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                AppSpec::numa_bad(
                    &format!("bad{i}"),
                    1.0 / (i + 1) as f64,
                    numa_topology::NodeId(i % nodes),
                )
            } else {
                AppSpec::numa_local(&format!("app{i}"), 0.25 * (i + 1) as f64)
            }
        })
        .collect()
}

fn bench_nodes(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/nodes");
    for nodes in [2usize, 4, 8, 16] {
        let m = machine(nodes, 16);
        let apps = mixed_apps(4, nodes);
        let a = ThreadAssignment::uniform_per_node(&m, &[4, 4, 4, 4]);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| solve(black_box(&m), black_box(&apps), black_box(&a)).unwrap())
        });
    }
    g.finish();
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver/apps");
    let m = machine(4, 32);
    for napps in [2usize, 4, 8, 16] {
        let apps = mixed_apps(napps, 4);
        let counts = vec![32 / napps; napps];
        let a = ThreadAssignment::uniform_per_node(&m, &counts);
        g.bench_with_input(BenchmarkId::from_parameter(napps), &napps, |b, _| {
            b.iter(|| solve(black_box(&m), black_box(&apps), black_box(&a)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nodes, bench_apps);
criterion_main!(benches);
