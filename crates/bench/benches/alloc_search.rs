//! A-search: the allocation-search ablation from DESIGN.md — exhaustive
//! vs greedy vs hill-climbing on the paper's machine, now with the
//! parallel/memoized machinery of docs/performance.md. Criterion measures
//! per-strategy cost; a manual harness times the parallel fan-out and the
//! delta+cache oracle against their sequential/full-solve baselines and
//! writes the figures to `BENCH_alloc_search.json` (override the path via
//! the `BENCH_ALLOC_SEARCH_JSON` environment variable). The JSON is also
//! produced under `cargo bench -- --test`, with shrunk problem sizes, so
//! CI can archive it from a smoke run.

use coop_alloc::{search, Objective, ScoreCache};
use coop_workloads::apps::model_mix;
use criterion::Criterion;
use numa_topology::presets::paper_model_machine;
use numa_topology::Machine;
use roofline_numa::AppSpec;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Twelve apps spanning memory-bound to compute-bound: the uniform space
/// on the paper machine is C(8+12, 12) = 125 970 candidates, big enough
/// that each exhaustive worker gets real chunks to chew on.
fn wide_mix() -> Vec<AppSpec> {
    let mut apps = model_mix();
    for (i, ai) in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .into_iter()
        .enumerate()
    {
        apps.push(AppSpec::numa_local(&format!("x{i}"), ai));
    }
    apps
}

fn bench_searches(c: &mut Criterion, smoke: bool) {
    let machine = paper_model_machine();
    let apps = model_mix();
    let objective = Objective::TotalGflops;

    let mut g = c.benchmark_group("alloc_search");
    g.sample_size(if smoke { 10 } else { 20 });
    g.bench_function("exhaustive_uniform", |b| {
        b.iter(|| {
            search::ExhaustiveSearch::new()
                .run(black_box(&machine), black_box(&apps), black_box(&objective))
                .unwrap()
        })
    });
    if !smoke {
        for threads in [2usize, 8] {
            g.bench_function(format!("exhaustive_wide_{threads}t"), |b| {
                let wide = wide_mix();
                b.iter(|| {
                    search::ExhaustiveSearch::new()
                        .with_threads(threads)
                        .run(black_box(&machine), black_box(&wide), black_box(&objective))
                        .unwrap()
                })
            });
        }
    }
    g.bench_function("greedy", |b| {
        b.iter(|| {
            search::GreedySearch::new()
                .run(black_box(&machine), black_box(&apps), black_box(&objective))
                .unwrap()
        })
    });
    g.bench_function("hill_climb_1000", |b| {
        b.iter(|| {
            search::HillClimb::new()
                .with_iterations(1000)
                .run(black_box(&machine), black_box(&apps), black_box(&objective))
                .unwrap()
        })
    });
    g.bench_function("hill_climb_1000_legacy_oracle", |b| {
        // The pre-delta baseline: every proposal pays a full solve through
        // the boxed-closure oracle.
        b.iter(|| {
            let mut oracle = |a: &roofline_numa::ThreadAssignment| {
                coop_alloc::score(&machine, &apps, a, &objective)
            };
            search::HillClimb::new()
                .with_iterations(1000)
                .run_with_oracle(black_box(&machine), apps.len(), &mut oracle)
                .unwrap()
        })
    });
    g.finish();

    // Quality anchor, printed once.
    let ex = search::ExhaustiveSearch::new()
        .run(&machine, &apps, &objective)
        .unwrap();
    let gr = search::GreedySearch::new()
        .run(&machine, &apps, &objective)
        .unwrap();
    let hc = search::HillClimb::new()
        .with_iterations(1000)
        .run(&machine, &apps, &objective)
        .unwrap();
    println!(
        "quality (GFLOPS / evaluations): exhaustive {:.1}/{}  greedy {:.1}/{}  hill-climb {:.1}/{}",
        ex.score, ex.evaluations, gr.score, gr.evaluations, hc.score, hc.evaluations
    );
}

/// Best-of-`repeats` wall time for one closure, in seconds.
fn time_best<F: FnMut() -> search::SearchResult>(
    repeats: usize,
    mut f: F,
) -> (f64, search::SearchResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one repeat"))
}

/// Times the parallel exhaustive fan-out against the sequential scan of
/// the same candidate space and checks bit-identical results across
/// thread counts; also times a warm-cache rescan.
fn exhaustive_report(machine: &Machine, smoke: bool) -> serde_json::Value {
    let apps = wide_mix();
    let objective = Objective::TotalGflops;
    let repeats = if smoke { 1 } else { 3 };
    let run = |threads: usize| {
        search::ExhaustiveSearch::new()
            .with_threads(threads)
            .run(machine, &apps, &objective)
            .expect("exhaustive search over the wide mix")
    };
    let (seq_s, seq) = time_best(repeats, || run(1));
    let (par2_s, par2) = time_best(repeats, || run(2));
    let (par8_s, par8) = time_best(repeats, || run(8));
    let deterministic = seq.score == par2.score
        && seq.score == par8.score
        && seq.assignment == par2.assignment
        && seq.assignment == par8.assignment;
    assert!(
        deterministic,
        "parallel exhaustive must be bit-identical to sequential"
    );
    // A warm shared cache turns the rescan into pure lookups.
    let fingerprint = search::ModelOracle::new(machine, &apps, &objective)
        .expect("model oracle")
        .fingerprint();
    let cache = Arc::new(ScoreCache::new(fingerprint));
    let rescan = |threads: usize| {
        search::ExhaustiveSearch::new()
            .with_threads(threads)
            .run_cached(machine, &apps, &objective, Some(&cache))
            .expect("cached exhaustive search")
    };
    let (_, cold) = time_best(1, || rescan(1));
    let (cached_s, warm) = time_best(repeats, || rescan(1));
    assert_eq!(cold.assignment, warm.assignment);
    serde_json::json!({
        "candidates": seq.evaluations,
        "seq_ms": seq_s * 1e3,
        "par2_ms": par2_s * 1e3,
        "par8_ms": par8_s * 1e3,
        "cached_rescan_ms": cached_s * 1e3,
        "speedup_2_threads": seq_s / par2_s,
        "speedup_8_threads": seq_s / par8_s,
        "speedup_cached_rescan": seq_s / cached_s,
        "cache_hits_on_rescan": warm.counters.cache_hits,
        "deterministic_across_thread_counts": deterministic,
        "best_gflops": seq.score,
    })
}

/// Measures the full-solve reduction that the delta+cache oracle buys a
/// local search against the legacy boxed-closure oracle (one full solve
/// per proposal).
fn local_search_report(
    machine: &Machine,
    apps: &[AppSpec],
    iterations: usize,
    anneal: bool,
) -> serde_json::Value {
    let objective = Objective::TotalGflops;
    let legacy = {
        let mut oracle =
            |a: &roofline_numa::ThreadAssignment| coop_alloc::score(machine, apps, a, &objective);
        if anneal {
            search::SimulatedAnnealing::new()
                .with_iterations(iterations)
                .with_seed(7)
                .run_with_oracle(machine, apps.len(), &mut oracle)
        } else {
            search::HillClimb::new()
                .with_iterations(iterations)
                .with_seed(7)
                .run_with_oracle(machine, apps.len(), &mut oracle)
        }
        .expect("legacy-oracle local search")
    };
    let (model_s, model) = time_best(1, || {
        let base = search::ModelOracle::new(machine, apps, &objective).expect("model oracle");
        let cache = Arc::new(ScoreCache::new(base.fingerprint()));
        let mut oracle = base
            .with_cache(cache)
            .expect("a freshly keyed cache always matches its oracle");
        if anneal {
            search::SimulatedAnnealing::new()
                .with_iterations(iterations)
                .with_seed(7)
                .run_model(machine, &mut oracle)
        } else {
            search::HillClimb::new()
                .with_iterations(iterations)
                .with_seed(7)
                .run_model(machine, &mut oracle)
        }
        .expect("model-oracle local search")
    });
    // The legacy path answers every evaluation with a full solve; the
    // model oracle answers them with deltas and cache hits.
    let baseline_full = legacy.evaluations as u64;
    let reduction = baseline_full as f64 / model.counters.full_solves.max(1) as f64;
    serde_json::json!({
        "iterations": iterations,
        "seconds": model_s,
        "baseline_full_solves": baseline_full,
        "full_solves": model.counters.full_solves,
        "delta_solves": model.counters.delta_solves,
        "cache_hits": model.counters.cache_hits,
        "full_solve_reduction": reduction,
        "legacy_gflops": legacy.score,
        "model_gflops": model.score,
    })
}

/// Races a multi-seed portfolio across threads as a cost/quality anchor.
fn portfolio_report(machine: &Machine, apps: &[AppSpec], iterations: usize) -> serde_json::Value {
    let objective = Objective::TotalGflops;
    let portfolio = search::Portfolio::new()
        .with_seeds((0..8u64).collect())
        .with_threads(8);
    let cache = Arc::new(ScoreCache::new(
        search::ModelOracle::new(machine, apps, &objective)
            .expect("model oracle")
            .fingerprint(),
    ));
    let (secs, result) = time_best(1, || {
        search::HillClimb::new()
            .with_iterations(iterations)
            .run_portfolio(machine, apps, &objective, &portfolio, Some(&cache))
            .expect("portfolio hill climb")
    });
    let stats = cache.stats();
    serde_json::json!({
        "seeds": 8,
        "threads": 8,
        "iterations_per_seed": iterations,
        "seconds": secs,
        "best_gflops": result.score,
        "evaluations": result.evaluations,
        "cache_hits": stats.hits,
        "cache_inserts": stats.inserts,
    })
}

fn write_report(smoke: bool) {
    let machine = paper_model_machine();
    let apps = model_mix();
    let iterations = if smoke { 300 } else { 3000 };
    let report = serde_json::json!({
        "bench": "alloc_search",
        "smoke": smoke,
        "exhaustive": exhaustive_report(&machine, smoke),
        "hill_climb": local_search_report(&machine, &apps, iterations, false),
        "annealing": local_search_report(&machine, &apps, iterations, true),
        "portfolio": portfolio_report(&machine, &apps, iterations),
    });
    let path = std::env::var("BENCH_ALLOC_SEARCH_JSON")
        .unwrap_or_else(|_| "BENCH_alloc_search.json".to_string());
    let body = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
    println!("{body}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut criterion = Criterion::default().configure_from_args();
    bench_searches(&mut criterion, smoke);
    criterion.final_summary();
    write_report(smoke);
}
