//! A-search: the allocation-search ablation from DESIGN.md — exhaustive
//! vs greedy vs hill-climbing on the paper's machine. Criterion measures
//! the cost; the `quality` group prints the achieved objective as a
//! sanity anchor (greedy should match the uniform-exhaustive optimum here
//! at a fraction of the evaluations).

use coop_alloc::{search, Objective};
use coop_workloads::apps::model_mix;
use criterion::{criterion_group, criterion_main, Criterion};
use numa_topology::presets::paper_model_machine;
use std::hint::black_box;

fn bench_searches(c: &mut Criterion) {
    let machine = paper_model_machine();
    let apps = model_mix();

    let mut g = c.benchmark_group("alloc_search");
    g.sample_size(20);
    g.bench_function("exhaustive_uniform", |b| {
        b.iter(|| {
            search::ExhaustiveSearch::new()
                .run(
                    black_box(&machine),
                    black_box(&apps),
                    Objective::TotalGflops,
                )
                .unwrap()
        })
    });
    g.bench_function("greedy", |b| {
        b.iter(|| {
            search::GreedySearch::new()
                .run(
                    black_box(&machine),
                    black_box(&apps),
                    Objective::TotalGflops,
                )
                .unwrap()
        })
    });
    g.bench_function("hill_climb_1000", |b| {
        b.iter(|| {
            search::HillClimb::new()
                .with_iterations(1000)
                .run(
                    black_box(&machine),
                    black_box(&apps),
                    Objective::TotalGflops,
                )
                .unwrap()
        })
    });
    g.finish();

    // Quality anchor, printed once.
    let ex = search::ExhaustiveSearch::new()
        .run(&machine, &apps, Objective::TotalGflops)
        .unwrap();
    let gr = search::GreedySearch::new()
        .run(&machine, &apps, Objective::TotalGflops)
        .unwrap();
    let hc = search::HillClimb::new()
        .with_iterations(1000)
        .run(&machine, &apps, Objective::TotalGflops)
        .unwrap();
    println!(
        "quality (GFLOPS / evaluations): exhaustive {:.1}/{}  greedy {:.1}/{}  hill-climb {:.1}/{}",
        ex.score, ex.evaluations, gr.score, gr.evaluations, hc.score, hc.evaluations
    );
}

criterion_group!(benches, bench_searches);
criterion_main!(benches);
