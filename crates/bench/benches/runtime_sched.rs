//! Scheduler A/B: the work-stealing overhaul (per-worker deques,
//! event-counted parking, sharded task graph) against the legacy shared
//! injector + 1 ms condvar poll, which is still available as
//! [`SchedulerKind::SharedInjector`].
//!
//! Three graph shapes stress different scheduler paths:
//!
//! * **fan-out/fan-in** — rounds of `W` independent tasks joined by a
//!   latch; contention on the ready queues, the shape where a single
//!   shared injector serializes everyone.
//! * **chain** — a linear dependency chain; pure wakeup latency, one
//!   ready task at a time.
//! * **random DAG** — tasks depending on up to two of the last 64 finish
//!   events (deterministic LCG); mixed subscription/fast-path traffic on
//!   the sharded graph.
//!
//! Each shape runs on 1, 4 and 16 workers under both schedulers; the
//! manual harness reports tasks/sec and the new/old speedup per cell to
//! `BENCH_runtime_sched.json` (override the path via the
//! `BENCH_RUNTIME_SCHED_JSON` environment variable). The JSON is also
//! produced under `cargo bench -- --test` with shrunk sizes so CI can
//! archive it from a smoke run.
//!
//! A second sweep is the **tracing overhead gate**: the fan-out shape
//! (densest per-task event traffic) under three telemetry modes — no hub
//! at all, hub attached with per-task tracing off (the production
//! default, byte-identical to the pre-tracing hub configuration), and
//! hub attached with causal tracing on. Tracing is a runtime flag
//! checked once per instrumentation site, so `tracing_off_tasks_per_sec`
//! must track the archived value from earlier runs — the cost of the
//! tracing feature when disabled is the flag check and nothing else; all
//! per-hop event recording shows up only in the `tracing_on` column.

use coop_runtime::{Runtime, RuntimeConfig, SchedulerKind, TelemetryHub};
use criterion::Criterion;
use numa_topology::{Machine, MachineBuilder};
use std::sync::Arc;
use std::time::Instant;

fn machine(nodes: usize, cores_per_node: usize) -> Machine {
    MachineBuilder::new()
        .symmetric_nodes(nodes, cores_per_node)
        .core_peak_gflops(1.0)
        .node_bandwidth_gbs(10.0)
        .uniform_link_gbs(5.0)
        .build()
        .expect("symmetric bench machine")
}

/// The three machine sizes of the sweep: (label, machine). Worker count
/// equals total cores.
fn sweep_machines() -> Vec<(&'static str, Machine)> {
    vec![
        ("1", machine(1, 1)),
        ("4", machine(2, 2)),
        ("16", machine(2, 8)),
    ]
}

fn start(name: &str, m: &Machine, kind: SchedulerKind) -> Runtime {
    Runtime::start(RuntimeConfig::new(name, m.clone()).with_scheduler(kind))
        .expect("runtime starts")
}

/// Telemetry attachment modes for the tracing overhead gate.
#[derive(Clone, Copy)]
enum Tracing {
    /// No telemetry hub at all — the historical baseline column.
    Baseline,
    /// Hub attached, per-task tracing off: the production default.
    Off,
    /// Hub attached with causal task tracing enabled.
    On,
}

impl Tracing {
    fn label(self) -> &'static str {
        match self {
            Tracing::Baseline => "baseline",
            Tracing::Off => "tracing_off",
            Tracing::On => "tracing_on",
        }
    }
}

fn start_mode(name: &str, m: &Machine, kind: SchedulerKind, mode: Tracing) -> Runtime {
    let mut cfg = RuntimeConfig::new(name, m.clone()).with_scheduler(kind);
    match mode {
        Tracing::Baseline => {}
        Tracing::Off => cfg = cfg.with_telemetry(Arc::new(TelemetryHub::new())),
        Tracing::On => {
            cfg = cfg
                .with_telemetry(Arc::new(TelemetryHub::new()))
                .with_task_tracing();
        }
    }
    Runtime::start(cfg).expect("runtime starts")
}

/// Deterministic LCG (MMIX constants) for the random-DAG shape.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Rounds of `width` no-op tasks, each round gated on the previous
/// round's latch. Returns the task count.
fn run_fanout(rt: &Runtime, rounds: usize, width: usize) -> u64 {
    let mut gate: Option<coop_runtime::Event> = None;
    for r in 0..rounds {
        let joined = rt.new_latch_event(width as u64);
        for i in 0..width {
            let mut b = rt.task(&format!("f{r}-{i}")).body({
                let joined = joined.clone();
                move |ctx| ctx.satisfy(&joined)
            });
            if let Some(g) = &gate {
                b = b.depends_on(g);
            }
            b.spawn().expect("spawn fan-out task");
        }
        gate = Some(joined);
    }
    rt.wait_quiescent().expect("fan-out drains");
    (rounds * width) as u64
}

/// A linear chain of `len` tasks linked by finish events.
fn run_chain(rt: &Runtime, len: usize) -> u64 {
    let mut prev: Option<coop_runtime::Event> = None;
    for i in 0..len {
        let mut b = rt.task(&format!("c{i}")).body(|_| {});
        if let Some(p) = &prev {
            b = b.depends_on(p);
        }
        let (_, finish) = b.spawn_with_finish().expect("spawn chain task");
        prev = Some(finish);
    }
    rt.wait_quiescent().expect("chain drains");
    len as u64
}

/// `count` tasks, each depending on up to two of the last 64 finish
/// events, with occasional affinity hints and high priorities.
fn run_random_dag(rt: &Runtime, count: usize, nodes: usize) -> u64 {
    const RING: usize = 64;
    let mut rng = Lcg(0x0da6_0da6_0da6_0da6_u64);
    let mut recent: Vec<coop_runtime::Event> = Vec::with_capacity(RING);
    for i in 0..count {
        let r = rng.next();
        let mut b = rt.task(&format!("d{i}")).body(|_| {});
        if r % 3 == 0 {
            b = b.affinity(numa_topology::NodeId((r as usize >> 3) % nodes));
        }
        if r % 13 == 0 {
            b = b.high_priority();
        }
        for pick in 0..(r % 3) {
            if !recent.is_empty() {
                let idx = ((r >> (8 + 8 * pick)) as usize) % recent.len();
                b = b.depends_on(&recent[idx]);
            }
        }
        let (_, finish) = b.spawn_with_finish().expect("spawn dag task");
        if recent.len() < RING {
            recent.push(finish);
        } else {
            recent[i % RING] = finish;
        }
    }
    rt.wait_quiescent().expect("dag drains");
    count as u64
}

/// Wall-clock one workload (spawn + drain) on a fresh runtime; best of
/// `repeats`. Returns tasks/sec.
fn measure(
    label: &str,
    m: &Machine,
    kind: SchedulerKind,
    repeats: usize,
    run: impl Fn(&Runtime) -> u64,
) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..repeats.max(1) {
        let rt = start(&format!("{label}-{rep}"), m, kind);
        let t0 = Instant::now();
        let tasks = run(&rt);
        let rate = tasks as f64 / t0.elapsed().as_secs_f64();
        rt.shutdown();
        best = best.max(rate);
    }
    best
}

/// Like [`measure`], but under an explicit telemetry mode.
fn measure_mode(
    label: &str,
    m: &Machine,
    kind: SchedulerKind,
    mode: Tracing,
    repeats: usize,
    run: impl Fn(&Runtime) -> u64,
) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..repeats.max(1) {
        let rt = start_mode(&format!("{label}-{rep}"), m, kind, mode);
        let t0 = Instant::now();
        let tasks = run(&rt);
        let rate = tasks as f64 / t0.elapsed().as_secs_f64();
        rt.shutdown();
        best = best.max(rate);
    }
    best
}

/// The tracing overhead gate: fan-out/fan-in (densest per-task event
/// traffic) on the work-stealing scheduler under the three telemetry
/// modes. The column that matters is `tracing_off_tasks_per_sec`: hub
/// attached, tracing off is byte-identical to the pre-tracing hub
/// configuration, so it must hold steady across archived runs. The
/// overhead-pct columns attribute the remaining deltas: off-vs-baseline
/// is the hub's own (pre-existing) per-task accounting, on-vs-baseline
/// is what causal tracing actually buys into.
fn tracing_overhead_report(smoke: bool) -> serde_json::Value {
    let (rounds, width, repeats) = if smoke { (10, 50, 1) } else { (50, 400, 3) };
    let mut cells = Vec::new();
    for (workers, m) in sweep_machines() {
        let rate = |mode: Tracing| {
            measure_mode(
                &format!("trace-{}-{workers}w", mode.label()),
                &m,
                SchedulerKind::WorkStealing,
                mode,
                repeats,
                |rt| run_fanout(rt, rounds, width),
            )
        };
        let baseline = rate(Tracing::Baseline);
        let off = rate(Tracing::Off);
        let on = rate(Tracing::On);
        let off_overhead_pct = (baseline / off.max(1e-9) - 1.0) * 100.0;
        let on_overhead_pct = (baseline / on.max(1e-9) - 1.0) * 100.0;
        println!(
            "  tracing gate @ {workers:>2} workers: baseline {baseline:>12.0} t/s, \
             off {off:>12.0} t/s ({off_overhead_pct:+.1}%), \
             on {on:>12.0} t/s ({on_overhead_pct:+.1}%)"
        );
        cells.push(serde_json::json!({
            "workers": workers.parse::<u64>().expect("numeric label"),
            "baseline_tasks_per_sec": baseline,
            "tracing_off_tasks_per_sec": off,
            "tracing_on_tasks_per_sec": on,
            "tracing_off_overhead_pct": off_overhead_pct,
            "tracing_on_overhead_pct": on_overhead_pct,
        }));
    }
    serde_json::json!({
        "shape": "fanout_fanin",
        "scheduler": "work_stealing",
        "workloads": { "rounds": rounds, "width": width },
        "cells": cells,
    })
}

/// The fuel-budget overhead gate: fan-out/fan-in on the work-stealing
/// scheduler with budgets disabled (no fuel accounting anywhere on the
/// hot path) against every task carrying a 128-unit budget. Fuel is
/// decremented only at safe points (spawn and yield checkpoints), so the
/// `budget_overhead_pct` column is the whole price of the preemption
/// machinery for compliant tenants — the acceptance gate keeps it under
/// a couple of percent.
fn budget_overhead_report(smoke: bool) -> serde_json::Value {
    let (rounds, width, repeats) = if smoke { (10, 50, 1) } else { (50, 400, 3) };
    let mut cells = Vec::new();
    for (workers, m) in sweep_machines() {
        let rate = |fuel: Option<u64>| {
            let mut best = 0.0f64;
            for rep in 0..repeats.max(1) {
                let mut cfg = RuntimeConfig::new(&format!("budget-{workers}w-{rep}"), m.clone())
                    .with_scheduler(SchedulerKind::WorkStealing);
                if let Some(units) = fuel {
                    cfg = cfg.with_task_fuel(units);
                }
                let rt = Runtime::start(cfg).expect("runtime starts");
                let t0 = Instant::now();
                let tasks = run_fanout(&rt, rounds, width);
                let r = tasks as f64 / t0.elapsed().as_secs_f64();
                rt.shutdown();
                best = best.max(r);
            }
            best
        };
        let off = rate(None);
        let on = rate(Some(128));
        let budget_overhead_pct = (off / on.max(1e-9) - 1.0) * 100.0;
        println!(
            "   budget gate @ {workers:>2} workers: off {off:>12.0} t/s, \
             on {on:>12.0} t/s ({budget_overhead_pct:+.1}%)"
        );
        cells.push(serde_json::json!({
            "workers": workers.parse::<u64>().expect("numeric label"),
            "budgets_off_tasks_per_sec": off,
            "budgets_on_tasks_per_sec": on,
            "budget_overhead_pct": budget_overhead_pct,
        }));
    }
    serde_json::json!({
        "shape": "fanout_fanin",
        "scheduler": "work_stealing",
        "task_fuel": 128,
        "workloads": { "rounds": rounds, "width": width },
        "cells": cells,
    })
}

fn scheduler_report(smoke: bool) -> serde_json::Value {
    let (rounds, width, chain_len, dag_tasks, repeats) = if smoke {
        (10, 50, 500, 2_000, 1)
    } else {
        (50, 400, 4_000, 40_000, 3)
    };
    let mut cells = Vec::new();
    for (workers, m) in sweep_machines() {
        let nodes = m.num_nodes();
        let shapes: Vec<(&str, Box<dyn Fn(&Runtime) -> u64>)> = vec![
            (
                "fanout_fanin",
                Box::new(move |rt: &Runtime| run_fanout(rt, rounds, width)),
            ),
            (
                "chain",
                Box::new(move |rt: &Runtime| run_chain(rt, chain_len)),
            ),
            (
                "random_dag",
                Box::new(move |rt: &Runtime| run_random_dag(rt, dag_tasks, nodes)),
            ),
        ];
        for (shape, run) in shapes {
            let new_rate = measure(
                &format!("ws-{shape}-{workers}w"),
                &m,
                SchedulerKind::WorkStealing,
                repeats,
                &run,
            );
            let old_rate = measure(
                &format!("legacy-{shape}-{workers}w"),
                &m,
                SchedulerKind::SharedInjector,
                repeats,
                &run,
            );
            let speedup = new_rate / old_rate.max(1e-9);
            println!(
                "{shape:>13} @ {workers:>2} workers: work-stealing {new_rate:>12.0} t/s, \
                 shared-injector {old_rate:>12.0} t/s, speedup {speedup:.2}x"
            );
            cells.push(serde_json::json!({
                "shape": shape,
                "workers": workers.parse::<u64>().expect("numeric label"),
                "work_stealing_tasks_per_sec": new_rate,
                "shared_injector_tasks_per_sec": old_rate,
                "speedup": speedup,
            }));
        }
    }
    serde_json::json!({
        "bench": "runtime_sched",
        "smoke": smoke,
        "workloads": {
            "fanout_fanin": { "rounds": rounds, "width": width },
            "chain": { "len": chain_len },
            "random_dag": { "tasks": dag_tasks },
        },
        "cells": cells,
        "tracing": tracing_overhead_report(smoke),
        "budget": budget_overhead_report(smoke),
    })
}

fn bench_schedulers(c: &mut Criterion, smoke: bool) {
    let m = machine(2, 2);
    let (rounds, width) = if smoke { (5, 20) } else { (20, 100) };
    let mut g = c.benchmark_group("runtime_sched");
    g.sample_size(10);
    for (name, kind) in [
        ("fanout_work_stealing", SchedulerKind::WorkStealing),
        ("fanout_shared_injector", SchedulerKind::SharedInjector),
    ] {
        g.bench_function(name, |b| {
            b.iter_with_large_drop(|| {
                let rt = start(name, &m, kind);
                run_fanout(&rt, rounds, width);
                rt.shutdown();
                rt
            })
        });
    }
    g.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut criterion = Criterion::default().configure_from_args();
    bench_schedulers(&mut criterion, smoke);
    criterion.final_summary();
    let report = scheduler_report(smoke);
    let path = std::env::var("BENCH_RUNTIME_SCHED_JSON")
        .unwrap_or_else(|_| "BENCH_runtime_sched.json".to_string());
    let body = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    match std::fs::write(&path, &body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
    println!("{body}");
}
