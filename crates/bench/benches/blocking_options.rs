//! A-blocking: convergence latency of the paper's three thread-blocking
//! options. The paper claims blocking happens at the next task boundary
//! (or immediately when idle) and unblocking is "nearly immediate"; this
//! bench measures the command-to-converged latency for each option on an
//! idle runtime.

use coop_runtime::{Runtime, RuntimeConfig, ThreadCommand};
use criterion::{criterion_group, criterion_main, Criterion};
use numa_topology::presets::paper_model_machine;
use numa_topology::CpuSet;
use std::time::Duration;

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocking_options");
    g.sample_size(20);

    // Option 1: total thread count. Measure shrink to half + restore.
    g.bench_function("option1_total_threads", |b| {
        let rt = Runtime::start(RuntimeConfig::new("opt1", paper_model_machine())).unwrap();
        let ctl = rt.control();
        b.iter(|| {
            ctl.apply(ThreadCommand::TotalThreads(16)).unwrap();
            assert!(ctl.wait_converged(Duration::from_secs(5), |run, _| run <= 16));
            ctl.apply(ThreadCommand::Unrestricted).unwrap();
            assert!(ctl.wait_converged(Duration::from_secs(5), |run, _| run == 32));
        });
        rt.shutdown();
    });

    // Option 2: individual cores.
    g.bench_function("option2_individual_cores", |b| {
        let rt = Runtime::start(RuntimeConfig::new("opt2", paper_model_machine())).unwrap();
        let ctl = rt.control();
        let half = CpuSet::from_range(0, 16);
        b.iter(|| {
            ctl.apply(ThreadCommand::BlockCores(half.clone())).unwrap();
            assert!(ctl.wait_converged(Duration::from_secs(5), |run, _| run == 16));
            ctl.apply(ThreadCommand::Unrestricted).unwrap();
            assert!(ctl.wait_converged(Duration::from_secs(5), |run, _| run == 32));
        });
        rt.shutdown();
    });

    // Option 3: threads per NUMA node.
    g.bench_function("option3_per_node", |b| {
        let rt = Runtime::start(RuntimeConfig::new("opt3", paper_model_machine())).unwrap();
        let ctl = rt.control();
        b.iter(|| {
            ctl.apply(ThreadCommand::PerNode(vec![4, 4, 4, 4])).unwrap();
            assert!(ctl.wait_converged(Duration::from_secs(5), |_, per| {
                per.iter().all(|&p| p <= 4)
            }));
            ctl.apply(ThreadCommand::Unrestricted).unwrap();
            assert!(ctl.wait_converged(Duration::from_secs(5), |run, _| run == 32));
        });
        rt.shutdown();
    });

    g.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
