//! O-bench: tenant observatory overhead — the cost of booking one
//! accounting window (`TenantLedger::tick`) as the tenant count grows,
//! a combined ledger-tick + SLO-evaluation pass (the work the agent adds
//! to every decision tick when an observer installs the observatory),
//! and the raw Jain's-index fold. The observatory is strictly off the
//! task hot path — these numbers bound the *decision-tick* overhead, so
//! they should stay in the low microseconds for realistic tenant counts.

use coop_telemetry::{jain_index, SloEngine, SloSpec, TelemetryHub, TenantLedger, TenantSample};
use criterion::{Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

/// Monotonically growing cumulative samples for `n` tenants: `round`
/// scales every counter so consecutive ticks always book forward deltas.
fn samples(n: usize, round: u64) -> Vec<TenantSample> {
    (0..n)
        .map(|i| TenantSample {
            tenant: format!("tenant{i}"),
            tasks_executed: round * (100 + i as u64),
            uptime_us: round * 10_000,
            per_node_tasks: vec![round * 50, round * 50],
            running_per_node: vec![1, 1],
            local_pops: round * 90,
            remote_steals: round * 10,
            preemptions: round,
            overbudget_cpu_us: round * 100,
        })
        .collect()
}

fn bench_observatory(c: &mut Criterion) {
    let mut g = c.benchmark_group("tenant_ledger");
    for (n, name) in [
        (2usize, "tick/2_tenants"),
        (8, "tick/8_tenants"),
        (32, "tick/32_tenants"),
    ] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(name, |b| {
            let hub = TelemetryHub::new();
            let ledger = TenantLedger::new();
            let mut round = 1u64;
            b.iter(|| {
                ledger.tick(&hub, round * 10_000, &samples(n, round));
                round += 1;
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("slo_engine");
    g.bench_function("tick_and_evaluate/8_tenants", |b| {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        hub.install_tenant_ledger(Arc::clone(&ledger));
        let engine = SloEngine::new(
            (0..8)
                .map(|i| SloSpec::min_share(&format!("tenant{i}"), 0.05))
                .collect(),
        );
        let mut round = 1u64;
        b.iter(|| {
            ledger.tick(&hub, round * 10_000, &samples(8, round));
            engine.evaluate(&hub, round * 10_000);
            round += 1;
        })
    });
    g.finish();

    c.bench_function("jain_index/32_shares", |b| {
        let shares: Vec<f64> = (0..32).map(|i| 1.0 / (1.0 + i as f64)).collect();
        b.iter(|| black_box(jain_index(black_box(&shares))))
    });
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_observatory(&mut criterion);
    criterion.final_summary();
}
