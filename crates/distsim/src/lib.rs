//! # distsim
//!
//! A simulator for §V of the paper ("Distributed environment"): how does a
//! *local*, per-node speedup — obtained by dynamic CPU-core allocation
//! between cooperating components — translate into *overall* speedup of an
//! MPI-style distributed application?
//!
//! The paper's qualitative claims, which this crate makes quantitative:
//!
//! * With **static work allocation**, "we should attempt to provide some
//!   speedup on all nodes, favoring stability over maximal performance" —
//!   a barrier-synchronized code is dragged down to its slowest node, so
//!   variance in local speedup is poison.
//! * With **dynamic work redistribution** "we might be able to use more
//!   aggressive strategies".
//! * "If the code requires a barrier after every iteration, the benefit of
//!   speeding up the iteration body on some of the nodes is rather
//!   limited. If the synchronization is loose ... most of the local
//!   speedup should translate to overall speedup."
//!
//! The model: a [`Cluster`] of ranks, each with a base execution rate and
//! a local speedup factor (what the on-node agent achieved); a
//! [`Workload`] of work units, either pre-partitioned ([`Distribution::Static`])
//! or pulled from a shared pool ([`Distribution::Dynamic`]); and either a
//! barrier after every iteration ([`Synchronization::Tight`]) or one big
//! bag of independent units ([`Synchronization::Loose`]) — "many big data
//! applications behave this way".
//!
//! ## Example
//!
//! ```
//! use distsim::{Cluster, Distribution, Synchronization, Workload, simulate};
//!
//! let cluster = Cluster::uniform(8, 1.0).with_speedups(&[1.3, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
//! let tight = Workload::new(800, 1.0).iterations(10)
//!     .sync(Synchronization::Tight)
//!     .distribution(Distribution::Static);
//! let r = simulate(&cluster, &tight, 0);
//! // One fast node in a barrier-synchronized static code: no benefit.
//! assert!(r.speedup_vs_uniform < 1.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use memsim::Component as _;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A cluster of compute nodes (MPI ranks, one per node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Base execution rate of each rank, work units per second, before any
    /// local speedup.
    pub base_rates: Vec<f64>,
    /// Local speedup factor per rank (1.0 = no co-allocation benefit).
    pub speedups: Vec<f64>,
}

impl Cluster {
    /// `ranks` identical nodes at `rate` units/second, speedup 1.
    pub fn uniform(ranks: usize, rate: f64) -> Self {
        Cluster {
            base_rates: vec![rate; ranks],
            speedups: vec![1.0; ranks],
        }
    }

    /// Sets per-rank speedups (length must match).
    pub fn with_speedups(mut self, speedups: &[f64]) -> Self {
        assert_eq!(
            speedups.len(),
            self.base_rates.len(),
            "one speedup per rank"
        );
        self.speedups = speedups.to_vec();
        self
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.base_rates.len()
    }

    /// Effective rate of rank `i`.
    pub fn rate(&self, i: usize) -> f64 {
        self.base_rates[i] * self.speedups[i]
    }

    /// Mean local speedup across ranks.
    pub fn mean_speedup(&self) -> f64 {
        self.speedups.iter().sum::<f64>() / self.speedups.len() as f64
    }
}

/// How work units are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// Pre-partitioned evenly by unit index (the usual static MPI
    /// decomposition).
    Static,
    /// Ranks pull the next unit from a shared pool when they finish one
    /// (work stealing / master-worker).
    Dynamic,
}

/// How ranks synchronize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Synchronization {
    /// A barrier after every iteration; each iteration contains
    /// `units / iterations` units.
    Tight,
    /// No barriers: one big bag of independent units.
    Loose,
}

/// A distributed workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Total number of work units.
    pub units: usize,
    /// Mean cost of one unit, seconds at rate 1.
    pub unit_work: f64,
    /// Number of barrier-delimited iterations (only for `Tight`).
    pub iterations_count: usize,
    /// Synchronization style.
    pub sync: Synchronization,
    /// Distribution style.
    pub dist: Distribution,
    /// Coefficient of variation of per-unit cost (0 = uniform units).
    pub unit_cv: f64,
    /// Fractional per-unit overhead of *dynamic* distribution (the
    /// master-worker round trip / steal cost). 0 = free; 0.05 means every
    /// dynamically-pulled unit costs 5% extra. Static distribution never
    /// pays it.
    pub dynamic_overhead: f64,
}

impl Workload {
    /// A loose/static workload of `units` units costing `unit_work` each.
    pub fn new(units: usize, unit_work: f64) -> Self {
        Workload {
            units,
            unit_work,
            iterations_count: 1,
            sync: Synchronization::Loose,
            dist: Distribution::Static,
            unit_cv: 0.0,
            dynamic_overhead: 0.0,
        }
    }

    /// Sets the iteration count (tight synchronization granularity).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations_count = n.max(1);
        self
    }

    /// Sets the synchronization style.
    pub fn sync(mut self, sync: Synchronization) -> Self {
        self.sync = sync;
        self
    }

    /// Sets the distribution style.
    pub fn distribution(mut self, dist: Distribution) -> Self {
        self.dist = dist;
        self
    }

    /// Sets per-unit cost variability.
    pub fn unit_variability(mut self, cv: f64) -> Self {
        self.unit_cv = cv;
        self
    }

    /// Sets the per-unit overhead of dynamic distribution.
    pub fn with_dynamic_overhead(mut self, overhead: f64) -> Self {
        self.dynamic_overhead = overhead;
        self
    }
}

/// Result of a distributed simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistReport {
    /// Wall-clock makespan, seconds.
    pub makespan_s: f64,
    /// Makespan of the same workload on the same cluster with all local
    /// speedups forced to 1 (the "no co-allocation" baseline).
    pub baseline_s: f64,
    /// `baseline / makespan` — the overall speedup delivered.
    pub speedup_vs_uniform: f64,
    /// Mean local speedup of the cluster (what the on-node layer claims).
    pub mean_local_speedup: f64,
    /// How much of the local speedup survived:
    /// `(overall - 1) / (mean_local - 1)`; 1.0 = perfect translation,
    /// 0.0 = none. `NaN` when mean local speedup is exactly 1.
    pub translation_efficiency: f64,
    /// Per-rank busy time, seconds (for load-balance inspection).
    pub rank_busy_s: Vec<f64>,
}

/// Simulates the workload on the cluster. Deterministic per `seed` (the
/// seed only matters when `unit_cv > 0`).
pub fn simulate(cluster: &Cluster, workload: &Workload, seed: u64) -> DistReport {
    simulate_with_engine(cluster, workload, seed, memsim::EngineKind::Slice)
}

/// Like [`simulate`], selecting which execution core drives the dynamic
/// distribution stage.
///
/// Under [`memsim::EngineKind::Event`] every rank becomes a
/// [`memsim::Component`] on memsim's deterministic event heap
/// ([`memsim::EventHeap`] with [`memsim::TieBreak::ById`]): a rank's
/// completion of its current unit is a heap event, and the pool hands the
/// next unit to whichever rank pops first. `ById` tie-breaking reproduces
/// the reference greedy scheduler exactly — `min_by` over per-rank clocks
/// returns the *first* (lowest-index) minimum, and the heap orders equal
/// times by component id. Static distribution has no events (one closed-
/// form partition per iteration), so both engines share that path.
pub fn simulate_with_engine(
    cluster: &Cluster,
    workload: &Workload,
    seed: u64,
    engine: memsim::EngineKind,
) -> DistReport {
    simulate_with_engine_sharded(cluster, workload, seed, engine, 1)
}

/// Like [`simulate_with_engine`], splitting the rank components across
/// `shards` per-shard event heaps (the fleet engine's decomposition).
///
/// Ranks are partitioned contiguously; each shard keeps its own
/// [`memsim::EventHeap`], and the pool pops the global minimum by comparing
/// shard heads with [`memsim::EventHeap::peek`] — the lexicographic
/// `(tick, tie, id)` order a single combined heap would use. Under
/// [`memsim::TieBreak::ById`] the tie key *is* the rank id, so the merge is
/// bit-identical to the unsharded engine at any shard count. `shards` is
/// clamped to `1..=ranks`.
pub fn simulate_with_engine_sharded(
    cluster: &Cluster,
    workload: &Workload,
    seed: u64,
    engine: memsim::EngineKind,
    shards: usize,
) -> DistReport {
    let makespan = run_on(cluster, workload, seed, false, engine, shards);
    let baseline = run_on(cluster, workload, seed, true, engine, shards);
    let mean_local = cluster.mean_speedup();
    let overall = baseline.0 / makespan.0;
    DistReport {
        makespan_s: makespan.0,
        baseline_s: baseline.0,
        speedup_vs_uniform: overall,
        mean_local_speedup: mean_local,
        translation_efficiency: (overall - 1.0) / (mean_local - 1.0),
        rank_busy_s: makespan.1,
    }
}

/// One MPI rank as a component on memsim's shared event heap: its next
/// wake-up is the completion time of the unit it is executing.
struct RankComponent {
    rate: f64,
    clock_s: f64,
    busy_s: f64,
}

impl RankComponent {
    /// Executes one unit of `cost_s` seconds-at-rate-1 work.
    fn pull(&mut self, cost_s: f64) {
        let t = cost_s / self.rate;
        self.clock_s += t;
        self.busy_s += t;
    }
}

impl memsim::Component for RankComponent {
    fn next_tick(&self) -> Option<memsim::event::Tick> {
        Some(memsim::event::s_to_tick(self.clock_s))
    }

    fn advance(&mut self, _now: memsim::event::Tick) {
        // A rank's state only changes when the pool hands it a unit
        // (`pull`); popping its completion event carries no other effect.
    }
}

/// Returns (makespan, per-rank busy time).
fn run(cluster: &Cluster, workload: &Workload, seed: u64, force_uniform: bool) -> (f64, Vec<f64>) {
    run_on(
        cluster,
        workload,
        seed,
        force_uniform,
        memsim::EngineKind::Slice,
        1,
    )
}

/// Returns (makespan, per-rank busy time), on the selected engine.
fn run_on(
    cluster: &Cluster,
    workload: &Workload,
    seed: u64,
    force_uniform: bool,
    engine: memsim::EngineKind,
    shards: usize,
) -> (f64, Vec<f64>) {
    let ranks = cluster.ranks();
    let rate = |i: usize| {
        if force_uniform {
            cluster.base_rates[i]
        } else {
            cluster.rate(i)
        }
    };

    // Generate per-unit costs (deterministic; shared by both runs).
    let mut rng = StdRng::seed_from_u64(seed);
    let costs: Vec<f64> = (0..workload.units)
        .map(|_| {
            if workload.unit_cv > 0.0 {
                let f: f64 = 1.0 + workload.unit_cv * (rng.gen::<f64>() * 2.0 - 1.0);
                workload.unit_work * f.max(0.05)
            } else {
                workload.unit_work
            }
        })
        .collect();

    let iterations = match workload.sync {
        Synchronization::Tight => workload.iterations_count,
        Synchronization::Loose => 1,
    };
    let per_iter = workload.units / iterations;
    let mut busy = vec![0.0f64; ranks];
    let mut makespan = 0.0f64;

    for iter in 0..iterations {
        let lo = iter * per_iter;
        let hi = if iter + 1 == iterations {
            workload.units
        } else {
            lo + per_iter
        };
        let slice = &costs[lo..hi];

        let iter_time = match workload.dist {
            Distribution::Static => {
                // Contiguous even partition by index.
                let mut worst = 0.0f64;
                let per_rank = slice.len() / ranks;
                let extra = slice.len() % ranks;
                let mut idx = 0;
                for (r, b) in busy.iter_mut().enumerate() {
                    let take = per_rank + usize::from(r < extra);
                    let work: f64 = slice[idx..idx + take].iter().sum();
                    idx += take;
                    let t = work / rate(r);
                    *b += t;
                    worst = worst.max(t);
                }
                worst
            }
            Distribution::Dynamic => {
                let overhead = 1.0 + workload.dynamic_overhead;
                match engine {
                    memsim::EngineKind::Slice => {
                        // Greedy list scheduling: each rank pulls the next
                        // unit when free. Simulated with per-rank clocks.
                        let mut clock = vec![0.0f64; ranks];
                        for &cost in slice {
                            // Next free rank.
                            let r = (0..ranks)
                                .min_by(|&a, &b| clock[a].partial_cmp(&clock[b]).unwrap())
                                .unwrap();
                            let t = cost * overhead / rate(r);
                            clock[r] += t;
                            busy[r] += t;
                        }
                        clock.iter().fold(0.0f64, |m, &c| m.max(c))
                    }
                    memsim::EngineKind::Event => {
                        // The same greedy pool on memsim's event heaps: the
                        // barrier resets every rank's clock, so each
                        // iteration seeds fresh heaps with all ranks free
                        // at t = 0. Ranks are split contiguously over
                        // `shards` heaps; the pool pops the lexicographic
                        // minimum `(tick, tie, id)` across shard heads,
                        // which under `ById` is exactly the order one
                        // combined heap would pop in.
                        let shard_count = shards.clamp(1, ranks.max(1));
                        let bounds: Vec<usize> =
                            (0..=shard_count).map(|s| ranks * s / shard_count).collect();
                        let mut comps: Vec<RankComponent> = (0..ranks)
                            .map(|r| RankComponent {
                                rate: rate(r),
                                clock_s: 0.0,
                                busy_s: 0.0,
                            })
                            .collect();
                        let mut heaps: Vec<memsim::EventHeap> = (0..shard_count)
                            .map(|_| memsim::EventHeap::new(memsim::TieBreak::ById))
                            .collect();
                        for (r, c) in comps.iter().enumerate() {
                            let owner = bounds.partition_point(|&b| b <= r) - 1;
                            heaps[owner].schedule_component(r as u32, c);
                        }
                        for &cost in slice {
                            let (s, _) = heaps
                                .iter()
                                .enumerate()
                                .filter_map(|(s, h)| h.peek().map(|head| (s, head)))
                                .min_by_key(|&(_, head)| head)
                                .expect("every rank stays scheduled");
                            let (now, id) = heaps[s].pop().expect("peeked shard is non-empty");
                            let c = &mut comps[id as usize];
                            c.advance(now);
                            c.pull(cost * overhead);
                            heaps[s].schedule_component(id, &*c);
                        }
                        for (r, c) in comps.iter().enumerate() {
                            busy[r] += c.busy_s;
                        }
                        comps.iter().fold(0.0f64, |m, c| m.max(c.clock_s))
                    }
                }
            }
        };
        makespan += iter_time;
    }
    (makespan, busy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_fast_cluster(ranks: usize, s: f64) -> Cluster {
        let mut speedups = vec![1.0; ranks];
        speedups[0] = s;
        Cluster::uniform(ranks, 1.0).with_speedups(&speedups)
    }

    #[test]
    fn uniform_cluster_trivial_translation() {
        // All ranks sped up equally: any style translates fully.
        let c = Cluster::uniform(4, 1.0).with_speedups(&[1.25; 4]);
        for sync in [Synchronization::Tight, Synchronization::Loose] {
            for dist in [Distribution::Static, Distribution::Dynamic] {
                let w = Workload::new(400, 1.0)
                    .iterations(10)
                    .sync(sync)
                    .distribution(dist);
                let r = simulate(&c, &w, 1);
                assert!(
                    (r.speedup_vs_uniform - 1.25).abs() < 1e-9,
                    "{sync:?}/{dist:?}: {}",
                    r.speedup_vs_uniform
                );
                assert!((r.translation_efficiency - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tight_static_wastes_single_node_speedup() {
        // Barrier + static: one fast node finishes its share early and
        // waits — zero overall speedup.
        let c = one_fast_cluster(8, 1.5);
        let w = Workload::new(800, 1.0)
            .iterations(10)
            .sync(Synchronization::Tight)
            .distribution(Distribution::Static);
        let r = simulate(&c, &w, 1);
        assert!((r.speedup_vs_uniform - 1.0).abs() < 1e-9);
        assert!(r.translation_efficiency.abs() < 1e-9);
    }

    #[test]
    fn loose_dynamic_translates_most_speedup() {
        // No barriers + work pool: total rate rises from 8 to 8.5; overall
        // speedup should approach 8.5/8 = 1.0625 (granularity permitting).
        let c = one_fast_cluster(8, 1.5);
        let w = Workload::new(4000, 1.0)
            .sync(Synchronization::Loose)
            .distribution(Distribution::Dynamic);
        let r = simulate(&c, &w, 1);
        let ideal = 8.5 / 8.0;
        assert!(
            r.speedup_vs_uniform > 1.0 + 0.8 * (ideal - 1.0),
            "loose/dynamic should capture most of the rate gain: {}",
            r.speedup_vs_uniform
        );
    }

    #[test]
    fn ranking_matches_paper_claims() {
        // For a cluster with heterogeneous speedups:
        // loose/dynamic >= tight/dynamic >= tight/static.
        let c = Cluster::uniform(6, 1.0).with_speedups(&[1.5, 1.4, 1.0, 1.0, 1.0, 1.1]);
        let mk = |sync, dist| {
            let w = Workload::new(1200, 1.0)
                .iterations(8)
                .sync(sync)
                .distribution(dist);
            simulate(&c, &w, 3).speedup_vs_uniform
        };
        let loose_dyn = mk(Synchronization::Loose, Distribution::Dynamic);
        let tight_dyn = mk(Synchronization::Tight, Distribution::Dynamic);
        let tight_static = mk(Synchronization::Tight, Distribution::Static);
        assert!(loose_dyn >= tight_dyn - 1e-9, "{loose_dyn} vs {tight_dyn}");
        assert!(
            tight_dyn >= tight_static - 1e-9,
            "{tight_dyn} vs {tight_static}"
        );
        assert!(loose_dyn > tight_static + 1e-3);
    }

    #[test]
    fn dynamic_absorbs_unit_variability() {
        // With variable unit costs, dynamic distribution beats static even
        // on a uniform cluster (classic load balancing).
        let c = Cluster::uniform(4, 1.0);
        let w_static = Workload::new(400, 1.0).unit_variability(0.9);
        let w_dynamic = Workload::new(400, 1.0)
            .unit_variability(0.9)
            .distribution(Distribution::Dynamic);
        let ms = run(&c, &w_static, 5, false).0;
        let md = run(&c, &w_dynamic, 5, false).0;
        assert!(md <= ms + 1e-9, "dynamic {md} vs static {ms}");
    }

    #[test]
    fn busy_times_account_for_all_work() {
        let c = one_fast_cluster(3, 2.0);
        let w = Workload::new(300, 1.0).distribution(Distribution::Dynamic);
        let r = simulate(&c, &w, 7);
        // Total work = sum over ranks of busy * rate.
        let total: f64 = r
            .rank_busy_s
            .iter()
            .enumerate()
            .map(|(i, &b)| b * c.rate(i))
            .sum();
        assert!((total - 300.0).abs() < 1e-6, "work conservation: {total}");
        assert!(r.makespan_s <= r.baseline_s);
    }

    #[test]
    fn determinism_per_seed() {
        let c = one_fast_cluster(4, 1.3);
        let w = Workload::new(200, 1.0)
            .unit_variability(0.5)
            .distribution(Distribution::Dynamic);
        assert_eq!(simulate(&c, &w, 9), simulate(&c, &w, 9));
        assert!(simulate(&c, &w, 9) != simulate(&c, &w, 10));
    }

    #[test]
    fn event_engine_matches_slice_on_uniform_units() {
        // Uniform costs on a uniform cluster: every pool hand-off is an
        // exact tie, and `ById` tie-breaking reproduces `min_by`'s
        // first-minimum rule, so the unit→rank mapping — and therefore
        // every report field — is bitwise identical.
        let c = Cluster::uniform(4, 1.0).with_speedups(&[1.25; 4]);
        for sync in [Synchronization::Tight, Synchronization::Loose] {
            let w = Workload::new(400, 1.0)
                .iterations(10)
                .sync(sync)
                .distribution(Distribution::Dynamic)
                .with_dynamic_overhead(0.05);
            let slice = simulate_with_engine(&c, &w, 1, memsim::EngineKind::Slice);
            let event = simulate_with_engine(&c, &w, 1, memsim::EngineKind::Event);
            assert_eq!(slice, event, "{sync:?}");
        }
    }

    #[test]
    fn event_engine_agrees_on_variable_units() {
        // Variable costs break ties by far more than the heap's 1 ns
        // resolution, so the greedy mapping agrees; busy times and
        // makespan must match to float precision.
        let c = one_fast_cluster(6, 1.4);
        let w = Workload::new(600, 1.0)
            .unit_variability(0.7)
            .iterations(5)
            .sync(Synchronization::Tight)
            .distribution(Distribution::Dynamic);
        let slice = simulate_with_engine(&c, &w, 11, memsim::EngineKind::Slice);
        let event = simulate_with_engine(&c, &w, 11, memsim::EngineKind::Event);
        assert!(
            (slice.makespan_s - event.makespan_s).abs() <= 1e-9 * slice.makespan_s,
            "makespan: slice {} vs event {}",
            slice.makespan_s,
            event.makespan_s
        );
        for (r, (s, e)) in slice.rank_busy_s.iter().zip(&event.rank_busy_s).enumerate() {
            assert!(
                (s - e).abs() <= 1e-9 * s.max(1.0),
                "rank {r} busy: slice {s} vs event {e}"
            );
        }
    }

    #[test]
    fn sharded_heaps_are_bit_identical_at_any_shard_count() {
        // The sharded merge pops by the same `(tick, tie, id)` key a single
        // heap would, so every report field is bitwise identical at 1, 2,
        // and 8 shards — including shard counts above the rank count.
        let c = one_fast_cluster(6, 1.4);
        let w = Workload::new(600, 1.0)
            .unit_variability(0.7)
            .iterations(5)
            .sync(Synchronization::Tight)
            .distribution(Distribution::Dynamic)
            .with_dynamic_overhead(0.03);
        let reference = simulate_with_engine(&c, &w, 11, memsim::EngineKind::Event);
        for shards in [1usize, 2, 8, 64] {
            let sharded =
                simulate_with_engine_sharded(&c, &w, 11, memsim::EngineKind::Event, shards);
            assert_eq!(reference, sharded, "{shards} shards");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = one_fast_cluster(2, 1.2);
        let w = Workload::new(10, 1.0);
        let r = simulate(&c, &w, 0);
        let json = serde_json::to_string(&r).unwrap();
        let back: DistReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

#[cfg(test)]
mod overhead_tests {
    use super::*;

    /// Dynamic distribution pays its overhead; with a big enough overhead
    /// and no imbalance to fix, static wins.
    #[test]
    fn dynamic_overhead_flips_the_tradeoff() {
        let c = Cluster::uniform(4, 1.0);
        let base = Workload::new(400, 1.0);
        let dyn_free = base.clone().distribution(Distribution::Dynamic);
        let dyn_costly = base
            .clone()
            .distribution(Distribution::Dynamic)
            .with_dynamic_overhead(0.10);
        let r_static = simulate(&c, &base, 1);
        let r_free = simulate(&c, &dyn_free, 1);
        let r_costly = simulate(&c, &dyn_costly, 1);
        // Uniform units, uniform cluster: free dynamic == static.
        assert!((r_free.makespan_s - r_static.makespan_s).abs() < 1e-9);
        // Costly dynamic is strictly slower than static here.
        assert!(r_costly.makespan_s > r_static.makespan_s * 1.05);
    }

    /// With enough imbalance, dynamic wins even while paying overhead.
    #[test]
    fn imbalance_can_justify_the_overhead() {
        let mut speedups = vec![1.0; 8];
        speedups[0] = 2.0; // one much faster node
        let c = Cluster::uniform(8, 1.0).with_speedups(&speedups);
        let stat = Workload::new(1600, 1.0);
        let dynamic = Workload::new(1600, 1.0)
            .distribution(Distribution::Dynamic)
            .with_dynamic_overhead(0.02);
        let r_static = simulate(&c, &stat, 2);
        let r_dynamic = simulate(&c, &dynamic, 2);
        assert!(
            r_dynamic.makespan_s < r_static.makespan_s,
            "dynamic {:.2}s vs static {:.2}s",
            r_dynamic.makespan_s,
            r_static.makespan_s
        );
    }
}
