//! Property-based tests for the distributed-translation simulator.

use distsim::{simulate, Cluster, Distribution, Synchronization, Workload};
use proptest::prelude::*;

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    proptest::collection::vec(1.0f64..2.0, 2..12)
        .prop_map(|speedups| Cluster::uniform(speedups.len(), 1.0).with_speedups(&speedups))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Overall speedup never exceeds the *maximum* local speedup, and
    /// never falls below 1 minus numerical noise (co-allocation never
    /// hurts in this model).
    #[test]
    fn speedup_is_bounded(
        cluster in arb_cluster(),
        units in 100usize..1000,
        sync_tight in proptest::bool::ANY,
        dynamic in proptest::bool::ANY,
        cv in 0.0f64..0.8,
        seed in 0u64..1000,
    ) {
        let w = Workload::new(units, 1.0)
            .iterations(8)
            .sync(if sync_tight { Synchronization::Tight } else { Synchronization::Loose })
            .distribution(if dynamic { Distribution::Dynamic } else { Distribution::Static })
            .unit_variability(cv);
        let r = simulate(&cluster, &w, seed);
        let max_local = cluster.speedups.iter().fold(1.0f64, |m, &s| m.max(s));
        prop_assert!(r.speedup_vs_uniform <= max_local * (1.0 + 1e-9),
            "speedup {} exceeds max local {}", r.speedup_vs_uniform, max_local);
        prop_assert!(r.speedup_vs_uniform >= 1.0 - 1e-9,
            "co-allocation hurt: {}", r.speedup_vs_uniform);
        prop_assert!(r.makespan_s > 0.0 && r.baseline_s > 0.0);
    }

    /// Work conservation: busy time x rate sums to the total work, for
    /// both distribution styles (without dynamic overhead).
    #[test]
    fn work_is_conserved(
        cluster in arb_cluster(),
        units in 100usize..600,
        dynamic in proptest::bool::ANY,
        cv in 0.0f64..0.5,
        seed in 0u64..100,
    ) {
        let w = Workload::new(units, 1.0)
            .distribution(if dynamic { Distribution::Dynamic } else { Distribution::Static })
            .unit_variability(cv);
        let r = simulate(&cluster, &w, seed);
        let done: f64 = r
            .rank_busy_s
            .iter()
            .enumerate()
            .map(|(i, &b)| b * cluster.rate(i))
            .sum();
        // Expected total work: sum of the generated unit costs. With cv=0
        // it is exactly `units`; with cv>0 it is within cv of that.
        prop_assert!(done > units as f64 * (1.0 - cv) - 1e-6);
        prop_assert!(done < units as f64 * (1.0 + cv) + 1e-6);
    }

    /// The makespan is never better than the perfect-balance lower bound
    /// (total work / total rate).
    #[test]
    fn makespan_respects_lower_bound(
        cluster in arb_cluster(),
        units in 100usize..600,
        dynamic in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let w = Workload::new(units, 1.0)
            .distribution(if dynamic { Distribution::Dynamic } else { Distribution::Static });
        let r = simulate(&cluster, &w, seed);
        let total_rate: f64 = (0..cluster.ranks()).map(|i| cluster.rate(i)).sum();
        let bound = units as f64 / total_rate;
        prop_assert!(r.makespan_s >= bound - 1e-9,
            "makespan {} below the physics bound {}", r.makespan_s, bound);
    }

    /// More iterations (tighter synchronization) never helps a static
    /// uniform-unit workload, provided the units divide exactly (with
    /// indivisible remainders, a tiny iteration can happen to skip a slow
    /// rank entirely and "win" — a rounding artifact, not a barrier
    /// benefit, so we exclude it from the property).
    #[test]
    fn barriers_never_help(cluster in arb_cluster(), mult in 5usize..40) {
        let iterations = 10;
        let units = mult * cluster.ranks() * iterations;
        let loose = Workload::new(units, 1.0).sync(Synchronization::Loose);
        let tight = Workload::new(units, 1.0)
            .iterations(iterations)
            .sync(Synchronization::Tight);
        let r_loose = simulate(&cluster, &loose, 1);
        let r_tight = simulate(&cluster, &tight, 1);
        prop_assert!(r_tight.makespan_s >= r_loose.makespan_s - 1e-9);
    }

    /// Dynamic overhead is monotone: more overhead, never faster.
    #[test]
    fn dynamic_overhead_is_monotone(
        cluster in arb_cluster(),
        units in 100usize..400,
        o1 in 0.0f64..0.2,
        extra in 0.0f64..0.2,
    ) {
        let w1 = Workload::new(units, 1.0)
            .distribution(Distribution::Dynamic)
            .with_dynamic_overhead(o1);
        let w2 = Workload::new(units, 1.0)
            .distribution(Distribution::Dynamic)
            .with_dynamic_overhead(o1 + extra);
        let r1 = simulate(&cluster, &w1, 3);
        let r2 = simulate(&cluster, &w2, 3);
        prop_assert!(r2.makespan_s >= r1.makespan_s - 1e-9);
    }
}
