//! The black-box flight recorder: a fixed-size, drop-oldest ring of
//! compactly encoded recent events that can be dumped to disk after the
//! fact — so post-mortems don't depend on having tracing enabled (or the
//! process surviving) ahead of time.
//!
//! Once installed on a [`TelemetryHub`](crate::TelemetryHub) via
//! [`TelemetryHub::install_flight_recorder`](crate::TelemetryHub::install_flight_recorder),
//! every event flowing through `record()` — task spans, causal-trace
//! hops, health transitions, drift alarms — is also encoded into the
//! recorder's ring. Dumps are triggered automatically by the supervision
//! layer (a runtime marked Suspected/Dead) and the drift observatory (an
//! alarm firing), or on demand via `coop observe --dump`.
//!
//! The on-disk format is a tiny length-prefixed binary: the magic header
//! `COOPFREC` + a LE `u16` version, then one encoded record per event.
//! [`FlightRecorder::decode`] reads it back into [`TimelineEvent`]s for
//! inspection and tests.

use crate::timeline::{ArgValue, EventKind, TimelineEvent, TrackId};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// File magic prefixing every flight-recorder dump.
pub const FLIGHT_MAGIC: &[u8; 8] = b"COOPFREC";
/// Current dump format version.
pub const FLIGHT_VERSION: u16 = 1;
/// Default ring capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Ring {
    records: VecDeque<Vec<u8>>,
    capacity: usize,
}

/// Fixed-size drop-oldest ring of binary-encoded events.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    dump_dir: Mutex<Option<PathBuf>>,
    dropped: AtomicU64,
    recorded: AtomicU64,
    dumps: AtomicU64,
    dump_seq: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("buffered", &self.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .field("dumps", &self.dumps())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..len]);
}

fn read_u16(bytes: &[u8], pos: &mut usize) -> Result<u16, String> {
    let end = pos.checked_add(2).filter(|&e| e <= bytes.len());
    let end = end.ok_or("truncated u16")?;
    let v = u16::from_le_bytes([bytes[*pos], bytes[*pos + 1]]);
    *pos = end;
    Ok(v)
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
    let end = end.ok_or("truncated u32")?;
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let end = end.ok_or("truncated u64")?;
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(b))
}

fn read_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, String> {
    let v = *bytes.get(*pos).ok_or("truncated u8")?;
    *pos += 1;
    Ok(v)
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = read_u16(bytes, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= bytes.len());
    let end = end.ok_or("truncated string")?;
    let s = String::from_utf8_lossy(&bytes[*pos..end]).into_owned();
    *pos = end;
    Ok(s)
}

/// Encode one event into the compact record format.
fn encode_event(ev: &TimelineEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&ev.ts_us.to_le_bytes());
    buf.extend_from_slice(&ev.track.0.to_le_bytes());
    buf.extend_from_slice(&ev.lane.to_le_bytes());
    let (tag, payload): (u8, u64) = match &ev.kind {
        EventKind::Span { dur_us } => (0, *dur_us),
        EventKind::Instant => (1, 0),
        EventKind::Counter { value } => (2, value.to_bits()),
    };
    buf.push(tag);
    buf.extend_from_slice(&payload.to_le_bytes());
    push_str(&mut buf, &ev.cat);
    push_str(&mut buf, &ev.name);
    let n_args = ev.args.len().min(u8::MAX as usize);
    buf.push(n_args as u8);
    for (k, v) in ev.args.iter().take(n_args) {
        push_str(&mut buf, k);
        match v {
            ArgValue::U64(n) => {
                buf.push(0);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            ArgValue::I64(n) => {
                buf.push(1);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            ArgValue::F64(x) => {
                buf.push(2);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            ArgValue::Bool(b) => {
                buf.push(3);
                buf.extend_from_slice(&(*b as u64).to_le_bytes());
            }
            ArgValue::Str(s) => {
                buf.push(4);
                push_str(&mut buf, s);
            }
        }
    }
    buf
}

fn decode_record(bytes: &[u8], pos: &mut usize) -> Result<TimelineEvent, String> {
    let ts_us = read_u64(bytes, pos)?;
    let track = read_u32(bytes, pos)?;
    let lane = read_u32(bytes, pos)?;
    let tag = read_u8(bytes, pos)?;
    let payload = read_u64(bytes, pos)?;
    let kind = match tag {
        0 => EventKind::Span { dur_us: payload },
        1 => EventKind::Instant,
        2 => EventKind::Counter {
            value: f64::from_bits(payload),
        },
        other => return Err(format!("unknown event kind tag {other}")),
    };
    let cat = read_str(bytes, pos)?;
    let name = read_str(bytes, pos)?;
    let n_args = read_u8(bytes, pos)? as usize;
    let mut args = Vec::with_capacity(n_args);
    for _ in 0..n_args {
        let key = read_str(bytes, pos)?;
        let tag = read_u8(bytes, pos)?;
        let value = match tag {
            0 => ArgValue::U64(read_u64(bytes, pos)?),
            1 => ArgValue::I64(read_u64(bytes, pos)? as i64),
            2 => ArgValue::F64(f64::from_bits(read_u64(bytes, pos)?)),
            3 => ArgValue::Bool(read_u64(bytes, pos)? != 0),
            4 => ArgValue::Str(read_str(bytes, pos)?),
            other => return Err(format!("unknown arg tag {other}")),
        };
        args.push((key, value));
    }
    Ok(TimelineEvent {
        track: TrackId(track),
        lane,
        cat,
        name,
        ts_us,
        kind,
        args,
    })
}

/// Turn an arbitrary trigger reason into a filesystem-safe name fragment.
fn sanitize(reason: &str) -> String {
    let mut out: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    out.truncate(64);
    if out.is_empty() {
        out.push_str("dump");
    }
    out
}

impl FlightRecorder {
    /// Recorder holding the most recent `capacity` events (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
            }),
            dump_dir: Mutex::new(None),
            dropped: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            dump_seq: AtomicU64::new(0),
        }
    }

    /// Directory [`trigger_dump`](Self::trigger_dump) writes into. Until
    /// set, automatic triggers are no-ops (callers that only want
    /// explicit [`dump_to`](Self::dump_to) never touch the filesystem).
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        *lock(&self.dump_dir) = Some(dir.into());
    }

    /// Append one event to the ring, evicting the oldest when full.
    pub fn log(&self, event: &TimelineEvent) {
        let encoded = encode_event(event);
        let mut ring = lock(&self.ring);
        if ring.records.len() >= ring.capacity {
            ring.records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.records.push_back(encoded);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.ring).records.len()
    }

    /// True when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever logged.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Dumps written (explicit and triggered).
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Write the current ring contents to `path`. Returns the number of
    /// events written. The ring is not cleared, so overlapping triggers
    /// each capture the full recent window.
    pub fn dump_to(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let records: Vec<Vec<u8>> = lock(&self.ring).records.iter().cloned().collect();
        let mut file = std::fs::File::create(path)?;
        file.write_all(FLIGHT_MAGIC)?;
        file.write_all(&FLIGHT_VERSION.to_le_bytes())?;
        for rec in &records {
            file.write_all(rec)?;
        }
        file.flush()?;
        self.dumps.fetch_add(1, Ordering::Relaxed);
        Ok(records.len())
    }

    /// Automatic-trigger entry point: write a dump named after `reason`
    /// into the configured dump directory. Returns the written path, or
    /// `None` when no directory is configured or the write failed (the
    /// recorder never panics the caller — it is post-mortem machinery).
    pub fn trigger_dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = lock(&self.dump_dir).clone()?;
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flight-{}-{}.bin", sanitize(reason), seq));
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        match self.dump_to(&path) {
            Ok(_) => Some(path),
            Err(_) => None,
        }
    }

    /// Decode a dump back into events. Tolerates a truncated tail (a
    /// crash mid-write loses at most the final partial record): decoded
    /// events up to the truncation point are returned alongside the
    /// error via `Ok` as long as the header was intact.
    pub fn decode(bytes: &[u8]) -> Result<Vec<TimelineEvent>, String> {
        if bytes.len() < FLIGHT_MAGIC.len() + 2 || &bytes[..FLIGHT_MAGIC.len()] != FLIGHT_MAGIC {
            return Err("not a flight-recorder dump (bad magic)".to_string());
        }
        let mut pos = FLIGHT_MAGIC.len();
        let version = read_u16(bytes, &mut pos)?;
        if version != FLIGHT_VERSION {
            return Err(format!("unsupported dump version {version}"));
        }
        let mut events = Vec::new();
        while pos < bytes.len() {
            match decode_record(bytes, &mut pos) {
                Ok(ev) => events.push(ev),
                Err(_) => break, // truncated tail: keep what decoded cleanly
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ts_us: u64) -> TimelineEvent {
        TimelineEvent {
            track: TrackId(3),
            lane: 2,
            cat: "trace".to_string(),
            name: name.to_string(),
            ts_us,
            kind: EventKind::Span { dur_us: 42 },
            args: vec![
                ("task".to_string(), ArgValue::U64(7)),
                ("node".to_string(), ArgValue::I64(-1)),
                ("load".to_string(), ArgValue::F64(0.5)),
                ("hot".to_string(), ArgValue::Bool(true)),
                (
                    "tier".to_string(),
                    ArgValue::Str("normal \"q\"".to_string()),
                ),
            ],
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("coop-frec-{}-{}", std::process::id(), tag))
    }

    #[test]
    fn encode_decode_roundtrip_preserves_events() {
        let rec = FlightRecorder::new(16);
        rec.log(&event("started", 100));
        rec.log(&TimelineEvent {
            kind: EventKind::Counter { value: 2.5 },
            ..event("bw", 200)
        });
        rec.log(&TimelineEvent {
            kind: EventKind::Instant,
            args: Vec::new(),
            ..event("drift_alarm", 300)
        });
        let path = temp_path("roundtrip.bin");
        let written = rec.dump_to(&path).unwrap();
        assert_eq!(written, 3);
        let bytes = std::fs::read(&path).unwrap();
        let decoded = FlightRecorder::decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].name, "started");
        assert_eq!(decoded[0].track, TrackId(3));
        assert_eq!(decoded[0].lane, 2);
        assert_eq!(decoded[0].kind, EventKind::Span { dur_us: 42 });
        assert_eq!(decoded[0].args, event("started", 100).args);
        assert_eq!(decoded[1].kind, EventKind::Counter { value: 2.5 });
        assert_eq!(decoded[2].kind, EventKind::Instant);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let rec = FlightRecorder::new(3);
        for i in 0..10u64 {
            rec.log(&event(&format!("e{i}"), i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 7);
        assert_eq!(rec.recorded(), 10);
        let path = temp_path("overflow.bin");
        rec.dump_to(&path).unwrap();
        let decoded = FlightRecorder::decode(&std::fs::read(&path).unwrap()).unwrap();
        let names: Vec<&str> = decoded.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e7", "e8", "e9"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trigger_dump_requires_dir_and_sanitizes_reason() {
        let rec = FlightRecorder::new(8);
        rec.log(&event("x", 1));
        // No dir configured: trigger is a no-op.
        assert!(rec.trigger_dump("health-app0-dead").is_none());
        let dir = temp_path("dumps");
        rec.set_dump_dir(&dir);
        let path = rec.trigger_dump("health app0/Dead!").expect("dump written");
        let fname = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(fname.starts_with("flight-health-app0-Dead--0"), "{fname}");
        assert!(path.exists());
        assert_eq!(rec.dumps(), 1);
        // Second trigger gets a fresh sequence number.
        let path2 = rec.trigger_dump("drift-latency").unwrap();
        assert_ne!(path, path2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_tolerates_truncated_tail_and_rejects_garbage() {
        let rec = FlightRecorder::new(8);
        rec.log(&event("a", 1));
        rec.log(&event("b", 2));
        let path = temp_path("trunc.bin");
        rec.dump_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the second record.
        let cut = bytes.len() - 10;
        let decoded = FlightRecorder::decode(&bytes[..cut]).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].name, "a");
        assert!(FlightRecorder::decode(b"nonsense").is_err());
        let _ = std::fs::remove_file(&path);
    }
}
