//! Decision provenance: what the model believed when it acted, and what
//! actually happened.
//!
//! Every agent decision (or simulated decision tick) opens a
//! [`ProvenanceRecord`] carrying the model inputs and the model's
//! predicted per-app / per-node series. When the decision's lifetime ends
//! (the next tick, or the end of a simulation segment), the record is
//! **back-filled** with the realized outcome and the per-series relative
//! residuals are computed. The ledger is the raw material for the drift
//! detector and the `coop drift` report: it can explain every
//! reallocation the system made, in terms of what was expected and what
//! was measured.

use crate::json::{push_f64, push_str_literal};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One named scalar in a prediction or a measured outcome.
///
/// Series keys are hierarchical strings, by convention
/// `app/<name>/<quantity>` or `node/<index>/<quantity>`, e.g.
/// `app/mem1/bandwidth_gbs` or `node/0/bandwidth_gbs`. Predicted and
/// measured values join on these keys to produce residuals.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesValue {
    /// Hierarchical series key.
    pub series: String,
    /// The value.
    pub value: f64,
}

impl SeriesValue {
    /// Convenience constructor.
    pub fn new(series: impl Into<String>, value: f64) -> Self {
        SeriesValue {
            series: series.into(),
            value,
        }
    }
}

/// A model prediction attached to a decision at open time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Prediction {
    /// Model inputs the prediction was computed from (app arithmetic
    /// intensities, thread counts, …), as labelled scalars.
    pub inputs: Vec<(String, f64)>,
    /// Human-readable core/node assignment the model evaluated.
    pub assignment: String,
    /// Predicted per-app / per-node series values.
    pub series: Vec<SeriesValue>,
}

impl Prediction {
    /// Look up a predicted value by series key.
    pub fn value(&self, series: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.series == series)
            .map(|s| s.value)
    }
}

/// A predicted/measured pair and its relative residual.
#[derive(Debug, Clone)]
pub struct Residual {
    /// Series key the pair joined on.
    pub series: String,
    /// Predicted value.
    pub predicted: f64,
    /// Measured value.
    pub measured: f64,
    /// `(measured − predicted) / |predicted|`.
    pub relative: f64,
}

/// One decision's provenance: prediction at open, outcome at close.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord {
    /// Ledger-unique id.
    pub id: u64,
    /// Agent tick (or simulated decision index) the decision fired on.
    pub tick: u64,
    /// Where the decision was applied (runtime name or scenario name).
    pub source: String,
    /// The command that was applied, rendered as text.
    pub command: String,
    /// Hub-clock microseconds at open.
    pub opened_us: u64,
    /// The model's prediction at open time.
    pub prediction: Prediction,
    /// Realized outcome series (empty until the record is closed).
    pub measured: Vec<SeriesValue>,
    /// Per-series residuals (computed at close).
    pub residuals: Vec<Residual>,
    /// Hub-clock microseconds at close, if closed.
    pub closed_us: Option<u64>,
}

impl ProvenanceRecord {
    /// Whether the outcome has been back-filled.
    pub fn is_closed(&self) -> bool {
        self.closed_us.is_some()
    }

    /// The residual for `series`, if present.
    pub fn residual_for(&self, series: &str) -> Option<&Residual> {
        self.residuals.iter().find(|r| r.series == series)
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    records: VecDeque<ProvenanceRecord>,
}

/// Bounded ledger of [`ProvenanceRecord`]s with open → back-fill
/// lifecycle. Oldest records are evicted once `capacity` is exceeded.
#[derive(Debug)]
pub struct ProvenanceLedger {
    next_id: AtomicU64,
    capacity: usize,
    inner: Mutex<LedgerInner>,
}

impl Default for ProvenanceLedger {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl ProvenanceLedger {
    /// Create a ledger retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        ProvenanceLedger {
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            inner: Mutex::new(LedgerInner::default()),
        }
    }

    /// Open a record for a decision; returns its id.
    pub fn open(
        &self,
        tick: u64,
        source: &str,
        command: &str,
        prediction: Prediction,
        opened_us: u64,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.records.len() >= self.capacity {
            inner.records.pop_front();
        }
        inner.records.push_back(ProvenanceRecord {
            id,
            tick,
            source: source.to_string(),
            command: command.to_string(),
            opened_us,
            prediction,
            measured: Vec::new(),
            residuals: Vec::new(),
            closed_us: None,
        });
        id
    }

    /// Back-fill record `id` with the realized outcome, computing one
    /// residual per predicted series that has a matching measured key.
    /// Returns the closed record, or `None` if the id is unknown (e.g.
    /// already evicted) or already closed.
    pub fn close(
        &self,
        id: u64,
        measured: Vec<SeriesValue>,
        closed_us: u64,
    ) -> Option<ProvenanceRecord> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let record = inner
            .records
            .iter_mut()
            .find(|r| r.id == id && !r.is_closed())?;
        record.residuals = record
            .prediction
            .series
            .iter()
            .filter_map(|p| {
                let m = measured.iter().find(|m| m.series == p.series)?;
                Some(Residual {
                    series: p.series.clone(),
                    predicted: p.value,
                    measured: m.value,
                    relative: crate::drift::DriftDetector::relative_residual(p.value, m.value),
                })
            })
            .collect();
        record.measured = measured;
        record.closed_us = Some(closed_us);
        Some(record.clone())
    }

    /// Copies of all retained records, oldest first.
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.records.iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .len()
    }

    /// Whether the ledger holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of retained records still awaiting back-fill.
    pub fn open_count(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.records.iter().filter(|r| !r.is_closed()).count()
    }

    /// Render the ledger as a JSON array of records.
    pub fn to_json(&self) -> String {
        let records = self.records();
        let mut out = String::from("[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_record(&mut out, r);
        }
        out.push(']');
        out
    }
}

fn push_series(out: &mut String, series: &[SeriesValue]) {
    out.push('[');
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"series\":");
        push_str_literal(out, &s.series);
        out.push_str(",\"value\":");
        push_f64(out, s.value);
        out.push('}');
    }
    out.push(']');
}

fn push_record(out: &mut String, r: &ProvenanceRecord) {
    out.push_str("{\"id\":");
    out.push_str(&r.id.to_string());
    out.push_str(",\"tick\":");
    out.push_str(&r.tick.to_string());
    out.push_str(",\"source\":");
    push_str_literal(out, &r.source);
    out.push_str(",\"command\":");
    push_str_literal(out, &r.command);
    out.push_str(",\"opened_us\":");
    out.push_str(&r.opened_us.to_string());
    out.push_str(",\"assignment\":");
    push_str_literal(out, &r.prediction.assignment);
    out.push_str(",\"inputs\":{");
    for (i, (k, v)) in r.prediction.inputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, k);
        out.push(':');
        push_f64(out, *v);
    }
    out.push_str("},\"predicted\":");
    push_series(out, &r.prediction.series);
    out.push_str(",\"measured\":");
    push_series(out, &r.measured);
    out.push_str(",\"residuals\":[");
    for (i, res) in r.residuals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"series\":");
        push_str_literal(out, &res.series);
        out.push_str(",\"predicted\":");
        push_f64(out, res.predicted);
        out.push_str(",\"measured\":");
        push_f64(out, res.measured);
        out.push_str(",\"relative\":");
        push_f64(out, res.relative);
        out.push('}');
    }
    out.push_str("],\"closed_us\":");
    match r.closed_us {
        Some(us) => out.push_str(&us.to_string()),
        None => out.push_str("null"),
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction() -> Prediction {
        Prediction {
            inputs: vec![("ai/app_a".into(), 0.25)],
            assignment: "a:[2,0] b:[0,2]".into(),
            series: vec![
                SeriesValue::new("app/a/bandwidth_gbs", 10.0),
                SeriesValue::new("node/0/bandwidth_gbs", 20.0),
            ],
        }
    }

    #[test]
    fn open_close_lifecycle() {
        let ledger = ProvenanceLedger::new(8);
        let id = ledger.open(3, "scenario", "assign a:[2,0]", prediction(), 100);
        assert_eq!(ledger.open_count(), 1);

        let closed = ledger
            .close(
                id,
                vec![
                    SeriesValue::new("app/a/bandwidth_gbs", 8.0),
                    SeriesValue::new("node/0/bandwidth_gbs", 20.0),
                    SeriesValue::new("node/1/bandwidth_gbs", 5.0), // unmatched
                ],
                200,
            )
            .expect("close must succeed");
        assert!(closed.is_closed());
        assert_eq!(ledger.open_count(), 0);
        assert_eq!(closed.residuals.len(), 2);
        let r = closed.residual_for("app/a/bandwidth_gbs").unwrap();
        assert!((r.relative - (-0.2)).abs() < 1e-12);
        assert_eq!(
            closed
                .residual_for("node/0/bandwidth_gbs")
                .unwrap()
                .relative,
            0.0
        );
        // Double close is rejected.
        assert!(ledger.close(id, Vec::new(), 300).is_none());
        // Unknown id is rejected.
        assert!(ledger.close(999, Vec::new(), 300).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let ledger = ProvenanceLedger::new(2);
        let a = ledger.open(0, "s", "c", Prediction::default(), 0);
        let _b = ledger.open(1, "s", "c", Prediction::default(), 1);
        let _c = ledger.open(2, "s", "c", Prediction::default(), 2);
        assert_eq!(ledger.len(), 2);
        assert!(ledger.close(a, Vec::new(), 3).is_none(), "evicted id");
        assert_eq!(ledger.records()[0].tick, 1);
    }

    #[test]
    fn ledger_json_is_valid() {
        let ledger = ProvenanceLedger::new(4);
        let id = ledger.open(0, "src\"quoted\"", "cmd\nline", prediction(), 7);
        ledger.close(id, vec![SeriesValue::new("app/a/bandwidth_gbs", 9.0)], 9);
        let json = ledger.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v[0]["source"], "src\"quoted\"");
        assert_eq!(v[0]["residuals"][0]["series"], "app/a/bandwidth_gbs");
        assert_eq!(v[0]["closed_us"], 9);
    }
}
