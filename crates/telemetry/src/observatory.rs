//! The model-drift observatory: provenance ledger + drift detector wired
//! onto a [`TelemetryHub`].
//!
//! Callers (the agent tick loop, the memsim supervisor, the bench
//! harnesses) open a provenance record when a decision fires and close it
//! when the decision's lifetime ends. The observatory then:
//!
//! * computes per-series residuals and feeds them to the
//!   [`DriftDetector`];
//! * exports `coop_model_residual{series=…}` gauges, the
//!   `coop_model_residual_abs_pct` histogram and the
//!   `coop_model_drift_alarms{series=…}` counter to the hub's registry;
//! * records `provenance` instants (decision opened) and `drift` instants
//!   (alarm raised) on the shared timeline, so drift shows up next to the
//!   task spans and bandwidth counters that caused it.

use crate::drift::{DriftAlarm, DriftConfig, DriftDetector, SeriesSnapshot};
use crate::json::{push_f64, push_str_literal};
use crate::provenance::{Prediction, ProvenanceLedger, ProvenanceRecord, Residual, SeriesValue};
use crate::timeline::{ArgValue, TelemetryHub, TrackId};
use std::sync::Arc;

/// Gauge holding the latest relative residual per series.
pub const RESIDUAL_METRIC: &str = "coop_model_residual";
/// Histogram of absolute relative residuals, in percent.
pub const RESIDUAL_PCT_METRIC: &str = "coop_model_residual_abs_pct";
/// Counter of drift alarms per series.
pub const ALARMS_METRIC: &str = "coop_model_drift_alarms";

/// Provenance + drift detection bound to one [`TelemetryHub`].
#[derive(Debug)]
pub struct ModelObservatory {
    hub: Arc<TelemetryHub>,
    track: TrackId,
    ledger: ProvenanceLedger,
    detector: DriftDetector,
}

impl ModelObservatory {
    /// Create an observatory with default drift tuning and ledger size.
    pub fn new(hub: Arc<TelemetryHub>) -> Self {
        Self::with_config(hub, DriftConfig::default(), 1024)
    }

    /// Create an observatory with explicit drift tuning and ledger
    /// capacity.
    pub fn with_config(hub: Arc<TelemetryHub>, config: DriftConfig, capacity: usize) -> Self {
        let track = hub.register_track("model-drift");
        hub.set_lane_name(track, 0, "decisions");
        hub.set_lane_name(track, 1, "alarms");
        let registry = hub.registry();
        registry.set_help(
            RESIDUAL_METRIC,
            "Latest relative prediction residual (measured-predicted)/|predicted| per series",
        );
        registry.set_help(
            RESIDUAL_PCT_METRIC,
            "Absolute relative prediction residual in percent",
        );
        registry.set_help(ALARMS_METRIC, "CUSUM drift alarms raised per series");
        ModelObservatory {
            hub,
            track,
            ledger: ProvenanceLedger::new(capacity),
            detector: DriftDetector::new(config),
        }
    }

    /// The hub this observatory records into.
    pub fn hub(&self) -> &Arc<TelemetryHub> {
        &self.hub
    }

    /// The underlying provenance ledger.
    pub fn ledger(&self) -> &ProvenanceLedger {
        &self.ledger
    }

    /// The underlying drift detector.
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Open a provenance record for a decision at the current hub time.
    pub fn open_decision(
        &self,
        tick: u64,
        source: &str,
        command: &str,
        prediction: Prediction,
    ) -> u64 {
        let now = self.hub.now_us();
        self.open_decision_at(tick, source, command, prediction, now)
    }

    /// Open a provenance record with an explicit hub-clock timestamp
    /// (simulators map simulated seconds onto the hub clock).
    pub fn open_decision_at(
        &self,
        tick: u64,
        source: &str,
        command: &str,
        prediction: Prediction,
        ts_us: u64,
    ) -> u64 {
        let id = self.ledger.open(tick, source, command, prediction, ts_us);
        self.hub.record_instant_at(
            0,
            self.track,
            0,
            "provenance",
            "decision",
            ts_us,
            vec![
                ("id".to_string(), ArgValue::U64(id)),
                ("tick".to_string(), ArgValue::U64(tick)),
                ("source".to_string(), ArgValue::Str(source.to_string())),
                ("command".to_string(), ArgValue::Str(command.to_string())),
            ],
        );
        id
    }

    /// Back-fill a decision with its realized outcome at the current hub
    /// time; see [`ModelObservatory::close_decision_at`].
    pub fn close_decision(&self, id: u64, measured: Vec<SeriesValue>) -> Vec<Residual> {
        let now = self.hub.now_us();
        self.close_decision_at(id, measured, now)
    }

    /// Back-fill decision `id` with the realized outcome, run every
    /// residual through the drift detector, update the Prometheus
    /// metrics, and put any alarms on the timeline. Returns the computed
    /// residuals (empty if the id is unknown).
    pub fn close_decision_at(
        &self,
        id: u64,
        measured: Vec<SeriesValue>,
        ts_us: u64,
    ) -> Vec<Residual> {
        let Some(record) = self.ledger.close(id, measured, ts_us) else {
            return Vec::new();
        };
        let registry = self.hub.registry();
        for residual in &record.residuals {
            registry
                .gauge(RESIDUAL_METRIC, &[("series", &residual.series)])
                .set(residual.relative);
            registry
                .histogram(RESIDUAL_PCT_METRIC, &[])
                .observe((residual.relative.abs() * 100.0).round() as u64);
            if let Some(alarm) = self.detector.observe(&residual.series, residual.relative) {
                registry
                    .counter(ALARMS_METRIC, &[("series", &residual.series)])
                    .inc();
                self.hub.record_instant_at(
                    0,
                    self.track,
                    1,
                    "drift",
                    "drift_alarm",
                    ts_us,
                    vec![
                        ("series".to_string(), ArgValue::Str(alarm.series.clone())),
                        ("residual".to_string(), ArgValue::F64(alarm.residual)),
                        ("ewma".to_string(), ArgValue::F64(alarm.ewma)),
                        ("cusum".to_string(), ArgValue::F64(alarm.cusum)),
                        (
                            "direction".to_string(),
                            ArgValue::Str(alarm.direction.as_str().to_string()),
                        ),
                        ("decision".to_string(), ArgValue::U64(record.id)),
                    ],
                );
                // Drift alarms auto-dump the flight recorder: the events
                // leading up to a model mismatch are the evidence.
                if let Some(rec) = self.hub.flight_recorder() {
                    rec.trigger_dump(&format!("drift-{}", alarm.series));
                }
            }
        }
        record.residuals
    }

    /// Build the residual report from the current detector and ledger
    /// state.
    pub fn report(&self) -> DriftReport {
        DriftReport {
            series: self.detector.snapshot(),
            alarms: self.detector.alarm_log(),
            records: self.ledger.len(),
            open_records: self.ledger.open_count(),
        }
    }

    /// Copies of the retained provenance records (oldest first).
    pub fn records(&self) -> Vec<ProvenanceRecord> {
        self.ledger.records()
    }
}

/// The residual report surfaced by `coop drift`: per-series error
/// statistics, the worst series, and the alarm log.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Per-series drift statistics, sorted by series key.
    pub series: Vec<SeriesSnapshot>,
    /// Alarm log, oldest first.
    pub alarms: Vec<DriftAlarm>,
    /// Provenance records retained in the ledger.
    pub records: usize,
    /// Provenance records still awaiting back-fill.
    pub open_records: usize,
}

impl DriftReport {
    /// Total alarms across all series.
    pub fn total_alarms(&self) -> u64 {
        self.series.iter().map(|s| s.alarms).sum()
    }

    /// The series with the largest mean absolute residual.
    pub fn worst_series(&self) -> Option<&SeriesSnapshot> {
        self.series.iter().max_by(|a, b| {
            a.mean_abs_residual
                .partial_cmp(&b.mean_abs_residual)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The node-level series (`node/...`) with the largest mean absolute
    /// residual — "the worst node" of the report.
    pub fn worst_node(&self) -> Option<&SeriesSnapshot> {
        self.series
            .iter()
            .filter(|s| s.series.starts_with("node/"))
            .max_by(|a, b| {
                a.mean_abs_residual
                    .partial_cmp(&b.mean_abs_residual)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Render as a human-readable text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model-drift report: {} records ({} open), {} alarms\n",
            self.records,
            self.open_records,
            self.total_alarms()
        ));
        out.push_str(&format!(
            "{:<34} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7}\n",
            "series", "n", "last", "ewma", "mean|r|", "max|r|", "alarms"
        ));
        for s in &self.series {
            out.push_str(&format!(
                "{:<34} {:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>7}\n",
                s.series,
                s.samples,
                s.last_residual,
                s.ewma,
                s.mean_abs_residual,
                s.max_abs_residual,
                s.alarms
            ));
        }
        if let Some(worst) = self.worst_series() {
            out.push_str(&format!(
                "worst series: {} (mean |residual| {:.4})\n",
                worst.series, worst.mean_abs_residual
            ));
        }
        if let Some(worst) = self.worst_node() {
            out.push_str(&format!(
                "worst node:   {} (mean |residual| {:.4})\n",
                worst.series, worst.mean_abs_residual
            ));
        }
        if self.alarms.is_empty() {
            out.push_str("no drift alarms\n");
        } else {
            out.push_str("alarm log:\n");
            for (i, a) in self.alarms.iter().enumerate() {
                out.push_str(&format!(
                    "  [{}] {} sample {} residual {:+.4} cusum {:.4} ({})\n",
                    i,
                    a.series,
                    a.sample,
                    a.residual,
                    a.cusum,
                    a.direction.as_str()
                ));
            }
        }
        out
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"records\":");
        out.push_str(&self.records.to_string());
        out.push_str(",\"open_records\":");
        out.push_str(&self.open_records.to_string());
        out.push_str(",\"total_alarms\":");
        out.push_str(&self.total_alarms().to_string());
        out.push_str(",\"worst_series\":");
        match self.worst_series() {
            Some(w) => push_str_literal(&mut out, &w.series),
            None => out.push_str("null"),
        }
        out.push_str(",\"worst_node\":");
        match self.worst_node() {
            Some(w) => push_str_literal(&mut out, &w.series),
            None => out.push_str("null"),
        }
        out.push_str(",\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"series\":");
            push_str_literal(&mut out, &s.series);
            out.push_str(",\"samples\":");
            out.push_str(&s.samples.to_string());
            out.push_str(",\"last_residual\":");
            push_f64(&mut out, s.last_residual);
            out.push_str(",\"ewma\":");
            push_f64(&mut out, s.ewma);
            out.push_str(",\"mean_abs_residual\":");
            push_f64(&mut out, s.mean_abs_residual);
            out.push_str(",\"max_abs_residual\":");
            push_f64(&mut out, s.max_abs_residual);
            out.push_str(",\"alarms\":");
            out.push_str(&s.alarms.to_string());
            out.push('}');
        }
        out.push_str("],\"alarms\":[");
        for (i, a) in self.alarms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"series\":");
            push_str_literal(&mut out, &a.series);
            out.push_str(",\"sample\":");
            out.push_str(&a.sample.to_string());
            out.push_str(",\"residual\":");
            push_f64(&mut out, a.residual);
            out.push_str(",\"ewma\":");
            push_f64(&mut out, a.ewma);
            out.push_str(",\"cusum\":");
            push_f64(&mut out, a.cusum);
            out.push_str(",\"direction\":");
            push_str_literal(&mut out, a.direction.as_str());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction(bw: f64) -> Prediction {
        Prediction {
            inputs: vec![("ai/a".into(), 0.25)],
            assignment: "a:[2,0]".into(),
            series: vec![
                SeriesValue::new("app/a/bandwidth_gbs", bw),
                SeriesValue::new("node/0/bandwidth_gbs", bw * 2.0),
            ],
        }
    }

    #[test]
    fn residuals_flow_into_metrics_and_timeline() {
        let hub = Arc::new(TelemetryHub::new());
        let obs = ModelObservatory::new(Arc::clone(&hub));
        // A run of decisions whose measurements sit 40% below prediction
        // must eventually raise an alarm and export it everywhere.
        for tick in 0..8u64 {
            let id = obs.open_decision(tick, "test", "assign", prediction(10.0));
            let residuals = obs.close_decision(
                id,
                vec![
                    SeriesValue::new("app/a/bandwidth_gbs", 6.0),
                    SeriesValue::new("node/0/bandwidth_gbs", 12.0),
                ],
            );
            assert_eq!(residuals.len(), 2);
        }
        assert!(obs.detector().total_alarms() > 0);
        let prom = hub.registry().to_prometheus();
        assert!(prom.contains("coop_model_residual{series=\"app/a/bandwidth_gbs\"}"));
        assert!(prom.contains("coop_model_drift_alarms{series=\"app/a/bandwidth_gbs\"}"));
        assert!(hub.registry().counter_total(ALARMS_METRIC) > 0);
        let events = hub.events();
        assert!(events.iter().any(|e| e.cat == "provenance"));
        assert!(events.iter().any(|e| e.cat == "drift"));
    }

    #[test]
    fn drift_alarm_dumps_the_flight_recorder() {
        use crate::recorder::FlightRecorder;

        let hub = Arc::new(TelemetryHub::new());
        let dir = std::env::temp_dir().join(format!(
            "coop-drift-dump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rec = Arc::new(FlightRecorder::new(256));
        rec.set_dump_dir(&dir);
        assert!(hub.install_flight_recorder(Arc::clone(&rec)));

        let obs = ModelObservatory::new(Arc::clone(&hub));
        for tick in 0..8u64 {
            let id = obs.open_decision(tick, "test", "assign", prediction(10.0));
            obs.close_decision(
                id,
                vec![
                    SeriesValue::new("app/a/bandwidth_gbs", 6.0),
                    SeriesValue::new("node/0/bandwidth_gbs", 12.0),
                ],
            );
        }
        assert!(obs.detector().total_alarms() > 0);
        assert!(rec.dumps() > 0, "each alarm snapshots the recorder");
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            dumps.iter().any(|n| n.starts_with("flight-drift-")),
            "dump files carry the drift reason: {dumps:?}"
        );
        // The dump decodes and contains the drift alarm instants that
        // preceded it.
        let first = dumps.iter().min().unwrap();
        let bytes = std::fs::read(dir.join(first)).unwrap();
        let events = FlightRecorder::decode(&bytes).unwrap();
        assert!(events.iter().any(|e| e.cat == "drift"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perfect_predictions_raise_nothing() {
        let hub = Arc::new(TelemetryHub::new());
        let obs = ModelObservatory::new(Arc::clone(&hub));
        for tick in 0..20u64 {
            let id = obs.open_decision(tick, "test", "assign", prediction(10.0));
            obs.close_decision(
                id,
                vec![
                    SeriesValue::new("app/a/bandwidth_gbs", 10.0),
                    SeriesValue::new("node/0/bandwidth_gbs", 20.0),
                ],
            );
        }
        assert_eq!(obs.detector().total_alarms(), 0);
        assert_eq!(hub.registry().counter_total(ALARMS_METRIC), 0);
        assert!(!hub.events().iter().any(|e| e.cat == "drift"));
    }

    #[test]
    fn report_text_and_json_roundtrip() {
        let hub = Arc::new(TelemetryHub::new());
        let obs = ModelObservatory::new(Arc::clone(&hub));
        for tick in 0..6u64 {
            let id = obs.open_decision(tick, "t", "cmd", prediction(10.0));
            obs.close_decision(id, vec![SeriesValue::new("app/a/bandwidth_gbs", 5.0)]);
        }
        let report = obs.report();
        let text = report.to_text();
        assert!(text.contains("model-drift report"));
        assert!(text.contains("app/a/bandwidth_gbs"));
        assert!(text.contains("worst series"));
        let v: serde_json::Value =
            serde_json::from_str(&report.to_json()).expect("report JSON must parse");
        assert_eq!(v["worst_series"], "app/a/bandwidth_gbs");
        assert!(v["total_alarms"].as_u64().unwrap() > 0);
        assert!(v["series"][0]["mean_abs_residual"].as_f64().unwrap() > 0.0);
    }
}
