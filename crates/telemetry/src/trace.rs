//! Causal task tracing: the shared span-event schema and the
//! [`TraceAssembler`] that reconstructs per-task critical paths.
//!
//! Every traced task carries a **trace id** (inherited from its spawning
//! parent; root tasks use their own task id) and emits typed *hop* events
//! on the timeline as it moves through the system:
//!
//! | hop            | recorded when                              | extra args |
//! |----------------|--------------------------------------------|------------|
//! | `spawned`      | the task is created                        | `parent`, `task_name` |
//! | `deps_released`| one dependency event satisfies             | `event` |
//! | `enqueued`     | the task lands on a ready queue            | `node` (absent = global queue) |
//! | `stolen`       | a worker pops it from a non-local source   | `from`, `to`, `tier` |
//! | `started`      | a worker begins executing the body         | `node`, `worker` |
//! | `finished`     | the body returns                           | `node` |
//! | `panicked`     | the body panics (contained)                | `node` |
//!
//! All hops share category [`TRACE_CAT`] and the args `task` (the task's
//! id within its runtime) and `trace` (the causal-tree id). Hops are
//! recorded through the hub's per-worker shards, so the hot path stays
//! exactly as lock-free as ordinary task spans. Simulated runs (memsim's
//! supervisor) emit the same schema, so fleet scenarios assemble with the
//! same code.
//!
//! The assembler tolerates truncated traces: a shard ring that overflowed
//! may have evicted a task's earliest hops, in which case the task is
//! flagged [`TaskTrace::truncated`] and the surviving suffix is still
//! ordered and timed.

use crate::json::push_str_literal;
use crate::timeline::{ArgValue, TelemetryHub, TimelineEvent, TrackId};
use std::collections::BTreeMap;

/// Timeline category shared by every causal-trace hop event.
pub const TRACE_CAT: &str = "trace";

/// Hop names of the causal span schema, in canonical lifecycle order.
pub mod hop {
    /// Task created (`parent` arg when spawned from another task).
    pub const SPAWNED: &str = "spawned";
    /// One dependency event satisfied (`event` arg).
    pub const DEPS_RELEASED: &str = "deps_released";
    /// Task pushed onto a ready queue (`node` arg when hinted).
    pub const ENQUEUED: &str = "enqueued";
    /// Task popped from a non-local source (`from`, `to`, `tier` args).
    pub const STOLEN: &str = "stolen";
    /// Body execution began (`node`, `worker` args).
    pub const STARTED: &str = "started";
    /// Body returned normally.
    pub const FINISHED: &str = "finished";
    /// Body panicked (contained by the runtime).
    pub const PANICKED: &str = "panicked";
}

/// Canonical ordering index of a hop name, used to break timestamp ties
/// (hops recorded within the same microsecond still sort causally).
fn hop_order(name: &str) -> u8 {
    match name {
        hop::SPAWNED => 0,
        hop::DEPS_RELEASED => 1,
        hop::ENQUEUED => 2,
        hop::STOLEN => 3,
        hop::STARTED => 4,
        hop::FINISHED | hop::PANICKED => 5,
        _ => 6,
    }
}

fn arg_u64(args: &[(String, ArgValue)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            ArgValue::U64(n) => Some(*n),
            ArgValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

fn arg_str<'a>(args: &'a [(String, ArgValue)], key: &str) -> Option<&'a str> {
    args.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// One hop of a task's causal chain.
#[derive(Debug, Clone)]
pub struct TraceHop {
    /// Hop name (one of the [`hop`] constants).
    pub kind: String,
    /// Hub-clock timestamp, microseconds.
    pub ts_us: u64,
    /// Wall time until the next hop (0 for the last hop).
    pub wall_us: u64,
    /// Node attribution: where the task was headed (`enqueued`), landed
    /// (`stolen`/`started`/`finished`), or `None` when unplaced.
    pub node: Option<u64>,
    /// Steal victim node (`stolen` hops only).
    pub from_node: Option<u64>,
    /// Priority tier of a steal (`stolen` hops only).
    pub tier: Option<String>,
    /// Dependency event id (`deps_released` hops only).
    pub event: Option<u64>,
}

/// The assembled causal chain of one task.
#[derive(Debug, Clone)]
pub struct TaskTrace {
    /// Track the task's hops were recorded on (one per runtime).
    pub track: TrackId,
    /// Task id within its runtime.
    pub task: u64,
    /// Causal-tree id (root task's id).
    pub trace_id: u64,
    /// Task name, when the `spawned` hop survived.
    pub name: Option<String>,
    /// Spawning task's id, when spawned from another task.
    pub parent: Option<u64>,
    /// Hops in causal order, wall times filled in.
    pub hops: Vec<TraceHop>,
    /// True when the earliest hops were evicted by ring overflow (the
    /// chain does not begin with `spawned`).
    pub truncated: bool,
}

impl TaskTrace {
    /// The hop of the given kind, if present.
    pub fn hop(&self, kind: &str) -> Option<&TraceHop> {
        self.hops.iter().find(|h| h.kind == kind)
    }

    /// Total wall time spawn (or first surviving hop) → last hop.
    pub fn total_wall_us(&self) -> u64 {
        match (self.hops.first(), self.hops.last()) {
            (Some(a), Some(b)) => b.ts_us.saturating_sub(a.ts_us),
            _ => 0,
        }
    }

    /// `Some((from, to))` when the task crossed NUMA nodes via a steal.
    pub fn cross_node(&self) -> Option<(u64, u64)> {
        self.hops.iter().find_map(|h| {
            if h.kind != hop::STOLEN {
                return None;
            }
            match (h.from_node, h.node) {
                (Some(f), Some(t)) if f != t => Some((f, t)),
                _ => None,
            }
        })
    }

    /// True when the chain ends in `finished` or `panicked`.
    pub fn completed(&self) -> bool {
        self.hops
            .last()
            .map(|h| h.kind == hop::FINISHED || h.kind == hop::PANICKED)
            .unwrap_or(false)
    }

    /// Render the per-hop view: one line per hop with wall time and node
    /// attribution, plus a cross-node summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let name = self.name.as_deref().unwrap_or("?");
        out.push_str(&format!(
            "task {} \"{}\" (trace {}{}){}\n",
            self.task,
            name,
            self.trace_id,
            match self.parent {
                Some(p) => format!(", parent {p}"),
                None => ", root".to_string(),
            },
            if self.truncated { " [truncated]" } else { "" },
        ));
        for h in &self.hops {
            let mut detail = String::new();
            if let Some(e) = h.event {
                detail.push_str(&format!(" event={e}"));
            }
            if h.kind == hop::STOLEN {
                if let (Some(f), Some(t)) = (h.from_node, h.node) {
                    detail.push_str(&format!(" node{f}->node{t}"));
                }
                if let Some(tier) = &h.tier {
                    detail.push_str(&format!(" tier={tier}"));
                }
            } else if let Some(n) = h.node {
                detail.push_str(&format!(" node={n}"));
            }
            out.push_str(&format!(
                "  {:>10}us  {:<13} +{}us{}\n",
                h.ts_us, h.kind, h.wall_us, detail
            ));
        }
        match self.cross_node() {
            Some((f, t)) => out.push_str(&format!(
                "  cross-node: yes (stolen from node {f} to node {t})\n"
            )),
            None => out.push_str("  cross-node: no\n"),
        }
        out.push_str(&format!("  total: {}us\n", self.total_wall_us()));
        out
    }
}

/// Reconstructs per-task causal chains from the merged timeline.
#[derive(Debug, Default)]
pub struct TraceAssembler {
    tasks: BTreeMap<(u32, u64), TaskTrace>,
}

impl TraceAssembler {
    /// Assemble from a hub's current timeline.
    pub fn from_hub(hub: &TelemetryHub) -> Self {
        Self::from_events(&hub.events())
    }

    /// Assemble from an explicit event slice (category-filters to
    /// [`TRACE_CAT`] itself, so the full merged timeline can be passed).
    pub fn from_events(events: &[TimelineEvent]) -> Self {
        let mut tasks: BTreeMap<(u32, u64), TaskTrace> = BTreeMap::new();
        for ev in events {
            if ev.cat != TRACE_CAT {
                continue;
            }
            let Some(task) = arg_u64(&ev.args, "task") else {
                continue;
            };
            let trace_id = arg_u64(&ev.args, "trace").unwrap_or(task);
            let entry = tasks
                .entry((ev.track.0, task))
                .or_insert_with(|| TaskTrace {
                    track: ev.track,
                    task,
                    trace_id,
                    name: None,
                    parent: None,
                    hops: Vec::new(),
                    truncated: false,
                });
            if ev.name == hop::SPAWNED {
                entry.parent = arg_u64(&ev.args, "parent");
                if let Some(n) = arg_str(&ev.args, "task_name") {
                    entry.name = Some(n.to_string());
                }
            }
            entry.hops.push(TraceHop {
                kind: ev.name.clone(),
                ts_us: ev.ts_us,
                wall_us: 0,
                node: arg_u64(&ev.args, "node").or_else(|| arg_u64(&ev.args, "to")),
                from_node: arg_u64(&ev.args, "from"),
                tier: arg_str(&ev.args, "tier").map(String::from),
                event: arg_u64(&ev.args, "event"),
            });
        }
        for t in tasks.values_mut() {
            t.hops.sort_by_key(|h| (h.ts_us, hop_order(&h.kind)));
            for i in 0..t.hops.len().saturating_sub(1) {
                t.hops[i].wall_us = t.hops[i + 1].ts_us.saturating_sub(t.hops[i].ts_us);
            }
            t.truncated = t
                .hops
                .first()
                .map(|h| h.kind != hop::SPAWNED)
                .unwrap_or(false);
        }
        TraceAssembler { tasks }
    }

    /// All assembled tasks, ordered by (track, task id).
    pub fn tasks(&self) -> impl Iterator<Item = &TaskTrace> {
        self.tasks.values()
    }

    /// Number of assembled tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no trace hops were found.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Look up one task by id (searches every track).
    pub fn task(&self, id: u64) -> Option<&TaskTrace> {
        self.tasks
            .iter()
            .find(|((_, t), _)| *t == id)
            .map(|(_, v)| v)
    }

    /// Tasks whose id or name matches `query`: an exact id (`"7"` or
    /// `"task7"`), or a case-sensitive name substring.
    pub fn find(&self, query: &str) -> Vec<&TaskTrace> {
        let id = query
            .strip_prefix("task")
            .unwrap_or(query)
            .parse::<u64>()
            .ok();
        self.tasks
            .values()
            .filter(|t| {
                id.map(|i| t.task == i).unwrap_or(false)
                    || t.name
                        .as_deref()
                        .map(|n| n.contains(query))
                        .unwrap_or(false)
            })
            .collect()
    }

    /// The critical path of `task`: the chain of ancestors (via `parent`
    /// links on the same track) from the root down to the task itself.
    /// Stops at a missing ancestor (evicted from the ring).
    pub fn critical_path(&self, task: &TaskTrace) -> Vec<&TaskTrace> {
        let mut chain: Vec<&TaskTrace> = Vec::new();
        let mut cursor = self.tasks.get(&(task.track.0, task.task));
        while let Some(t) = cursor {
            // A malformed parent cycle cannot loop forever: bail once the
            // chain is longer than the task table.
            if chain.len() > self.tasks.len() {
                break;
            }
            chain.push(t);
            cursor = t.parent.and_then(|p| self.tasks.get(&(t.track.0, p)));
        }
        chain.reverse();
        chain
    }

    /// Export the assembled chains as Perfetto/Chrome trace JSON: each
    /// causal tree (trace id) becomes a "process", each task a "thread",
    /// and each hop a complete span lasting until the next hop — so the
    /// per-hop wall time is directly visible on the timeline.
    pub fn to_perfetto_json(&self) -> String {
        let mut out = String::with_capacity(self.tasks.len() * 256 + 128);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut named_pids: Vec<u64> = Vec::new();
        for t in self.tasks.values() {
            let pid = t.trace_id + 1;
            if !named_pids.contains(&pid) {
                named_pids.push(pid);
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":"
                ));
                push_str_literal(&mut out, &format!("trace {}", t.trace_id));
                out.push_str("}}");
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":",
                t.task
            ));
            push_str_literal(
                &mut out,
                &format!("task {} {}", t.task, t.name.as_deref().unwrap_or("?")),
            );
            out.push_str("}}");
            for h in &t.hops {
                out.push(',');
                out.push_str("{\"name\":");
                push_str_literal(&mut out, &h.kind);
                out.push_str(&format!(
                    ",\"cat\":\"trace\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}",
                    h.ts_us,
                    h.wall_us.max(1),
                    t.task
                ));
                out.push_str(",\"args\":{");
                let mut first_arg = true;
                let mut arg = |out: &mut String, k: &str, v: String| {
                    if !first_arg {
                        out.push(',');
                    }
                    first_arg = false;
                    push_str_literal(out, k);
                    out.push(':');
                    out.push_str(&v);
                };
                if let Some(n) = h.node {
                    arg(&mut out, "node", n.to_string());
                }
                if let Some(f) = h.from_node {
                    arg(&mut out, "from", f.to_string());
                }
                if let Some(tier) = &h.tier {
                    let mut s = String::new();
                    push_str_literal(&mut s, tier);
                    arg(&mut out, "tier", s);
                }
                if let Some(e) = h.event {
                    arg(&mut out, "event", e.to_string());
                }
                out.push_str("}}");
            }
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"metadata\":{{\"assembled_tasks\":{}}}}}",
            self.tasks.len()
        ));
        out
    }
}

/// Helper for producers: build the common arg vector every hop carries.
pub fn hop_args(task: u64, trace_id: u64) -> Vec<(String, ArgValue)> {
    vec![
        ("task".to_string(), ArgValue::U64(task)),
        ("trace".to_string(), ArgValue::U64(trace_id)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::EventKind;

    fn hop_event(
        task: u64,
        name: &str,
        ts_us: u64,
        extra: Vec<(String, ArgValue)>,
    ) -> TimelineEvent {
        let mut args = hop_args(task, 1);
        args.extend(extra);
        TimelineEvent {
            track: TrackId(0),
            lane: 0,
            cat: TRACE_CAT.to_string(),
            name: name.to_string(),
            ts_us,
            kind: EventKind::Instant,
            args,
        }
    }

    fn full_chain() -> Vec<TimelineEvent> {
        vec![
            hop_event(
                2,
                hop::SPAWNED,
                10,
                vec![
                    ("parent".to_string(), ArgValue::U64(1)),
                    ("task_name".to_string(), ArgValue::Str("consume".into())),
                ],
            ),
            hop_event(
                2,
                hop::DEPS_RELEASED,
                20,
                vec![("event".to_string(), ArgValue::U64(4))],
            ),
            hop_event(
                2,
                hop::ENQUEUED,
                25,
                vec![("node".to_string(), ArgValue::U64(0))],
            ),
            hop_event(
                2,
                hop::STOLEN,
                40,
                vec![
                    ("from".to_string(), ArgValue::U64(0)),
                    ("to".to_string(), ArgValue::U64(2)),
                    ("tier".to_string(), ArgValue::Str("normal".into())),
                ],
            ),
            hop_event(
                2,
                hop::STARTED,
                45,
                vec![
                    ("node".to_string(), ArgValue::U64(2)),
                    ("worker".to_string(), ArgValue::U64(5)),
                ],
            ),
            hop_event(
                2,
                hop::FINISHED,
                95,
                vec![("node".to_string(), ArgValue::U64(2))],
            ),
        ]
    }

    #[test]
    fn assembles_causal_chain_in_order() {
        // Shuffle the input: assembly must not depend on arrival order.
        let mut events = full_chain();
        events.reverse();
        let asm = TraceAssembler::from_events(&events);
        assert_eq!(asm.len(), 1);
        let t = asm.task(2).unwrap();
        let kinds: Vec<&str> = t.hops.iter().map(|h| h.kind.as_str()).collect();
        assert_eq!(
            kinds,
            [
                hop::SPAWNED,
                hop::DEPS_RELEASED,
                hop::ENQUEUED,
                hop::STOLEN,
                hop::STARTED,
                hop::FINISHED
            ]
        );
        assert_eq!(t.name.as_deref(), Some("consume"));
        assert_eq!(t.parent, Some(1));
        assert_eq!(t.trace_id, 1);
        assert!(!t.truncated);
        assert!(t.completed());
        // Wall times are deltas to the next hop.
        assert_eq!(t.hops[0].wall_us, 10); // spawned -> deps_released
        assert_eq!(t.hops[3].wall_us, 5); // stolen -> started
        assert_eq!(t.hops[4].wall_us, 50); // started -> finished (execution)
        assert_eq!(t.total_wall_us(), 85);
        assert_eq!(t.cross_node(), Some((0, 2)));
    }

    #[test]
    fn same_timestamp_hops_sort_by_lifecycle_order() {
        let events = vec![
            hop_event(3, hop::STARTED, 50, Vec::new()),
            hop_event(3, hop::ENQUEUED, 50, Vec::new()),
            hop_event(3, hop::SPAWNED, 50, Vec::new()),
            hop_event(3, hop::FINISHED, 50, Vec::new()),
        ];
        let asm = TraceAssembler::from_events(&events);
        let kinds: Vec<&str> = asm
            .task(3)
            .unwrap()
            .hops
            .iter()
            .map(|h| h.kind.as_str())
            .collect();
        assert_eq!(
            kinds,
            [hop::SPAWNED, hop::ENQUEUED, hop::STARTED, hop::FINISHED]
        );
    }

    #[test]
    fn truncated_trace_is_flagged_but_still_usable() {
        // Ring overflow evicted spawned + deps_released.
        let events: Vec<TimelineEvent> = full_chain().into_iter().skip(2).collect();
        let asm = TraceAssembler::from_events(&events);
        let t = asm.task(2).unwrap();
        assert!(t.truncated);
        assert!(t.completed());
        assert_eq!(t.cross_node(), Some((0, 2)));
        assert_eq!(t.hops.len(), 4);
        assert!(t.to_text().contains("[truncated]"));
    }

    #[test]
    fn critical_path_follows_parent_links() {
        let mut events = full_chain();
        events.push(hop_event(1, hop::SPAWNED, 1, Vec::new()));
        events.push(hop_event(1, hop::FINISHED, 22, Vec::new()));
        let asm = TraceAssembler::from_events(&events);
        let leaf = asm.task(2).unwrap();
        let path: Vec<u64> = asm.critical_path(leaf).iter().map(|t| t.task).collect();
        assert_eq!(path, [1, 2]);
        // A missing ancestor stops the walk instead of panicking.
        let orphan_events = full_chain();
        let asm = TraceAssembler::from_events(&orphan_events);
        let path: Vec<u64> = asm
            .critical_path(asm.task(2).unwrap())
            .iter()
            .map(|t| t.task)
            .collect();
        assert_eq!(path, [2]);
    }

    #[test]
    fn find_matches_id_and_name() {
        let asm = TraceAssembler::from_events(&full_chain());
        assert_eq!(asm.find("2").len(), 1);
        assert_eq!(asm.find("task2").len(), 1);
        assert_eq!(asm.find("consume").len(), 1);
        assert!(asm.find("missing").is_empty());
    }

    #[test]
    fn text_view_shows_hops_and_attribution() {
        let asm = TraceAssembler::from_events(&full_chain());
        let text = asm.task(2).unwrap().to_text();
        assert!(text.contains("task 2 \"consume\""));
        assert!(text.contains("stolen"));
        assert!(text.contains("node0->node2"));
        assert!(text.contains("tier=normal"));
        assert!(text.contains("cross-node: yes (stolen from node 0 to node 2)"));
        assert!(text.contains("total: 85us"));
    }

    #[test]
    fn perfetto_export_is_valid_json_with_hop_spans() {
        let asm = TraceAssembler::from_events(&full_chain());
        let out = asm.to_perfetto_json();
        let parsed: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().unwrap();
        // 1 process_name + 1 thread_name + 6 hop spans.
        assert_eq!(events.len(), 8);
        assert!(events
            .iter()
            .any(|e| e["name"] == "stolen" && e["args"]["from"] == 0));
        assert_eq!(parsed["metadata"]["assembled_tasks"], 1);
    }

    #[test]
    fn non_trace_events_are_ignored() {
        let mut events = full_chain();
        events.push(TimelineEvent {
            track: TrackId(0),
            lane: 1,
            cat: "task".to_string(),
            name: "consume".to_string(),
            ts_us: 45,
            kind: EventKind::Span { dur_us: 50 },
            args: Vec::new(),
        });
        let asm = TraceAssembler::from_events(&events);
        assert_eq!(asm.len(), 1);
        assert_eq!(asm.task(2).unwrap().hops.len(), 6);
    }
}
