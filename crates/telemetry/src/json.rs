//! Minimal hand-rolled JSON writer used by the exporters.
//!
//! The exporters only ever emit objects/arrays built from strings and
//! numbers, so a tiny escape-and-append helper keeps this crate free of
//! external dependencies. Output is validated against `serde_json` in the
//! crate's integration tests.

/// Append `s` to `out` as a JSON string literal (including the quotes).
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values (which JSON
/// cannot represent) are written as `0`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps enough precision to round-trip and always includes
        // a decimal point or exponent, which is still valid JSON.
        out.push_str(&format!("{:?}", v));
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn numbers_are_finite() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(',');
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.5,0,0");
    }

    #[test]
    fn plain_integers_still_have_a_marker() {
        let mut out = String::new();
        push_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
    }
}
