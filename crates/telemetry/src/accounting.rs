//! Per-tenant resource accounting: the [`TenantLedger`].
//!
//! The paper's cooperating-applications contract says every application
//! gets a negotiated share of the machine — but until now fairness only
//! existed as a *search objective*, never as a measured quantity. The
//! ledger closes that gap: it books, per tenant (one tenant = one managed
//! runtime or simulated application),
//!
//! * **CPU time delivered per NUMA node** — wall-clock window length ×
//!   observed per-node worker occupancy,
//! * **locality ratio** — local pops (own deque, same-node sibling
//!   steals, injector takes) versus cross-node steals, from the
//!   scheduler's `coop_sched_local_pops_total` /
//!   `coop_sched_steals_total{source="remote"}` counters,
//! * **delivered vs. entitled share** — the fraction of this window's
//!   executed tasks versus the share the agent's last applied command
//!   granted, and
//! * a **Jain's fairness index** across the live tenants' delivered
//!   shares.
//!
//! Feeding the ledger is a control-plane operation: the agent (or the
//! memsim supervisor) calls [`TenantLedger::tick`] once per decision tick
//! with cumulative counter samples it already collects, so the scheduler
//! hot path gains no new locks — the ledger piggybacks on the per-worker
//! metric shards that already exist.
//!
//! Samples are *cumulative* counters. If any counter in a tenant's sample
//! runs backwards (a restarted runtime, a corrupted reply), the whole
//! measurement window is **discarded** — the same rule the agent applies
//! to share measurements — instead of booking negative usage; the tenant
//! keeps its previous delivered share and the discard is counted in
//! `coop_tenant_windows_discarded_total`.
//!
//! Lifecycle is tracked as **epochs**: managing or re-admitting a tenant
//! opens one, evicting it closes one. Epoch edges land on the timeline as
//! `tenant` instants, so a tenant's accounting can always be scoped to
//! the interval it was actually admitted.

use crate::json::{push_f64, push_str_literal};
use crate::metrics::MetricsRegistry;
use crate::timeline::{ArgValue, TelemetryHub};
use std::sync::{Mutex, MutexGuard};

/// Timeline category used for tenant epoch events.
pub const TENANT_CAT: &str = "tenant";

/// Maximum retained `(ts_us, delivered_share)` points per tenant.
pub const SHARE_HISTORY_LIMIT: usize = 1024;

/// Jain's fairness index over a set of allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// Bounded to `[1/n, 1]`; `1` iff all values are equal, `1/n` when one
/// value monopolizes. Permutation- and scale-invariant. An empty or
/// all-zero input is defined as perfectly fair (`1.0`); non-finite or
/// negative entries are ignored.
pub fn jain_index(values: &[f64]) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &v in values {
        if v.is_finite() && v >= 0.0 {
            n += 1;
            sum += v;
            sum_sq += v * v;
        }
    }
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// The scheduler's locality counters for one runtime, read from the
/// shared registry: `(local, remote)` where `local` counts own-deque /
/// injector pops plus same-node sibling steals and `remote` counts
/// cross-node steals (both priority tiers).
pub fn scheduler_locality(registry: &MetricsRegistry, runtime: &str) -> (u64, u64) {
    let mut local = registry
        .counter("coop_sched_local_pops_total", &[("runtime", runtime)])
        .get();
    let mut remote = 0u64;
    for tier in ["high", "normal"] {
        local += registry
            .counter(
                "coop_sched_steals_total",
                &[("runtime", runtime), ("tier", tier), ("source", "sibling")],
            )
            .get();
        remote += registry
            .counter(
                "coop_sched_steals_total",
                &[("runtime", runtime), ("tier", tier), ("source", "remote")],
            )
            .get();
    }
    (local, remote)
}

/// One tenant's *cumulative* counters at a sampling instant. All fields
/// except `running_per_node` must be monotonic; a decrease in any of them
/// discards the window (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSample {
    /// Tenant (runtime / simulated application) name.
    pub tenant: String,
    /// Tasks executed since the tenant started.
    pub tasks_executed: u64,
    /// Microseconds since the tenant started.
    pub uptime_us: u64,
    /// Tasks executed per NUMA node since the tenant started.
    pub per_node_tasks: Vec<u64>,
    /// Workers currently running per NUMA node (occupancy — not
    /// monotonic, never triggers a discard).
    pub running_per_node: Vec<u64>,
    /// Local pops (own deque, sibling steals, injector takes), cumulative.
    pub local_pops: u64,
    /// Cross-node steals, cumulative.
    pub remote_steals: u64,
    /// Fuel-exhaustion preemptions (tasks parked at a safe point),
    /// cumulative.
    pub preemptions: u64,
    /// CPU time booked past the watchdog deadline by runaway tasks,
    /// microseconds, cumulative.
    pub overbudget_cpu_us: u64,
}

impl TenantSample {
    /// `true` if any monotonic counter of `self` is below `baseline` —
    /// the window-discard trigger.
    fn regressed_from(&self, baseline: &TenantSample) -> bool {
        if self.tasks_executed < baseline.tasks_executed
            || self.uptime_us < baseline.uptime_us
            || self.local_pops < baseline.local_pops
            || self.remote_steals < baseline.remote_steals
            || self.preemptions < baseline.preemptions
            || self.overbudget_cpu_us < baseline.overbudget_cpu_us
        {
            return true;
        }
        self.per_node_tasks
            .iter()
            .zip(baseline.per_node_tasks.iter())
            .any(|(now, was)| now < was)
    }
}

/// One admission interval of a tenant: opened when the agent manages or
/// re-admits it, closed when it is evicted.
#[derive(Debug, Clone, PartialEq)]
pub struct Epoch {
    /// Hub-clock open time, microseconds.
    pub opened_us: u64,
    /// Hub-clock close time; `None` while the epoch is open.
    pub closed_us: Option<u64>,
    /// Why the epoch opened (`managed`, `readmitted`, `revived`, …).
    pub reason: String,
}

/// A point-in-time copy of one tenant's account.
#[derive(Debug, Clone)]
pub struct TenantAccount {
    /// Tenant name.
    pub tenant: String,
    /// `true` while the tenant's latest epoch is open.
    pub live: bool,
    /// Share the agent's last applied command entitled the tenant to
    /// (fraction of the machine's cores), if one was ever pushed.
    pub entitled_share: Option<f64>,
    /// The tenant's fraction of all tasks delivered in the last accepted
    /// window.
    pub delivered_share: f64,
    /// `local / (local + remote)` over the accumulated scheduler
    /// counters; `1.0` before any pop was observed.
    pub locality_ratio: f64,
    /// Tasks delivered across all accepted windows.
    pub tasks_total: u64,
    /// CPU time delivered per NUMA node (window length × occupancy),
    /// microseconds, across all accepted windows.
    pub cpu_us_per_node: Vec<u64>,
    /// Local pops accumulated across accepted windows.
    pub local_pops: u64,
    /// Cross-node steals accumulated across accepted windows.
    pub remote_steals: u64,
    /// Fuel-exhaustion preemptions accumulated across accepted windows.
    pub preemptions: u64,
    /// Over-budget (runaway) CPU time booked against this tenant,
    /// microseconds, across accepted windows.
    pub overbudget_cpu_us: u64,
    /// Preemptions per second over the last accepted window (`0.0`
    /// before any window with a non-zero length was booked).
    pub preemption_rate: f64,
    /// Measurement windows booked.
    pub windows_accepted: u64,
    /// Measurement windows discarded on counter regression.
    pub windows_discarded: u64,
    /// Admission epochs, oldest first.
    pub epochs: Vec<Epoch>,
    /// Recent `(ts_us, delivered_share)` points, oldest first (capped at
    /// [`SHARE_HISTORY_LIMIT`]).
    pub share_history: Vec<(u64, f64)>,
}

/// A point-in-time copy of the whole ledger.
#[derive(Debug, Clone)]
pub struct LedgerSnapshot {
    /// Hub-clock time of the last [`TenantLedger::tick`].
    pub updated_us: u64,
    /// Jain's fairness index over the live tenants' delivered shares.
    pub jain: f64,
    /// Per-tenant accounts, sorted by tenant name.
    pub tenants: Vec<TenantAccount>,
}

impl LedgerSnapshot {
    /// The account of `tenant`, if it was ever seen.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantAccount> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

#[derive(Debug)]
struct TenantState {
    name: String,
    live: bool,
    baseline: Option<TenantSample>,
    entitled_share: Option<f64>,
    delivered_share: f64,
    tasks_total: u64,
    cpu_us_per_node: Vec<u64>,
    local_pops: u64,
    remote_steals: u64,
    preemptions: u64,
    overbudget_cpu_us: u64,
    preemption_rate: f64,
    windows_accepted: u64,
    windows_discarded: u64,
    epochs: Vec<Epoch>,
    share_history: Vec<(u64, f64)>,
}

impl TenantState {
    fn new(name: &str) -> Self {
        TenantState {
            name: name.to_string(),
            live: false,
            baseline: None,
            entitled_share: None,
            delivered_share: 0.0,
            tasks_total: 0,
            cpu_us_per_node: Vec::new(),
            local_pops: 0,
            remote_steals: 0,
            preemptions: 0,
            overbudget_cpu_us: 0,
            preemption_rate: 0.0,
            windows_accepted: 0,
            windows_discarded: 0,
            epochs: Vec::new(),
            share_history: Vec::new(),
        }
    }

    fn locality_ratio(&self) -> f64 {
        let total = self.local_pops + self.remote_steals;
        if total == 0 {
            1.0
        } else {
            self.local_pops as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    tenants: Vec<TenantState>,
    updated_us: u64,
    jain: f64,
}

/// The per-tenant resource accounting ledger (see the module docs).
///
/// Install one on the hub with
/// [`TelemetryHub::install_tenant_ledger`](crate::TelemetryHub::install_tenant_ledger)
/// so the HTTP server's `/tenants` route and `coop top` can reach it;
/// the agent and the memsim supervisor feed any installed ledger
/// automatically.
#[derive(Debug, Default)]
pub struct TenantLedger {
    inner: Mutex<LedgerInner>,
}

/// The `/tenants` body served when no ledger is installed on the hub.
pub(crate) const EMPTY_TENANTS_JSON: &str = "{\"updated_us\":0,\"jain\":1.0,\"tenants\":[]}";

fn lock(ledger: &TenantLedger) -> MutexGuard<'_, LedgerInner> {
    ledger.inner.lock().unwrap_or_else(|e| e.into_inner())
}

fn state_mut<'a>(inner: &'a mut LedgerInner, tenant: &str) -> &'a mut TenantState {
    if let Some(idx) = inner.tenants.iter().position(|t| t.name == tenant) {
        return &mut inner.tenants[idx];
    }
    // Keep the vector sorted by name so every export is deterministic.
    let idx = inner
        .tenants
        .partition_point(|t| t.name.as_str() < tenant);
    inner.tenants.insert(idx, TenantState::new(tenant));
    &mut inner.tenants[idx]
}

impl TenantLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open an admission epoch for `tenant` (creating its account on
    /// first sight), mark it live, and put a `tenant`/`epoch_open`
    /// instant on the timeline. Opening an already-open tenant is a
    /// no-op.
    pub fn open_epoch(&self, hub: &TelemetryHub, tenant: &str, reason: &str, now_us: u64) {
        {
            let mut inner = lock(self);
            let state = state_mut(&mut inner, tenant);
            if state.live {
                return;
            }
            state.live = true;
            state.epochs.push(Epoch {
                opened_us: now_us,
                closed_us: None,
                reason: reason.to_string(),
            });
            // A tenant returning from eviction restarts its counters;
            // never diff the new life against the old one's baseline.
            state.baseline = None;
        }
        self.epoch_instant(hub, tenant, "epoch_open", reason, now_us);
    }

    /// Close `tenant`'s open epoch (eviction), mark it not live, and put
    /// a `tenant`/`epoch_close` instant on the timeline. Closing an
    /// already-closed (or unknown) tenant is a no-op.
    pub fn close_epoch(&self, hub: &TelemetryHub, tenant: &str, reason: &str, now_us: u64) {
        {
            let mut inner = lock(self);
            let Some(state) = inner.tenants.iter_mut().find(|t| t.name == tenant) else {
                return;
            };
            if !state.live {
                return;
            }
            state.live = false;
            if let Some(epoch) = state.epochs.last_mut() {
                if epoch.closed_us.is_none() {
                    epoch.closed_us = Some(now_us);
                }
            }
        }
        self.epoch_instant(hub, tenant, "epoch_close", reason, now_us);
    }

    fn epoch_instant(&self, hub: &TelemetryHub, tenant: &str, name: &str, reason: &str, ts: u64) {
        let track = hub.register_track("tenants");
        hub.record_instant_at(
            0,
            track,
            0,
            TENANT_CAT,
            name,
            ts,
            vec![
                ("tenant".to_string(), ArgValue::Str(tenant.to_string())),
                ("reason".to_string(), ArgValue::Str(reason.to_string())),
            ],
        );
    }

    /// Record the share `tenant` is entitled to (fraction of the
    /// machine's cores), from the agent's last applied command or the
    /// supervisor's current assignment. Published as
    /// `coop_tenant_entitled_share` on the next [`tick`](Self::tick).
    pub fn set_entitlement(&self, tenant: &str, share: f64) {
        let mut inner = lock(self);
        state_mut(&mut inner, tenant).entitled_share = Some(share.clamp(0.0, 1.0));
    }

    /// Book one measurement window from cumulative counter samples.
    ///
    /// For each sample the delta against the tenant's previous accepted
    /// sample is computed (a tenant's first sample diffs against zero —
    /// counters start at zero at birth); a window whose counters ran
    /// backwards is discarded whole (the baseline resets to the new
    /// sample). Live
    /// tenants *not* present in `samples` (and sampled tenants with no
    /// work) delivered nothing this window — their share drops to zero.
    /// Afterwards delivered shares, the Jain index and every
    /// `coop_tenant_*` metric are refreshed on `hub`.
    pub fn tick(&self, hub: &TelemetryHub, now_us: u64, samples: &[TenantSample]) {
        let registry = hub.registry();
        let mut inner = lock(self);
        inner.updated_us = now_us;

        // Window weights (delta tasks) per sampled tenant, in sample
        // order; `None` marks a discarded window.
        let mut weights: Vec<(String, Option<u64>)> = Vec::with_capacity(samples.len());
        for sample in samples {
            let state = state_mut(&mut inner, &sample.tenant);
            // A fresh tenant (or a new life after an epoch re-open) diffs
            // against zero: runtime counters start at zero at birth, so
            // the first sample *is* the work delivered since then — and
            // ledger totals stay reconcilable with the cumulative
            // scheduler counters.
            let baseline = state.baseline.take().unwrap_or_default();
            if sample.regressed_from(&baseline) {
                state.windows_discarded += 1;
                state.baseline = Some(sample.clone());
                registry
                    .counter(
                        "coop_tenant_windows_discarded_total",
                        &[("tenant", &sample.tenant)],
                    )
                    .inc();
                weights.push((sample.tenant.clone(), None));
                continue;
            }

            let tasks_delta = sample.tasks_executed - baseline.tasks_executed;
            let window_us = sample.uptime_us - baseline.uptime_us;
            let local_delta = sample.local_pops - baseline.local_pops;
            let remote_delta = sample.remote_steals - baseline.remote_steals;
            let preempt_delta = sample.preemptions - baseline.preemptions;
            let overbudget_delta = sample.overbudget_cpu_us - baseline.overbudget_cpu_us;
            state.tasks_total += tasks_delta;
            state.local_pops += local_delta;
            state.remote_steals += remote_delta;
            state.preemptions += preempt_delta;
            state.overbudget_cpu_us += overbudget_delta;
            state.preemption_rate = if window_us > 0 {
                preempt_delta as f64 / (window_us as f64 / 1e6)
            } else {
                0.0
            };
            if preempt_delta > 0 {
                registry
                    .counter(
                        "coop_tenant_preemptions_total",
                        &[("tenant", &sample.tenant)],
                    )
                    .add(preempt_delta);
            }
            if overbudget_delta > 0 {
                registry
                    .counter(
                        "coop_tenant_overbudget_cpu_us_total",
                        &[("tenant", &sample.tenant)],
                    )
                    .add(overbudget_delta);
            }
            let nodes = sample
                .per_node_tasks
                .len()
                .max(sample.running_per_node.len());
            if state.cpu_us_per_node.len() < nodes {
                state.cpu_us_per_node.resize(nodes, 0);
            }
            for node in 0..nodes {
                let running = sample.running_per_node.get(node).copied().unwrap_or(0);
                let cpu_us = window_us * running;
                state.cpu_us_per_node[node] += cpu_us;
                if cpu_us > 0 {
                    registry
                        .counter(
                            "coop_tenant_cpu_us_total",
                            &[("tenant", &sample.tenant), ("node", &node.to_string())],
                        )
                        .add(cpu_us);
                }
            }
            state.windows_accepted += 1;
            state.baseline = Some(sample.clone());

            registry
                .counter("coop_tenant_tasks_total", &[("tenant", &sample.tenant)])
                .add(tasks_delta);
            weights.push((sample.tenant.clone(), Some(tasks_delta)));
        }

        // Delivered shares: each accepted window's tasks over the total
        // delivered this window. Discarded windows keep their previous
        // share (the PR-3 rule: no data, not zero data); tenants that
        // were not sampled delivered nothing.
        let total: u64 = weights.iter().filter_map(|(_, w)| *w).sum();
        for state in inner.tenants.iter_mut() {
            match weights.iter().find(|(name, _)| *name == state.name) {
                Some((_, Some(delta))) => {
                    state.delivered_share = if total > 0 {
                        *delta as f64 / total as f64
                    } else {
                        0.0
                    };
                }
                Some((_, None)) => {} // discarded: keep the last share
                None => state.delivered_share = 0.0,
            }
            state.share_history.push((now_us, state.delivered_share));
            if state.share_history.len() > SHARE_HISTORY_LIMIT {
                let excess = state.share_history.len() - SHARE_HISTORY_LIMIT;
                state.share_history.drain(..excess);
            }
        }

        let live_shares: Vec<f64> = inner
            .tenants
            .iter()
            .filter(|t| t.live)
            .map(|t| t.delivered_share)
            .collect();
        inner.jain = jain_index(&live_shares);

        for state in &inner.tenants {
            let labels = [("tenant", state.name.as_str())];
            registry
                .gauge("coop_tenant_delivered_share", &labels)
                .set(state.delivered_share);
            registry
                .gauge("coop_tenant_locality_ratio", &labels)
                .set(state.locality_ratio());
            registry
                .gauge("coop_tenant_preemption_rate", &labels)
                .set(state.preemption_rate);
            if let Some(entitled) = state.entitled_share {
                registry
                    .gauge("coop_tenant_entitled_share", &labels)
                    .set(entitled);
            }
        }
        registry.gauge("coop_tenant_jain_index", &[]).set(inner.jain);
    }

    /// A point-in-time copy of every account.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let inner = lock(self);
        LedgerSnapshot {
            updated_us: inner.updated_us,
            jain: inner.jain,
            tenants: inner
                .tenants
                .iter()
                .map(|t| TenantAccount {
                    tenant: t.name.clone(),
                    live: t.live,
                    entitled_share: t.entitled_share,
                    delivered_share: t.delivered_share,
                    locality_ratio: t.locality_ratio(),
                    tasks_total: t.tasks_total,
                    cpu_us_per_node: t.cpu_us_per_node.clone(),
                    local_pops: t.local_pops,
                    remote_steals: t.remote_steals,
                    preemptions: t.preemptions,
                    overbudget_cpu_us: t.overbudget_cpu_us,
                    preemption_rate: t.preemption_rate,
                    windows_accepted: t.windows_accepted,
                    windows_discarded: t.windows_discarded,
                    epochs: t.epochs.clone(),
                    share_history: t.share_history.clone(),
                })
                .collect(),
        }
    }

    /// The canonical JSON rendering of the ledger — the exact body the
    /// HTTP server's `/tenants` route serves and `coop top --format
    /// json` prints (both call this, so they are byte-identical).
    /// Tenants are sorted by name; no wall-clock field changes between a
    /// render and a later scrape of an idle ledger.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(256 + snap.tenants.len() * 256);
        out.push_str(&format!("{{\"updated_us\":{},\"jain\":", snap.updated_us));
        push_f64(&mut out, snap.jain);
        out.push_str(",\"tenants\":[");
        for (i, t) in snap.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            push_str_literal(&mut out, &t.tenant);
            out.push_str(&format!(
                ",\"live\":{},\"entitled_share\":",
                if t.live { "true" } else { "false" }
            ));
            match t.entitled_share {
                Some(v) => push_f64(&mut out, v),
                None => out.push_str("null"),
            }
            out.push_str(",\"delivered_share\":");
            push_f64(&mut out, t.delivered_share);
            out.push_str(",\"locality_ratio\":");
            push_f64(&mut out, t.locality_ratio);
            out.push_str(&format!(",\"tasks_total\":{}", t.tasks_total));
            out.push_str(",\"cpu_us_per_node\":[");
            for (n, us) in t.cpu_us_per_node.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                out.push_str(&us.to_string());
            }
            out.push_str(&format!(
                "],\"local_pops\":{},\"remote_steals\":{},\"preemptions\":{},\"overbudget_cpu_us\":{}",
                t.local_pops, t.remote_steals, t.preemptions, t.overbudget_cpu_us
            ));
            out.push_str(",\"preemption_rate\":");
            push_f64(&mut out, t.preemption_rate);
            out.push_str(&format!(
                ",\"windows_accepted\":{},\"windows_discarded\":{}",
                t.windows_accepted, t.windows_discarded
            ));
            out.push_str(",\"epochs\":[");
            for (e, epoch) in t.epochs.iter().enumerate() {
                if e > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"opened_us\":{},\"closed_us\":", epoch.opened_us));
                match epoch.closed_us {
                    Some(ts) => out.push_str(&ts.to_string()),
                    None => out.push_str("null"),
                }
                out.push_str(",\"reason\":");
                push_str_literal(&mut out, &epoch.reason);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// A fixed-width text table of the ledger (for `coop top`).
    pub fn to_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        out.push_str(&format!(
            "tenants: {}   jain fairness index: {:.4}\n",
            snap.tenants.len(),
            snap.jain
        ));
        out.push_str(&format!(
            "{:<14} {:>5} {:>9} {:>9} {:>9} {:>10} {:>7} {:>7} {:>5} {:>5}\n",
            "TENANT",
            "LIVE",
            "ENTITLED",
            "DELIVERED",
            "LOCALITY",
            "TASKS",
            "LOCAL",
            "REMOTE",
            "WIN",
            "DISC"
        ));
        for t in &snap.tenants {
            let entitled = match t.entitled_share {
                Some(v) => format!("{:.3}", v),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<14} {:>5} {:>9} {:>9.3} {:>9.3} {:>10} {:>7} {:>7} {:>5} {:>5}\n",
                t.tenant,
                if t.live { "yes" } else { "no" },
                entitled,
                t.delivered_share,
                t.locality_ratio,
                t.tasks_total,
                t.local_pops,
                t.remote_steals,
                t.windows_accepted,
                t.windows_discarded
            ));
            for (node, us) in t.cpu_us_per_node.iter().enumerate() {
                if *us > 0 {
                    out.push_str(&format!("    node{node}: {us} cpu-us\n"));
                }
            }
            if t.preemptions > 0 || t.overbudget_cpu_us > 0 {
                out.push_str(&format!(
                    "    preemptions: {} ({:.2}/s)   overbudget: {} cpu-us\n",
                    t.preemptions, t.preemption_rate, t.overbudget_cpu_us
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample(tenant: &str, tasks: u64, uptime_us: u64) -> TenantSample {
        TenantSample {
            tenant: tenant.to_string(),
            tasks_executed: tasks,
            uptime_us,
            per_node_tasks: vec![tasks / 2, tasks - tasks / 2],
            running_per_node: vec![1, 1],
            local_pops: tasks,
            remote_steals: 0,
            preemptions: 0,
            overbudget_cpu_us: 0,
        }
    }

    // --- Jain's index property tests (satellite) ---

    #[test]
    fn jain_equal_shares_is_one() {
        for n in 1..20 {
            let xs = vec![0.37f64; n];
            assert!((jain_index(&xs) - 1.0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn jain_is_bounded_between_one_over_n_and_one() {
        // A deterministic LCG generates arbitrary non-negative inputs.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 100.0
        };
        for n in 1..=64usize {
            let xs: Vec<f64> = (0..n).map(|_| next()).collect();
            let j = jain_index(&xs);
            assert!(
                (1.0 / n as f64) - 1e-12 <= j && j <= 1.0 + 1e-12,
                "n={n} jain={j} xs={xs:?}"
            );
        }
        // The lower bound is attained by a monopolist.
        let mut monopolist = vec![0.0; 8];
        monopolist[3] = 5.0;
        assert!((jain_index(&monopolist) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn jain_is_permutation_invariant() {
        let xs = [4.0, 1.0, 0.0, 9.5, 2.25, 7.0];
        let base = jain_index(&xs);
        // Walk a few rotations and a reversal — all must agree.
        let mut rotated = xs.to_vec();
        for _ in 0..xs.len() {
            rotated.rotate_left(1);
            assert!((jain_index(&rotated) - base).abs() < 1e-12);
        }
        let reversed: Vec<f64> = xs.iter().rev().copied().collect();
        assert!((jain_index(&reversed) - base).abs() < 1e-12);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        // Non-finite and negative entries are ignored, not booked.
        assert!((jain_index(&[1.0, 1.0, f64::NAN, -3.0]) - 1.0).abs() < 1e-12);
    }

    // --- Ledger behaviour ---

    #[test]
    fn books_deltas_and_computes_shares() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = TenantLedger::new();
        ledger.open_epoch(&hub, "a", "managed", 0);
        ledger.open_epoch(&hub, "b", "managed", 0);

        ledger.tick(&hub, 10, &[sample("a", 0, 0), sample("b", 0, 0)]);
        ledger.tick(&hub, 20, &[sample("a", 300, 1000), sample("b", 100, 1000)]);

        let snap = ledger.snapshot();
        let a = snap.tenant("a").unwrap();
        let b = snap.tenant("b").unwrap();
        assert_eq!(a.tasks_total, 300);
        assert_eq!(b.tasks_total, 100);
        assert!((a.delivered_share - 0.75).abs() < 1e-12);
        assert!((b.delivered_share - 0.25).abs() < 1e-12);
        // CPU time: 1000 us window x 1 running worker per node.
        assert_eq!(a.cpu_us_per_node, vec![1000, 1000]);
        assert!((snap.jain - jain_index(&[0.75, 0.25])).abs() < 1e-12);
        // Metrics are published.
        assert_eq!(
            hub.registry()
                .counter("coop_tenant_tasks_total", &[("tenant", "a")])
                .get(),
            300
        );
        assert_eq!(
            hub.registry()
                .gauge_value("coop_tenant_delivered_share", &[("tenant", "a")]),
            Some(0.75)
        );
        assert_eq!(
            hub.registry().gauge_value("coop_tenant_jain_index", &[]),
            Some(snap.jain)
        );
    }

    #[test]
    fn backwards_counters_discard_the_window_not_book_negative_usage() {
        // Satellite: the PR-3 discard rule. A restarted tenant reports
        // counters below its baseline; the ledger must drop the whole
        // window (keeping the previous totals and share) instead of
        // booking bogus usage.
        let hub = Arc::new(TelemetryHub::new());
        let ledger = TenantLedger::new();
        ledger.open_epoch(&hub, "a", "managed", 0);
        ledger.open_epoch(&hub, "b", "managed", 0);
        ledger.tick(&hub, 10, &[sample("a", 100, 1000), sample("b", 100, 1000)]);
        ledger.tick(&hub, 20, &[sample("a", 200, 2000), sample("b", 200, 2000)]);
        let before = ledger.snapshot();
        let share_before = before.tenant("a").unwrap().delivered_share;
        // First window books from zero (100), second books the delta.
        assert_eq!(before.tenant("a").unwrap().tasks_total, 200);

        // "a" restarts: tasks_executed collapses to 5.
        ledger.tick(&hub, 30, &[sample("a", 5, 50), sample("b", 300, 3000)]);
        let after = ledger.snapshot();
        let a = after.tenant("a").unwrap();
        assert_eq!(a.windows_discarded, 1);
        assert_eq!(a.tasks_total, 200, "discarded window must book nothing");
        assert_eq!(
            a.delivered_share, share_before,
            "a discarded window keeps the previous share"
        );
        assert_eq!(
            hub.registry()
                .counter("coop_tenant_windows_discarded_total", &[("tenant", "a")])
                .get(),
            1
        );
        // The next window diffs against the restarted baseline.
        ledger.tick(&hub, 40, &[sample("a", 25, 150), sample("b", 400, 4000)]);
        assert_eq!(ledger.snapshot().tenant("a").unwrap().tasks_total, 220);
    }

    #[test]
    fn preemptions_and_overbudget_cpu_are_booked_against_the_offender() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = TenantLedger::new();
        ledger.open_epoch(&hub, "hog", "managed", 0);
        ledger.open_epoch(&hub, "meek", "managed", 0);

        let mut hog = sample("hog", 100, 1_000_000);
        hog.preemptions = 8;
        hog.overbudget_cpu_us = 40_000;
        ledger.tick(&hub, 10, &[hog.clone(), sample("meek", 100, 1_000_000)]);

        let snap = ledger.snapshot();
        let offender = snap.tenant("hog").unwrap();
        assert_eq!(offender.preemptions, 8);
        assert_eq!(offender.overbudget_cpu_us, 40_000);
        // 8 preemptions over a 1 s window.
        assert!((offender.preemption_rate - 8.0).abs() < 1e-9);
        let meek = snap.tenant("meek").unwrap();
        assert_eq!(meek.preemptions, 0);
        assert_eq!(meek.preemption_rate, 0.0);
        assert_eq!(
            hub.registry()
                .counter("coop_tenant_preemptions_total", &[("tenant", "hog")])
                .get(),
            8
        );
        assert_eq!(
            hub.registry()
                .counter("coop_tenant_overbudget_cpu_us_total", &[("tenant", "hog")])
                .get(),
            40_000
        );
        assert_eq!(
            hub.registry()
                .gauge_value("coop_tenant_preemption_rate", &[("tenant", "hog")]),
            Some(8.0)
        );

        // A regressing preemption counter discards the window whole.
        hog.preemptions = 2;
        ledger.tick(&hub, 20, &[hog.clone()]);
        let snap = ledger.snapshot();
        assert_eq!(snap.tenant("hog").unwrap().windows_discarded, 1);
        assert_eq!(snap.tenant("hog").unwrap().preemptions, 8);

        // JSON carries the new fields.
        let json = ledger.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed["tenants"][0]["preemptions"], 8);
        assert_eq!(parsed["tenants"][0]["overbudget_cpu_us"], 40_000);
        assert!(json.contains("\"preemption_rate\":"), "{json}");
    }

    #[test]
    fn epochs_open_and_close_with_timeline_instants() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = TenantLedger::new();
        ledger.open_epoch(&hub, "a", "managed", 5);
        ledger.open_epoch(&hub, "a", "managed", 6); // no-op: already open
        ledger.close_epoch(&hub, "a", "evicted", 9);
        ledger.close_epoch(&hub, "a", "evicted", 10); // no-op: closed
        ledger.open_epoch(&hub, "a", "readmitted", 12);

        let snap = ledger.snapshot();
        let a = snap.tenant("a").unwrap();
        assert_eq!(a.epochs.len(), 2);
        assert_eq!(a.epochs[0].opened_us, 5);
        assert_eq!(a.epochs[0].closed_us, Some(9));
        assert_eq!(a.epochs[1].opened_us, 12);
        assert_eq!(a.epochs[1].closed_us, None);
        assert!(a.live);

        let events = hub.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.cat == TENANT_CAT && e.name == "epoch_open")
                .count(),
            2
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.cat == TENANT_CAT && e.name == "epoch_close")
                .count(),
            1
        );
    }

    #[test]
    fn unsampled_live_tenant_share_drops_to_zero() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = TenantLedger::new();
        ledger.open_epoch(&hub, "a", "managed", 0);
        ledger.open_epoch(&hub, "b", "managed", 0);
        ledger.tick(&hub, 10, &[sample("a", 0, 0), sample("b", 0, 0)]);
        ledger.tick(&hub, 20, &[sample("a", 100, 1000), sample("b", 100, 1000)]);
        // "b" vanishes (evicted mid-window): the survivor takes the
        // whole window, the victim's share is zero.
        ledger.close_epoch(&hub, "b", "evicted", 25);
        ledger.tick(&hub, 30, &[sample("a", 300, 2000)]);
        let snap = ledger.snapshot();
        assert_eq!(snap.tenant("a").unwrap().delivered_share, 1.0);
        assert_eq!(snap.tenant("b").unwrap().delivered_share, 0.0);
        // Jain runs over live tenants only: one live tenant is fair.
        assert_eq!(snap.jain, 1.0);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = TenantLedger::new();
        ledger.open_epoch(&hub, "zeta", "managed", 1);
        ledger.open_epoch(&hub, "alpha", "managed", 2);
        ledger.set_entitlement("alpha", 0.5);
        ledger.tick(&hub, 10, &[sample("zeta", 10, 100), sample("alpha", 10, 100)]);
        let json = ledger.to_json();
        assert_eq!(json, ledger.to_json(), "idle ledger renders stably");
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "tenants sorted by name");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed["tenants"][0]["tenant"], "alpha");
        assert_eq!(parsed["tenants"][0]["entitled_share"], 0.5);
        assert_eq!(parsed["tenants"][1]["entitled_share"], serde_json::Value::Null);
    }

    #[test]
    fn scheduler_locality_sums_sibling_into_local() {
        let registry = MetricsRegistry::new();
        registry
            .counter("coop_sched_local_pops_total", &[("runtime", "a")])
            .add(10);
        registry
            .counter(
                "coop_sched_steals_total",
                &[("runtime", "a"), ("tier", "high"), ("source", "sibling")],
            )
            .add(3);
        registry
            .counter(
                "coop_sched_steals_total",
                &[("runtime", "a"), ("tier", "normal"), ("source", "remote")],
            )
            .add(2);
        assert_eq!(scheduler_locality(&registry, "a"), (13, 2));
    }
}
