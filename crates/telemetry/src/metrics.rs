//! Lock-free metric primitives and the [`MetricsRegistry`].
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s over
//! atomics: callers resolve them once (name + label set) and then update
//! them from hot paths with single atomic RMW operations. The registry
//! itself takes a mutex only on registration and export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of log₂ buckets in a [`Histogram`]. Bucket `i` counts samples
/// with value `<= 2^i` (bucket 0 covers 0 and 1); the last bucket is
/// unbounded.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with [`HISTOGRAM_BUCKETS`] log₂ buckets.
///
/// Values are unsigned integers (the workspace records durations in
/// microseconds and sizes in bytes, so this covers everything from 1 µs
/// to ~36 minutes / 4 GiB in the bounded buckets). `observe` is three
/// relaxed atomic adds — no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the log₂ bucket for `v`: smallest `i` with `v <= 2^i`,
/// clamped to the last bucket.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)) for v >= 2.
        let idx = (64 - (v - 1).leading_zeros()) as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot for export (buckets read individually
    /// with relaxed loads; exact consistency is not required for
    /// monitoring output).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts; bucket `i` covers
    /// values in `(2^(i-1), 2^i]` (bucket 0 covers `[0, 1]`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the log₂ bucket containing the target rank.
    ///
    /// Bucket `i` covers `(2^(i-1), 2^i]` (bucket 0 covers `[0, 1]`), so
    /// the estimate interpolates between those bounds by the rank's
    /// position within the bucket. The last bucket is unbounded; samples
    /// landing there are attributed to `[2^30, 2^31]`, which keeps the
    /// estimate finite. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if *bucket == 0 {
                continue;
            }
            let prev = cumulative as f64;
            cumulative += bucket;
            if cumulative as f64 >= target {
                let lo = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let hi = (1u64 << i) as f64;
                let fraction = ((target - prev) / *bucket as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * fraction;
            }
        }
        // Unreachable unless the snapshot is torn; fall back to the mean.
        self.mean()
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A metric identity: name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
    help: BTreeMap<String, String>,
}

/// Registry of named metrics with get-or-create semantics.
///
/// The registry mutex is only held while resolving or exporting metrics,
/// never on the update path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

fn lock_inner(registry: &MetricsRegistry) -> MutexGuard<'_, RegistryInner> {
    registry.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        Arc::clone(lock_inner(self).counters.entry(key).or_default())
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        Arc::clone(lock_inner(self).gauges.entry(key).or_default())
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        Arc::clone(lock_inner(self).histograms.entry(key).or_default())
    }

    /// Attach a `# HELP` line to `name` (shown in Prometheus output).
    pub fn set_help(&self, name: &str, help: &str) {
        lock_inner(self)
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// Current value of the gauge `name{labels}`, or `None` if that exact
    /// label set was never created (useful in tests and health probes —
    /// unlike [`MetricsRegistry::gauge`], this never creates the series).
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        lock_inner(self).gauges.get(&key).map(|g| g.get())
    }

    /// Sum of a counter across all label sets sharing `name` (useful in
    /// tests and summaries).
    pub fn counter_total(&self, name: &str) -> u64 {
        lock_inner(self)
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let inner = lock_inner(self);
        let mut out = String::new();
        let mut last_name = String::new();

        let header = |out: &mut String, last: &mut String, name: &str, kind: &str| {
            if *last != name {
                if let Some(help) = inner.help.get(name) {
                    out.push_str(&format!("# HELP {} {}\n", name, escape_help(help)));
                }
                out.push_str(&format!("# TYPE {} {}\n", name, kind));
                *last = name.to_string();
            }
        };

        for (key, counter) in &inner.counters {
            header(&mut out, &mut last_name, &key.name, "counter");
            out.push_str(&key.name);
            push_labels(&mut out, &key.labels, None);
            out.push_str(&format!(" {}\n", counter.get()));
        }
        for (key, gauge) in &inner.gauges {
            header(&mut out, &mut last_name, &key.name, "gauge");
            out.push_str(&key.name);
            push_labels(&mut out, &key.labels, None);
            let mut value = String::new();
            crate::json::push_f64(&mut value, gauge.get());
            out.push_str(&format!(" {}\n", value));
        }
        // Quantile gauges are derived per histogram key but emitted after
        // all `<name>_bucket` families so each `# TYPE` header appears
        // exactly once per family.
        let mut quantile_rows: Vec<(String, Vec<(String, String)>, &'static str, f64)> = Vec::new();
        for (key, histogram) in &inner.histograms {
            header(&mut out, &mut last_name, &key.name, "histogram");
            let snap = histogram.snapshot();
            let mut cumulative = 0u64;
            for (i, bucket) in snap.buckets.iter().enumerate() {
                cumulative += bucket;
                // Skip interior empty buckets to keep the exposition
                // readable, but always emit the first bucket so the series
                // is non-empty.
                if *bucket == 0 && i != 0 {
                    continue;
                }
                out.push_str(&format!("{}_bucket", key.name));
                push_labels(&mut out, &key.labels, Some(&format!("{}", 1u64 << i)));
                out.push_str(&format!(" {}\n", cumulative));
            }
            out.push_str(&format!("{}_bucket", key.name));
            push_labels(&mut out, &key.labels, Some("+Inf"));
            out.push_str(&format!(" {}\n", snap.count));
            out.push_str(&format!("{}_sum", key.name));
            push_labels(&mut out, &key.labels, None);
            out.push_str(&format!(" {}\n", snap.sum));
            out.push_str(&format!("{}_count", key.name));
            push_labels(&mut out, &key.labels, None);
            out.push_str(&format!(" {}\n", snap.count));
            for (q, v) in [
                ("0.5", snap.p50()),
                ("0.9", snap.p90()),
                ("0.99", snap.p99()),
            ] {
                quantile_rows.push((format!("{}_quantile", key.name), key.labels.clone(), q, v));
            }
        }
        for (name, labels, q, v) in quantile_rows {
            header(&mut out, &mut last_name, &name, "gauge");
            out.push_str(&name);
            let mut labels = labels;
            labels.push(("quantile".to_string(), q.to_string()));
            push_labels(&mut out, &labels, None);
            let mut value = String::new();
            crate::json::push_f64(&mut value, v);
            out.push_str(&format!(" {}\n", value));
        }
        out
    }

    /// All metrics flattened into `(name, labels, value)` rows for the
    /// JSON summary. Histograms contribute `<name>_count`, `<name>_sum`
    /// and `<name>_mean` rows.
    pub(crate) fn summary_rows(&self) -> Vec<(String, Vec<(String, String)>, f64)> {
        let inner = lock_inner(self);
        let mut rows = Vec::new();
        for (key, counter) in &inner.counters {
            rows.push((key.name.clone(), key.labels.clone(), counter.get() as f64));
        }
        for (key, gauge) in &inner.gauges {
            rows.push((key.name.clone(), key.labels.clone(), gauge.get()));
        }
        for (key, histogram) in &inner.histograms {
            let snap = histogram.snapshot();
            rows.push((
                format!("{}_count", key.name),
                key.labels.clone(),
                snap.count as f64,
            ));
            rows.push((
                format!("{}_sum", key.name),
                key.labels.clone(),
                snap.sum as f64,
            ));
            rows.push((
                format!("{}_mean", key.name),
                key.labels.clone(),
                snap.mean(),
            ));
            rows.push((format!("{}_p50", key.name), key.labels.clone(), snap.p50()));
            rows.push((format!("{}_p90", key.name), key.labels.clone(), snap.p90()));
            rows.push((format!("{}_p99", key.name), key.labels.clone(), snap.p99()));
        }
        rows
    }
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote and line feed must be backslash-escaped.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape `# HELP` text per the Prometheus text exposition format:
/// backslash and line feed must be backslash-escaped (quotes are legal
/// in help text and stay as-is).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Append a Prometheus label block (`{a="b",le="4"}`) to `out`. `le` is
/// the extra bucket label for histogram series.
fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, escape_label_value(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{}\"", le));
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("coop_steals_total", &[("runtime", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels resolves to the same handle.
        assert_eq!(
            reg.counter("coop_steals_total", &[("runtime", "a")]).get(),
            5
        );
        // Label order does not matter.
        let c2 = reg.counter("x", &[("a", "1"), ("b", "2")]);
        c2.inc();
        assert_eq!(reg.counter("x", &[("b", "2"), ("a", "1")]).get(), 1);

        let g = reg.gauge("coop_util", &[]);
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_sum() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5106);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().sum::<u64>(), 6);
        assert_eq!(snap.buckets[0], 2); // 0 and 1
        assert!((snap.mean() - 851.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.set_help("coop_task_latency_us", "Task body execution latency");
        let h = reg.histogram("coop_task_latency_us", &[("runtime", "prod")]);
        h.observe(3);
        h.observe(3000);
        reg.counter("coop_steals_total", &[]).add(2);
        reg.gauge("coop_node_utilization", &[("node", "0")])
            .set(0.5);

        let text = reg.to_prometheus();
        assert!(text.contains("# HELP coop_task_latency_us Task body execution latency"));
        assert!(text.contains("# TYPE coop_task_latency_us histogram"));
        assert!(
            text.contains("coop_task_latency_us_bucket{le=\"1\",runtime=\"prod\"}")
                || text.contains("coop_task_latency_us_bucket{runtime=\"prod\",le=\"1\"}")
        );
        assert!(text.contains("coop_task_latency_us_bucket{runtime=\"prod\",le=\"+Inf\"} 2"));
        assert!(text.contains("coop_task_latency_us_sum{runtime=\"prod\"} 3003"));
        assert!(text.contains("coop_task_latency_us_count{runtime=\"prod\"} 2"));
        assert!(text.contains("# TYPE coop_steals_total counter"));
        assert!(text.contains("coop_steals_total 2"));
        assert!(text.contains("coop_node_utilization{node=\"0\"} 0.5"));
    }

    #[test]
    fn histogram_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[]);
        h.observe(1); // bucket 0 (le=1)
        h.observe(2); // bucket 1 (le=2)
        h.observe(8); // bucket 3 (le=8)
        let text = reg.to_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn quantiles_on_known_distributions() {
        // Uniform 1..=1024: every power-of-two bucket 1..=10 holds half
        // the mass of the next one; the interpolated quantiles must land
        // within one bucket width of the exact order statistics.
        let h = Histogram::default();
        for v in 1..=1024u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        let exact = |q: f64| q * 1024.0;
        for q in [0.5, 0.9, 0.99] {
            let est = snap.quantile(q);
            let e = exact(q);
            // Log₂ buckets bound the estimate to a factor of 2.
            assert!(est >= e / 2.0 && est <= e * 2.0, "q={q}: est {est} vs {e}");
        }
        // A point mass: all quantiles collapse into the sample's bucket.
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(700); // bucket (512, 1024]
        }
        let snap = h.snapshot();
        for q in [0.01, 0.5, 0.99] {
            let est = snap.quantile(q);
            assert!((512.0..=1024.0).contains(&est), "q={q}: {est}");
        }
        assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
        // Empty histogram reports 0.
        assert_eq!(Histogram::default().snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn exposition_carries_quantile_gauges() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[("runtime", "a")]);
        for v in [1, 2, 4, 8, 1000] {
            h.observe(v);
        }
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE lat_us_quantile gauge"), "{text}");
        assert!(
            text.contains("lat_us_quantile{runtime=\"a\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        // Exactly one TYPE header for the quantile family.
        assert_eq!(text.matches("# TYPE lat_us_quantile gauge").count(), 1);
    }

    #[test]
    fn hostile_strings_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.set_help("evil", "line one\nline two \\ with backslash");
        reg.counter("evil", &[("path", "C:\\tmp\n\"quoted\"")])
            .inc();
        let text = reg.to_prometheus();
        // Help: newline and backslash escaped.
        assert!(
            text.contains("# HELP evil line one\\nline two \\\\ with backslash\n"),
            "{text}"
        );
        // Label value: backslash, quote and newline escaped, so the
        // sample still occupies a single physical line.
        assert!(
            text.contains("evil{path=\"C:\\\\tmp\\n\\\"quoted\\\"\"} 1\n"),
            "{text}"
        );
        // No raw (unescaped) newline may survive inside any line: every
        // physical line must be a comment or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.ends_with(" 1"),
                "torn line: {line:?}"
            );
        }
    }

    #[test]
    fn counter_total_sums_label_sets() {
        let reg = MetricsRegistry::new();
        reg.counter("steals", &[("node", "0")]).add(3);
        reg.counter("steals", &[("node", "1")]).add(4);
        assert_eq!(reg.counter_total("steals"), 7);
        assert_eq!(reg.counter_total("missing"), 0);
    }

    #[test]
    fn gauge_value_reads_without_creating() {
        let reg = MetricsRegistry::new();
        reg.gauge("health", &[("runtime", "a")]).set(2.0);
        assert_eq!(reg.gauge_value("health", &[("runtime", "a")]), Some(2.0));
        assert_eq!(reg.gauge_value("health", &[("runtime", "b")]), None);
        // The miss must not have created the series.
        assert!(!reg.to_prometheus().contains("runtime=\"b\""));
    }
}
