//! The sharded event timeline and the [`TelemetryHub`] tying it to the
//! metrics registry.
//!
//! Writers record events into one of several independent shards (each a
//! small mutex around a bounded ring). A runtime passes its worker index
//! as the shard hint, so workers on different shards never contend — this
//! replaces the single global `Mutex` the legacy runtime tracer took on
//! every `record_task`. Each shard is a true ring: when full, the oldest
//! event is evicted so the newest data always survives.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::accounting::TenantLedger;
use crate::metrics::MetricsRegistry;
use crate::recorder::FlightRecorder;
use crate::slo::SloEngine;

/// Identifies a timeline track (one per data source: a runtime, the
/// agent, the memory simulator). Exported as a Perfetto "process".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

/// A typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values export as 0).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// What kind of timeline event this is (maps onto Chrome trace phases).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A complete span with a duration (`ph: "X"`).
    Span {
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time marker (`ph: "i"`), e.g. an agent decision.
    Instant,
    /// A sampled counter value (`ph: "C"`), e.g. per-node bandwidth.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One event on the unified timeline. Timestamps are microseconds since
/// the owning hub's epoch, so events from every crate sort onto one
/// clock.
#[derive(Debug, Clone)]
pub struct TimelineEvent {
    /// Which track (data source) the event belongs to.
    pub track: TrackId,
    /// Lane within the track (exported as a Perfetto "thread"; runtimes
    /// use worker-index + 1, 0 is the control/helper lane).
    pub lane: u32,
    /// Category (e.g. `task`, `control`, `agent`, `bandwidth`).
    pub cat: String,
    /// Event name.
    pub name: String,
    /// Microseconds since the hub epoch.
    pub ts_us: u64,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Extra key/value arguments.
    pub args: Vec<(String, ArgValue)>,
}

struct ShardBuf {
    events: VecDeque<TimelineEvent>,
    capacity: usize,
}

struct Shard {
    buf: Mutex<ShardBuf>,
    dropped: AtomicU64,
}

struct Track {
    name: String,
    lanes: Vec<(u32, String)>,
}

/// The shared telemetry hub: one epoch, one metrics registry, one sharded
/// event timeline.
pub struct TelemetryHub {
    epoch: Instant,
    registry: MetricsRegistry,
    shards: Vec<Shard>,
    tracks: Mutex<Vec<Track>>,
    recorder: OnceLock<Arc<FlightRecorder>>,
    tenants: OnceLock<Arc<TenantLedger>>,
    slo: OnceLock<Arc<SloEngine>>,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHub")
            .field("shards", &self.shards.len())
            .field("events", &self.event_count())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for TelemetryHub {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TelemetryHub {
    /// Default hub: 16 shards of 4096 events each.
    pub fn new() -> Self {
        Self::with_config(16, 4096)
    }

    /// Hub with `shards` independent ring buffers of `capacity_per_shard`
    /// events each. Both values are clamped to at least 1.
    pub fn with_config(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity_per_shard.max(1);
        TelemetryHub {
            epoch: Instant::now(),
            registry: MetricsRegistry::new(),
            shards: (0..shards)
                .map(|_| Shard {
                    buf: Mutex::new(ShardBuf {
                        events: VecDeque::with_capacity(capacity.min(1024)),
                        capacity,
                    }),
                    dropped: AtomicU64::new(0),
                })
                .collect(),
            tracks: Mutex::new(Vec::new()),
            recorder: OnceLock::new(),
            tenants: OnceLock::new(),
            slo: OnceLock::new(),
        }
    }

    /// Install a [`FlightRecorder`]: from now on every recorded event is
    /// also encoded into its ring. Install-once — a second call returns
    /// `false` and leaves the first recorder in place. When no recorder
    /// is installed the hot path pays a single relaxed atomic load.
    pub fn install_flight_recorder(&self, recorder: Arc<FlightRecorder>) -> bool {
        self.recorder.set(recorder).is_ok()
    }

    /// The installed flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.get()
    }

    /// Install a [`TenantLedger`]: the agent and the memsim supervisor
    /// feed any installed ledger once per decision tick, and the HTTP
    /// server's `/tenants` route serves it. Install-once — a second call
    /// returns `false` and leaves the first ledger in place.
    pub fn install_tenant_ledger(&self, ledger: Arc<TenantLedger>) -> bool {
        self.tenants.set(ledger).is_ok()
    }

    /// The installed tenant ledger, if any.
    pub fn tenant_ledger(&self) -> Option<&Arc<TenantLedger>> {
        self.tenants.get()
    }

    /// Install an [`SloEngine`]: the agent and the memsim supervisor
    /// evaluate any installed engine once per decision tick, and the
    /// HTTP server's `/slo` route serves it. Install-once — a second
    /// call returns `false` and leaves the first engine in place.
    pub fn install_slo_engine(&self, engine: Arc<SloEngine>) -> bool {
        self.slo.set(engine).is_ok()
    }

    /// The installed SLO engine, if any.
    pub fn slo_engine(&self) -> Option<&Arc<SloEngine>> {
        self.slo.get()
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Microseconds elapsed since the hub was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Convert an [`Instant`] to microseconds on the hub clock (0 if it
    /// predates the epoch).
    pub fn timestamp_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Number of shards (useful for picking shard hints).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Register (or look up) a track by name and return its id.
    pub fn register_track(&self, name: &str) -> TrackId {
        let mut tracks = lock(&self.tracks);
        if let Some(idx) = tracks.iter().position(|t| t.name == name) {
            return TrackId(idx as u32);
        }
        tracks.push(Track {
            name: name.to_string(),
            lanes: Vec::new(),
        });
        TrackId((tracks.len() - 1) as u32)
    }

    /// Give lane `lane` of `track` a display name in the exported trace.
    pub fn set_lane_name(&self, track: TrackId, lane: u32, name: &str) {
        let mut tracks = lock(&self.tracks);
        if let Some(t) = tracks.get_mut(track.0 as usize) {
            if let Some(entry) = t.lanes.iter_mut().find(|(l, _)| *l == lane) {
                entry.1 = name.to_string();
            } else {
                t.lanes.push((lane, name.to_string()));
            }
        }
    }

    /// Record an event into the shard selected by `shard_hint % shards`.
    /// Writers with distinct hints (e.g. worker indices) hit distinct
    /// shards and do not contend. When a shard is full its **oldest**
    /// event is evicted (and counted in [`dropped`](Self::dropped)).
    pub fn record(&self, shard_hint: usize, event: TimelineEvent) {
        if let Some(rec) = self.recorder.get() {
            rec.log(&event);
        }
        let shard = &self.shards[shard_hint % self.shards.len()];
        let mut buf = lock(&shard.buf);
        if buf.events.len() >= buf.capacity {
            buf.events.pop_front();
            shard.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.events.push_back(event);
    }

    /// Convenience: record a completed span.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        shard_hint: usize,
        track: TrackId,
        lane: u32,
        cat: &str,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.record(
            shard_hint,
            TimelineEvent {
                track,
                lane,
                cat: cat.to_string(),
                name: name.to_string(),
                ts_us,
                kind: EventKind::Span { dur_us },
                args,
            },
        );
    }

    /// Convenience: record an instant event at the current time.
    pub fn record_instant(
        &self,
        shard_hint: usize,
        track: TrackId,
        lane: u32,
        cat: &str,
        name: &str,
        args: Vec<(String, ArgValue)>,
    ) {
        let ts_us = self.now_us();
        self.record(
            shard_hint,
            TimelineEvent {
                track,
                lane,
                cat: cat.to_string(),
                name: name.to_string(),
                ts_us,
                kind: EventKind::Instant,
                args,
            },
        );
    }

    /// Convenience: record an instant event at an explicit hub-clock
    /// timestamp (simulators map simulated seconds onto the hub clock,
    /// so "now" is not always the right time).
    #[allow(clippy::too_many_arguments)]
    pub fn record_instant_at(
        &self,
        shard_hint: usize,
        track: TrackId,
        lane: u32,
        cat: &str,
        name: &str,
        ts_us: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.record(
            shard_hint,
            TimelineEvent {
                track,
                lane,
                cat: cat.to_string(),
                name: name.to_string(),
                ts_us,
                kind: EventKind::Instant,
                args,
            },
        );
    }

    /// Convenience: record a counter sample.
    #[allow(clippy::too_many_arguments)]
    pub fn record_counter(
        &self,
        shard_hint: usize,
        track: TrackId,
        lane: u32,
        cat: &str,
        name: &str,
        ts_us: u64,
        value: f64,
        args: Vec<(String, ArgValue)>,
    ) {
        self.record(
            shard_hint,
            TimelineEvent {
                track,
                lane,
                cat: cat.to_string(),
                name: name.to_string(),
                ts_us,
                kind: EventKind::Counter { value },
                args,
            },
        );
    }

    /// Merge every shard into one timeline sorted by timestamp.
    pub fn events(&self) -> Vec<TimelineEvent> {
        let mut all: Vec<TimelineEvent> = Vec::with_capacity(self.event_count());
        for shard in &self.shards {
            all.extend(lock(&shard.buf).events.iter().cloned());
        }
        all.sort_by_key(|e| e.ts_us);
        all
    }

    /// Current number of buffered events across all shards.
    pub fn event_count(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.buf).events.len()).sum()
    }

    /// Total events evicted because a shard overflowed.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Registered track names, indexed by [`TrackId`].
    pub(crate) fn track_table(&self) -> Vec<(String, Vec<(u32, String)>)> {
        lock(&self.tracks)
            .iter()
            .map(|t| (t.name.clone(), t.lanes.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn instant(name: &str, ts_us: u64) -> TimelineEvent {
        TimelineEvent {
            track: TrackId(0),
            lane: 0,
            cat: "test".to_string(),
            name: name.to_string(),
            ts_us,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    #[test]
    fn tracks_dedupe_by_name() {
        let hub = TelemetryHub::new();
        let a = hub.register_track("runtime:a");
        let b = hub.register_track("agent");
        let a2 = hub.register_track("runtime:a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(hub.track_table()[a.0 as usize].0, "runtime:a");
    }

    #[test]
    fn ring_keeps_newest_drops_oldest() {
        let hub = TelemetryHub::with_config(1, 3);
        for i in 0..10u64 {
            hub.record(0, instant(&format!("e{}", i), i));
        }
        let events = hub.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e7", "e8", "e9"]);
        assert_eq!(hub.dropped(), 7);
    }

    #[test]
    fn overflow_conserves_event_counts() {
        // Satellite invariant: nothing is silently lost — every recorded
        // event is either still buffered or counted as dropped, on every
        // shard independently.
        let hub = TelemetryHub::with_config(3, 5);
        const RECORDED: u64 = 100;
        for i in 0..RECORDED {
            hub.record(i as usize, instant(&format!("e{}", i), i));
        }
        assert_eq!(hub.event_count() as u64 + hub.dropped(), RECORDED);
        // Survivors are exactly the newest per shard, still sorted.
        let events = hub.events();
        assert_eq!(events.len(), 15);
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(events.iter().all(|e| e.ts_us >= RECORDED - 15));
    }

    #[test]
    fn installed_flight_recorder_sees_every_event_even_evicted_ones() {
        use crate::recorder::FlightRecorder;
        let hub = TelemetryHub::with_config(1, 2);
        let rec = Arc::new(FlightRecorder::new(64));
        assert!(hub.install_flight_recorder(Arc::clone(&rec)));
        // Second install is rejected, first stays.
        assert!(!hub.install_flight_recorder(Arc::new(FlightRecorder::new(1))));
        for i in 0..10u64 {
            hub.record(0, instant(&format!("e{}", i), i));
        }
        // The hub ring kept only 2, but the recorder logged all 10.
        assert_eq!(hub.event_count(), 2);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(hub.flight_recorder().unwrap().len(), 10);
    }

    #[test]
    fn events_merge_sorted_across_shards() {
        let hub = TelemetryHub::with_config(4, 64);
        hub.record(2, instant("late", 300));
        hub.record(0, instant("early", 100));
        hub.record(3, instant("mid", 200));
        let names: Vec<String> = hub.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["early", "mid", "late"]);
    }

    #[test]
    fn concurrent_writers_lose_nothing_below_capacity() {
        // The acceptance criterion for the hot path: >= 8 threads
        // recording concurrently, each into its own shard, with no lost
        // events while under capacity.
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let hub = Arc::new(TelemetryHub::with_config(THREADS, PER_THREAD));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        hub.record(
                            t,
                            instant(&format!("t{}e{}", t, i), (t * PER_THREAD + i) as u64),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.event_count(), THREADS * PER_THREAD);
        assert_eq!(hub.dropped(), 0);
        assert_eq!(hub.events().len(), THREADS * PER_THREAD);
    }

    #[test]
    fn timestamp_helpers_are_monotonic_on_hub_clock() {
        let hub = TelemetryHub::new();
        let t0 = hub.now_us();
        let later = Instant::now();
        let t1 = hub.timestamp_us(later);
        assert!(t1 >= t0);
        // An instant before the epoch clamps to 0 rather than panicking:
        // hub.epoch predates hub2's epoch because hub2 is created later.
        let hub2 = TelemetryHub::new();
        assert_eq!(hub2.timestamp_us(hub.epoch), 0);
    }
}
