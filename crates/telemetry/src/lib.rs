//! # coop-telemetry
//!
//! The unified observability substrate for the numa-coop workspace.
//!
//! The paper's control loop (Figure 1) is driven entirely by observation:
//! the agent "receives information about the execution from the runtimes"
//! and decides thread counts from it. This crate gives every layer of the
//! stack — the task runtime, the arbitration agent, and the `memsim`
//! hardware simulator — one shared place to put that information, so that
//! a single run produces:
//!
//! * a [`MetricsRegistry`] of lock-free counters, gauges and log₂-bucketed
//!   [`Histogram`]s (task latency, queue wait, steals, block/unblock
//!   latency per blocking option, agent decision latency, per-node
//!   bandwidth utilization, …), exportable as Prometheus text exposition;
//! * a **sharded** per-worker event ring buffer feeding a unified
//!   timeline: runtime task spans, agent decision instants, and memsim
//!   bandwidth counter samples all share one clock (microseconds since the
//!   hub's epoch) and export as a single merged Perfetto/Chrome JSON
//!   trace;
//! * a compact JSON summary report for scripting;
//! * a **model-drift observatory** ([`ModelObservatory`]): a decision
//!   provenance ledger pairing every model prediction with its measured
//!   outcome, plus a per-series EWMA + CUSUM [`DriftDetector`] over the
//!   prediction residuals — exported as `coop_model_residual` /
//!   `coop_model_drift_alarms` metrics, timeline instants, and the
//!   [`DriftReport`] behind `coop drift`.
//!
//! The hot path is deliberately cheap: metric updates are single atomic
//! RMW operations on pre-registered handles, and timeline recording takes
//! one **per-shard** mutex (writers pick their own shard, normally their
//! worker index, so concurrent workers never contend on a global lock the
//! way the legacy `coop_runtime::trace` buffer did).
//!
//! This crate is intentionally dependency-free (std only) so it can sit
//! below every other crate in the workspace.
//!
//! ```
//! use coop_telemetry::{TelemetryHub, TrackId};
//! use std::sync::Arc;
//!
//! let hub = Arc::new(TelemetryHub::new());
//! let track = hub.register_track("runtime:demo");
//! let latency = hub.registry().histogram("coop_task_latency_us", &[("runtime", "demo")]);
//! latency.observe(120);
//! hub.record_span(0, track, 1, "task", "stage1", 10, 120, Vec::new());
//! assert!(hub.registry().to_prometheus().contains("coop_task_latency_us_bucket"));
//! assert!(hub.to_perfetto_json().contains("\"stage1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod drift;
mod export;
mod json;
mod metrics;
mod observatory;
mod provenance;
mod recorder;
mod serve;
mod slo;
mod timeline;
mod trace;

pub use accounting::{
    jain_index, scheduler_locality, Epoch, LedgerSnapshot, TenantAccount, TenantLedger,
    TenantSample, SHARE_HISTORY_LIMIT, TENANT_CAT,
};
pub use drift::{DriftAlarm, DriftConfig, DriftDetector, DriftDirection, SeriesSnapshot};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use observatory::{
    DriftReport, ModelObservatory, ALARMS_METRIC, RESIDUAL_METRIC, RESIDUAL_PCT_METRIC,
};
pub use provenance::{Prediction, ProvenanceLedger, ProvenanceRecord, Residual, SeriesValue};
pub use recorder::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY, FLIGHT_MAGIC, FLIGHT_VERSION};
pub use serve::{recent_events_json, serve, serve_with_limit, TelemetryServer, RECENT_TRACE_LIMIT};
pub use slo::{
    SloEngine, SloObjective, SloSpec, SloStatus, WindowBurn, SLO_CAT,
};
pub use timeline::{ArgValue, EventKind, TelemetryHub, TimelineEvent, TrackId};
pub use trace::{hop, hop_args, TaskTrace, TraceAssembler, TraceHop, TRACE_CAT};
