//! A minimal, dependency-free HTTP/1.1 server exposing the hub live.
//!
//! This is the first wire surface the future coordination daemon will
//! grow from: a plain [`std::net::TcpListener`] accept loop on a
//! background thread serving six read-only routes off the shared
//! [`TelemetryHub`]:
//!
//! | route           | content                                        |
//! |-----------------|------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition (the same exporter behind `--metrics` files) |
//! | `/healthz`      | liveness JSON: uptime, event/drop counts       |
//! | `/trace/recent` | the most recent timeline events as JSON        |
//! | `/summary`      | the compact [`summary_json`](crate::TelemetryHub::summary_json) report |
//! | `/tenants`      | the installed [`TenantLedger`](crate::TenantLedger)'s canonical JSON (byte-identical to `coop top --format json`) |
//! | `/slo`          | the installed [`SloEngine`](crate::SloEngine)'s burn-rate report |
//!
//! Start it with [`serve`], stop it with [`TelemetryServer::stop`].
//! `serve_with_limit` exists for smoke tests and CI: the server exits by
//! itself after answering a fixed number of requests, so `coop observe
//! --serve addr --serve-max-requests N` terminates deterministically.

use crate::json::{push_f64, push_str_literal};
use crate::timeline::{ArgValue, EventKind, TelemetryHub, TimelineEvent};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default number of events `/trace/recent` returns.
pub const RECENT_TRACE_LIMIT: usize = 256;

/// Handle to a running telemetry server.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .field("served", &self.served())
            .finish()
    }
}

impl TelemetryServer {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Ask the accept loop to exit; returns once the thread has joined.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Block until the server exits on its own (only happens when a
    /// request limit was set via [`serve_with_limit`]).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Serialize the newest `limit` events as a JSON array (oldest first).
pub fn recent_events_json(hub: &TelemetryHub, limit: usize) -> String {
    let events = hub.events();
    let skip = events.len().saturating_sub(limit);
    let mut out = String::with_capacity(256 + (events.len() - skip) * 128);
    out.push_str("{\"events\":[");
    for (i, ev) in events[skip..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event_json(&mut out, ev);
    }
    out.push_str(&format!(
        "],\"total\":{},\"dropped\":{}}}",
        events.len(),
        hub.dropped()
    ));
    out
}

fn push_event_json(out: &mut String, ev: &TimelineEvent) {
    out.push_str(&format!(
        "{{\"track\":{},\"lane\":{},\"ts_us\":{},\"cat\":",
        ev.track.0, ev.lane, ev.ts_us
    ));
    push_str_literal(out, &ev.cat);
    out.push_str(",\"name\":");
    push_str_literal(out, &ev.name);
    match &ev.kind {
        EventKind::Span { dur_us } => {
            out.push_str(&format!(",\"kind\":\"span\",\"dur_us\":{dur_us}"))
        }
        EventKind::Instant => out.push_str(",\"kind\":\"instant\""),
        EventKind::Counter { value } => {
            out.push_str(",\"kind\":\"counter\",\"value\":");
            push_f64(out, *value);
        }
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, k);
        out.push(':');
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::I64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(x) => push_f64(out, *x),
            ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            ArgValue::Str(s) => push_str_literal(out, s),
        }
    }
    out.push_str("}}");
}

fn healthz_json(hub: &TelemetryHub) -> String {
    format!(
        "{{\"status\":\"ok\",\"uptime_us\":{},\"events\":{},\"dropped\":{}}}",
        hub.now_us(),
        hub.event_count(),
        hub.dropped()
    )
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.flush();
}

/// Cap on the bytes read from one request head: well past any GET line
/// plus headers this server understands, and a bound against a client
/// that never sends the terminator.
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Read until the HTTP header terminator (`\r\n\r\n`), end of stream, or
/// [`MAX_REQUEST_BYTES`]. A single `read` is not enough: a client (or
/// the kernel) may deliver the request line in several segments, and the
/// old single-read parser answered such requests with nothing at all.
fn read_request_head(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                // Only the tail can contain a terminator that spans the
                // previous chunk boundary.
                let start = buf.len().saturating_sub(n + 3);
                if buf[start..].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
                if buf.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            // Timeouts and resets: parse whatever arrived so a short
            // request (e.g. "GET /healthz HTTP/1.0" with no final CRLF)
            // still gets an answer.
            Err(_) => break,
        }
    }
    if buf.is_empty() {
        None
    } else {
        Some(buf)
    }
}

fn handle_request(hub: &TelemetryHub, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Some(buf) = read_request_head(stream) else {
        return;
    };
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        respond(
            stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "GET only\n",
        );
        return;
    }
    match path {
        "/metrics" => respond(
            stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &hub.registry().to_prometheus(),
        ),
        "/healthz" => respond(stream, "200 OK", "application/json", &healthz_json(hub)),
        "/trace/recent" => respond(
            stream,
            "200 OK",
            "application/json",
            &recent_events_json(hub, RECENT_TRACE_LIMIT),
        ),
        "/summary" => respond(stream, "200 OK", "application/json", &hub.summary_json()),
        "/tenants" => {
            let body = match hub.tenant_ledger() {
                Some(ledger) => ledger.to_json(),
                None => crate::accounting::EMPTY_TENANTS_JSON.to_string(),
            };
            respond(stream, "200 OK", "application/json", &body)
        }
        "/slo" => {
            let body = match hub.slo_engine() {
                Some(engine) => engine.to_json(),
                None => crate::slo::EMPTY_SLO_JSON.to_string(),
            };
            respond(stream, "200 OK", "application/json", &body)
        }
        _ => respond(
            stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /healthz /trace/recent /summary /tenants /slo\n",
        ),
    }
}

/// Start serving `hub` on `addr` (e.g. `"127.0.0.1:9464"`, port 0 picks a
/// free port). Runs until the handle is stopped or dropped.
pub fn serve(hub: Arc<TelemetryHub>, addr: &str) -> std::io::Result<TelemetryServer> {
    serve_with_limit(hub, addr, None)
}

/// Like [`serve`], but when `max_requests` is `Some(n)` the accept loop
/// exits by itself after answering `n` requests — a deterministic
/// shutdown for smoke tests and CI.
pub fn serve_with_limit(
    hub: Arc<TelemetryHub>,
    addr: &str,
    max_requests: Option<u64>,
) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let thread_shutdown = Arc::clone(&shutdown);
    let thread_served = Arc::clone(&served);
    let handle = std::thread::Builder::new()
        .name("coop-telemetry-serve".to_string())
        .spawn(move || {
            while !thread_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        // Requests are tiny and read-only; handling them
                        // inline keeps the server single-threaded and
                        // bounded.
                        let _ = stream.set_nodelay(true);
                        handle_request(&hub, &mut stream);
                        let done = thread_served.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(limit) = max_requests {
                            if done >= limit {
                                break;
                            }
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        })?;
    Ok(TelemetryServer {
        addr: local,
        shutdown,
        served,
        handle: Some(handle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    fn seeded_hub() -> Arc<TelemetryHub> {
        let hub = Arc::new(TelemetryHub::new());
        let track = hub.register_track("runtime:test");
        hub.registry()
            .counter("coop_tasks_completed_total", &[("runtime", "test")])
            .add(5);
        hub.record_span(0, track, 1, "task", "stage1", 10, 120, Vec::new());
        hub.record_instant(
            0,
            track,
            0,
            "trace",
            "spawned",
            vec![("task".to_string(), ArgValue::U64(1))],
        );
        hub
    }

    #[test]
    fn serves_metrics_healthz_trace_and_summary() {
        let hub = seeded_hub();
        let server = serve(Arc::clone(&hub), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("coop_tasks_completed_total"));
        assert_eq!(body, hub.registry().to_prometheus());

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        let parsed: serde_json::Value = serde_json::from_str(&body).expect("healthz JSON");
        assert_eq!(parsed["status"], "ok");
        assert_eq!(parsed["events"], 2);

        let (head, body) = get(addr, "/trace/recent");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        let parsed: serde_json::Value = serde_json::from_str(&body).expect("trace JSON");
        let events = parsed["events"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .any(|e| e["name"] == "spawned" && e["args"]["task"] == 1));

        let (head, body) = get(addr, "/summary");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, hub.summary_json());

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        // Satellite: the 404 body lists every known route.
        for route in ["/metrics", "/healthz", "/trace/recent", "/summary", "/tenants", "/slo"] {
            assert!(body.contains(route), "404 body must list {route}: {body}");
        }
        assert!(server.served() >= 5);
        server.stop();
    }

    #[test]
    fn tenants_and_slo_routes_serve_installed_state_or_empty_fallback() {
        use crate::accounting::{TenantLedger, TenantSample};
        use crate::slo::{SloEngine, SloSpec};

        // Uninstalled: both routes answer 200 with an empty body, so
        // `curl -sf` smoke checks never fail on a bare hub.
        let bare = seeded_hub();
        let server = serve(Arc::clone(&bare), "127.0.0.1:0").expect("bind");
        let (head, body) = get(server.addr(), "/tenants");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, super::super::accounting::EMPTY_TENANTS_JSON);
        let (head, body) = get(server.addr(), "/slo");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, super::super::slo::EMPTY_SLO_JSON);
        server.stop();

        // Installed: the routes serve the canonical renderings byte for
        // byte — the same strings `coop top` prints.
        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
        let engine = Arc::new(SloEngine::new(vec![SloSpec::min_share("a", 0.4)]));
        assert!(hub.install_slo_engine(Arc::clone(&engine)));
        ledger.open_epoch(&hub, "a", "managed", 0);
        ledger.tick(
            &hub,
            10,
            &[TenantSample {
                tenant: "a".to_string(),
                tasks_executed: 5,
                uptime_us: 100,
                per_node_tasks: vec![5],
                running_per_node: vec![1],
                local_pops: 5,
                remote_steals: 0,
                preemptions: 0,
                overbudget_cpu_us: 0,
            }],
        );
        engine.evaluate(&hub, 10);

        let server = serve(Arc::clone(&hub), "127.0.0.1:0").expect("bind");
        let (head, body) = get(server.addr(), "/tenants");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, ledger.to_json());
        let (head, body) = get(server.addr(), "/slo");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, engine.to_json());
        server.stop();
    }

    #[test]
    fn partial_and_short_requests_still_get_answers() {
        // Satellite: the parser must loop until the header terminator
        // instead of trusting one read() to deliver the whole request.
        let hub = seeded_hub();
        let server = serve(Arc::clone(&hub), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // Request dribbled in three segments with pauses in between.
        let mut stream = TcpStream::connect(addr).expect("connect");
        for part in ["GET /hea", "lthz HTT", "P/1.1\r\nHost: x\r\n\r\n"] {
            stream.write_all(part.as_bytes()).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(30));
        }
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 200 OK"),
            "partial writes must still be served: {resp}"
        );
        assert!(resp.contains("\"status\":\"ok\""));

        // A short request with no final CRLF: the client half-closes, so
        // the read loop sees EOF and parses what arrived.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /healthz HTTP/1.0").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 200 OK"),
            "short request must still be served: {resp}"
        );
        server.stop();
    }

    #[test]
    fn request_limit_shuts_the_server_down() {
        let hub = seeded_hub();
        let server = serve_with_limit(Arc::clone(&hub), "127.0.0.1:0", Some(2)).expect("bind");
        let addr = server.addr();
        let _ = get(addr, "/healthz");
        let _ = get(addr, "/healthz");
        // The accept loop exits on its own; join must not hang.
        server.join();
    }

    #[test]
    fn recent_events_json_caps_at_limit_oldest_dropped() {
        let hub = TelemetryHub::with_config(1, 64);
        let track = hub.register_track("t");
        for i in 0..10u64 {
            hub.record_instant_at(0, track, 0, "trace", &format!("e{i}"), i, Vec::new());
        }
        let out = recent_events_json(&hub, 3);
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        let names: Vec<&str> = parsed["events"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, ["e7", "e8", "e9"]);
        assert_eq!(parsed["total"], 10);
    }
}
