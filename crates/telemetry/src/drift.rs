//! Dependency-free model-drift detection over prediction residuals.
//!
//! The roofline model is validated once, offline (the paper's Table III);
//! this module watches it *online*. Every closed decision contributes one
//! relative residual per series (a per-app or per-node predicted-vs-
//! measured pair), and each series runs two classic change detectors:
//!
//! * an **EWMA** of the residual — a smoothed estimate of the current
//!   model bias, cheap to read and export as a gauge;
//! * a two-sided **CUSUM** — cumulative sums `S⁺ = max(0, S⁺ + r − k)`
//!   and `S⁻ = max(0, S⁻ − r − k)` that accumulate only residual mass
//!   beyond the slack `k` and raise an alarm when either side exceeds
//!   the threshold `h`. CUSUM reacts to small persistent shifts that a
//!   fixed residual threshold would miss, while `k` absorbs the
//!   calibration noise floor.
//!
//! Everything here is std-only so the detector can live in the
//! dependency-free telemetry layer underneath every other crate.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Maximum number of alarms retained in the in-memory alarm log.
const ALARM_LOG_CAPACITY: usize = 256;

/// Tuning knobs for the [`DriftDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]`; larger reacts faster.
    pub ewma_alpha: f64,
    /// CUSUM slack per sample: residual magnitude below `k` is treated
    /// as calibration noise and accumulates nothing.
    pub cusum_k: f64,
    /// CUSUM alarm threshold: an alarm fires when `S⁺` or `S⁻` exceeds
    /// `h`, after which both sums reset.
    pub cusum_h: f64,
    /// Samples a series must accumulate before it may raise alarms
    /// (warm-up; the first residuals of a fresh workload are noisy).
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ewma_alpha: 0.3,
            cusum_k: 0.05,
            cusum_h: 0.5,
            min_samples: 3,
        }
    }
}

/// Which side of the prediction the drift is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftDirection {
    /// Measurements run persistently above the prediction.
    Above,
    /// Measurements run persistently below the prediction.
    Below,
}

impl DriftDirection {
    /// Short lowercase label (`"above"` / `"below"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DriftDirection::Above => "above",
            DriftDirection::Below => "below",
        }
    }
}

/// One drift alarm raised by the CUSUM detector.
#[derive(Debug, Clone)]
pub struct DriftAlarm {
    /// Series the alarm fired on (e.g. `node/0/bandwidth_gbs`).
    pub series: String,
    /// Per-series sample index (1-based) at which the alarm fired.
    pub sample: u64,
    /// The residual that tipped the sum over the threshold.
    pub residual: f64,
    /// EWMA of the residual at alarm time.
    pub ewma: f64,
    /// Value of the tripped cumulative sum.
    pub cusum: f64,
    /// Side of the prediction the measurements drifted to.
    pub direction: DriftDirection,
}

/// Point-in-time statistics for one residual series.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Series key.
    pub series: String,
    /// Residuals observed so far.
    pub samples: u64,
    /// Most recent residual.
    pub last_residual: f64,
    /// EWMA of the residual (current bias estimate).
    pub ewma: f64,
    /// Mean absolute residual.
    pub mean_abs_residual: f64,
    /// Largest absolute residual seen.
    pub max_abs_residual: f64,
    /// Current upper cumulative sum `S⁺`.
    pub cusum_high: f64,
    /// Current lower cumulative sum `S⁻`.
    pub cusum_low: f64,
    /// Alarms raised on this series.
    pub alarms: u64,
}

#[derive(Debug, Default)]
struct SeriesState {
    samples: u64,
    last: f64,
    ewma: f64,
    abs_sum: f64,
    abs_max: f64,
    s_hi: f64,
    s_lo: f64,
    alarms: u64,
}

#[derive(Debug, Default)]
struct DetectorInner {
    series: BTreeMap<String, SeriesState>,
    alarm_log: Vec<DriftAlarm>,
}

/// Per-series EWMA + CUSUM drift detector.
///
/// Thread-safe; `observe` takes one short mutex (the decision path runs
/// at agent-tick frequency, not the task hot path).
#[derive(Debug, Default)]
pub struct DriftDetector {
    config: DriftConfig,
    inner: Mutex<DetectorInner>,
}

impl DriftDetector {
    /// Create a detector with the given tuning.
    pub fn new(config: DriftConfig) -> Self {
        DriftDetector {
            config,
            inner: Mutex::new(DetectorInner::default()),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Relative residual `(measured − predicted) / |predicted|`, with the
    /// denominator floored at `1e-9` so a zero prediction cannot produce
    /// a non-finite residual.
    pub fn relative_residual(predicted: f64, measured: f64) -> f64 {
        (measured - predicted) / predicted.abs().max(1e-9)
    }

    /// Feed one residual into `series`; returns an alarm if the CUSUM
    /// threshold was crossed on this sample.
    pub fn observe(&self, series: &str, residual: f64) -> Option<DriftAlarm> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let state = inner.series.entry(series.to_string()).or_default();
        state.samples += 1;
        state.last = residual;
        state.abs_sum += residual.abs();
        state.abs_max = state.abs_max.max(residual.abs());
        state.ewma = if state.samples == 1 {
            residual
        } else {
            self.config.ewma_alpha * residual + (1.0 - self.config.ewma_alpha) * state.ewma
        };
        state.s_hi = (state.s_hi + residual - self.config.cusum_k).max(0.0);
        state.s_lo = (state.s_lo - residual - self.config.cusum_k).max(0.0);

        if state.samples < self.config.min_samples {
            return None;
        }
        let (tripped, cusum, direction) = if state.s_hi > self.config.cusum_h {
            (true, state.s_hi, DriftDirection::Above)
        } else if state.s_lo > self.config.cusum_h {
            (true, state.s_lo, DriftDirection::Below)
        } else {
            (false, 0.0, DriftDirection::Above)
        };
        if !tripped {
            return None;
        }
        // Reset both sums so one sustained shift yields periodic alarms
        // rather than one alarm per subsequent sample.
        state.s_hi = 0.0;
        state.s_lo = 0.0;
        state.alarms += 1;
        let alarm = DriftAlarm {
            series: series.to_string(),
            sample: state.samples,
            residual,
            ewma: state.ewma,
            cusum,
            direction,
        };
        if inner.alarm_log.len() < ALARM_LOG_CAPACITY {
            inner.alarm_log.push(alarm.clone());
        }
        Some(alarm)
    }

    /// Compute the relative residual for a predicted/measured pair, feed
    /// it in, and return `(residual, alarm)`.
    pub fn observe_pair(
        &self,
        series: &str,
        predicted: f64,
        measured: f64,
    ) -> (f64, Option<DriftAlarm>) {
        let residual = Self::relative_residual(predicted, measured);
        (residual, self.observe(series, residual))
    }

    /// Snapshot of every series, sorted by key.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .series
            .iter()
            .map(|(k, s)| SeriesSnapshot {
                series: k.clone(),
                samples: s.samples,
                last_residual: s.last,
                ewma: s.ewma,
                mean_abs_residual: if s.samples == 0 {
                    0.0
                } else {
                    s.abs_sum / s.samples as f64
                },
                max_abs_residual: s.abs_max,
                cusum_high: s.s_hi,
                cusum_low: s.s_lo,
                alarms: s.alarms,
            })
            .collect()
    }

    /// The retained alarm log (oldest first, capped at 256 entries).
    pub fn alarm_log(&self) -> Vec<DriftAlarm> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .alarm_log
            .clone()
    }

    /// Total alarms across all series.
    pub fn total_alarms(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.series.values().map(|s| s.alarms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_noise_raises_no_alarm() {
        let det = DriftDetector::new(DriftConfig::default());
        // Zero-mean noise well inside the slack band.
        for i in 0..200u64 {
            let r = if i % 2 == 0 { 0.02 } else { -0.02 };
            assert!(det.observe("node/0/bandwidth_gbs", r).is_none());
        }
        assert_eq!(det.total_alarms(), 0);
        let snap = &det.snapshot()[0];
        assert_eq!(snap.samples, 200);
        assert!(snap.ewma.abs() < 0.05);
    }

    #[test]
    fn step_change_fires_and_resets() {
        let config = DriftConfig::default();
        let det = DriftDetector::new(config.clone());
        for _ in 0..10 {
            det.observe("s", 0.0);
        }
        // Persistent +20% bias: each sample adds 0.2 - k = 0.15 to S⁺,
        // so the alarm must fire within ceil(h / 0.15) = 4 samples.
        let mut fired_at = None;
        for i in 0..10u64 {
            if let Some(alarm) = det.observe("s", 0.2) {
                assert_eq!(alarm.direction, DriftDirection::Above);
                assert!(alarm.cusum > config.cusum_h);
                fired_at = Some(i);
                break;
            }
        }
        assert!(fired_at.expect("alarm must fire") <= 4);
        // The sums reset after the alarm, so the very next sample cannot
        // immediately re-fire.
        assert!(det.observe("s", 0.2).is_none());
        assert_eq!(det.total_alarms(), 1);
        assert_eq!(det.alarm_log().len(), 1);
    }

    #[test]
    fn negative_drift_reports_below() {
        let det = DriftDetector::new(DriftConfig::default());
        let mut alarm = None;
        for _ in 0..20 {
            if let Some(a) = det.observe("s", -0.3) {
                alarm = Some(a);
                break;
            }
        }
        assert_eq!(alarm.expect("must fire").direction, DriftDirection::Below);
    }

    #[test]
    fn warmup_suppresses_alarms() {
        let det = DriftDetector::new(DriftConfig {
            min_samples: 50,
            ..DriftConfig::default()
        });
        for _ in 0..49 {
            assert!(det.observe("s", 1.0).is_none());
        }
        assert!(det.observe("s", 1.0).is_some());
    }

    #[test]
    fn relative_residual_is_finite_for_zero_prediction() {
        let r = DriftDetector::relative_residual(0.0, 5.0);
        assert!(r.is_finite());
        assert!((DriftDetector::relative_residual(10.0, 12.0) - 0.2).abs() < 1e-12);
    }
}
