//! Exporters: merged Perfetto/Chrome trace JSON and the JSON summary.
//!
//! Both are hand-rolled (see [`crate::json`]) so this crate stays
//! dependency-free; integration tests parse the output with `serde_json`
//! to keep the writers honest.

use crate::json::{push_f64, push_str_literal};
use crate::timeline::{ArgValue, EventKind, TelemetryHub, TimelineEvent};

fn push_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::I64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(f) => push_f64(out, *f),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(s) => push_str_literal(out, s),
    }
}

fn push_args(out: &mut String, args: &[(String, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, k);
        out.push(':');
        push_arg_value(out, v);
    }
    out.push('}');
}

/// Perfetto/Chrome "process" ids start at 1 (0 renders oddly), so a
/// track's pid is its id + 1.
fn pid(track: u32) -> u32 {
    track + 1
}

fn push_event(out: &mut String, ev: &TimelineEvent) {
    out.push_str("{\"name\":");
    push_str_literal(out, &ev.name);
    out.push_str(",\"cat\":");
    push_str_literal(out, &ev.cat);
    match &ev.kind {
        EventKind::Span { dur_us } => {
            out.push_str(&format!(
                ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                ev.ts_us, dur_us
            ));
        }
        EventKind::Instant => {
            out.push_str(&format!(",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", ev.ts_us));
        }
        EventKind::Counter { .. } => {
            out.push_str(&format!(",\"ph\":\"C\",\"ts\":{}", ev.ts_us));
        }
    }
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", pid(ev.track.0), ev.lane));
    out.push_str(",\"args\":");
    match &ev.kind {
        EventKind::Counter { value } => {
            // Chrome counter tracks plot every numeric key in args; put
            // the sampled value first under a stable key.
            out.push_str("{\"value\":");
            push_f64(out, *value);
            for (k, v) in &ev.args {
                out.push(',');
                push_str_literal(out, k);
                out.push(':');
                push_arg_value(out, v);
            }
            out.push('}');
        }
        _ => push_args(out, &ev.args),
    }
    out.push('}');
}

fn push_metadata_event(out: &mut String, name: &str, pid_v: u32, tid: Option<u32>, label: &str) {
    out.push_str("{\"name\":");
    push_str_literal(out, name);
    out.push_str(&format!(",\"ph\":\"M\",\"pid\":{}", pid_v));
    if let Some(tid) = tid {
        out.push_str(&format!(",\"tid\":{}", tid));
    }
    out.push_str(",\"args\":{\"name\":");
    push_str_literal(out, label);
    out.push_str("}}");
}

impl TelemetryHub {
    /// Export the merged timeline as Perfetto/Chrome trace JSON (object
    /// form). Tracks become processes, lanes become threads, spans are
    /// `ph:"X"`, instants `ph:"i"`, counter samples `ph:"C"`. Trace-level
    /// metadata records how many events were dropped to ring overflow.
    pub fn to_perfetto_json(&self) -> String {
        let events = self.events();
        let tracks = self.track_table();
        let mut out = String::with_capacity(events.len() * 96 + 512);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (idx, (name, lanes)) in tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            push_metadata_event(&mut out, "process_name", pid(idx as u32), None, name);
            for (lane, lane_name) in lanes {
                out.push(',');
                push_metadata_event(
                    &mut out,
                    "thread_name",
                    pid(idx as u32),
                    Some(*lane),
                    lane_name,
                );
            }
        }
        for ev in &events {
            if !first {
                out.push(',');
            }
            first = false;
            push_event(&mut out, ev);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"metadata\":{");
        out.push_str(&format!(
            "\"dropped\":{},\"events\":{},\"tracks\":{}",
            self.dropped(),
            events.len(),
            tracks.len()
        ));
        out.push_str("}}");
        out
    }

    /// Export a compact JSON summary: event/drop totals plus every metric
    /// flattened to `{name, labels, value}` rows.
    pub fn summary_json(&self) -> String {
        let rows = self.registry().summary_rows();
        let mut out = String::with_capacity(rows.len() * 64 + 256);
        out.push_str(&format!(
            "{{\"events\":{},\"dropped\":{},\"tracks\":{},\"metrics\":[",
            self.event_count(),
            self.dropped(),
            self.track_table().len()
        ));
        for (i, (name, labels, value)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_str_literal(&mut out, name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_str_literal(&mut out, k);
                out.push(':');
                push_str_literal(&mut out, v);
            }
            out.push_str("},\"value\":");
            push_f64(&mut out, *value);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_hub() -> TelemetryHub {
        let hub = TelemetryHub::with_config(2, 64);
        let rt = hub.register_track("runtime:pipe");
        let agent = hub.register_track("agent");
        hub.set_lane_name(rt, 1, "worker-0");
        hub.record_span(
            1,
            rt,
            1,
            "task",
            "produce \"x\"",
            10,
            25,
            vec![("task_id".to_string(), ArgValue::U64(7))],
        );
        hub.record(
            0,
            TimelineEvent {
                track: agent,
                lane: 0,
                cat: "agent".to_string(),
                name: "decision".to_string(),
                ts_us: 20,
                kind: EventKind::Instant,
                args: vec![("tick".to_string(), ArgValue::U64(0))],
            },
        );
        hub.record_counter(0, agent, 1, "bandwidth", "node0_gbs", 30, 12.5, Vec::new());
        hub
    }

    #[test]
    fn perfetto_json_has_expected_fragments() {
        let out = demo_hub().to_perfetto_json();
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"M\""));
        assert!(out.contains("\"runtime:pipe\""));
        assert!(out.contains("\"worker-0\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":25"));
        assert!(out.contains("\"produce \\\"x\\\"\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"s\":\"t\""));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"value\":12.5"));
        assert!(out.contains("\"metadata\":{\"dropped\":0,\"events\":3,\"tracks\":2}"));
    }

    #[test]
    fn perfetto_json_surfaces_drops() {
        let hub = TelemetryHub::with_config(1, 2);
        let t = hub.register_track("t");
        for i in 0..5 {
            hub.record_instant(0, t, 0, "c", &format!("e{}", i), Vec::new());
        }
        let out = hub.to_perfetto_json();
        assert!(out.contains("\"dropped\":3"));
    }

    #[test]
    fn summary_json_lists_metrics() {
        let hub = demo_hub();
        hub.registry()
            .counter("coop_steals_total", &[("node", "0")])
            .add(4);
        hub.registry().histogram("lat_us", &[]).observe(10);
        let out = hub.summary_json();
        assert!(out.contains("\"events\":3"));
        assert!(out.contains("\"coop_steals_total\""));
        assert!(out.contains("\"labels\":{\"node\":\"0\"}"));
        assert!(out.contains("\"lat_us_count\""));
        assert!(out.contains("\"lat_us_mean\""));
    }
}
