//! Declarative per-tenant SLOs evaluated as multi-window burn rates.
//!
//! An [`SloSpec`] states what a tenant is owed — a minimum delivered
//! share, a p99 wakeup-latency ceiling, a locality floor — plus an
//! **error budget**: the fraction of decision ticks that may violate the
//! target over a budget window. The [`SloEngine`] re-evaluates every
//! spec once per tick (the agent and the memsim supervisor drive any
//! engine installed on the hub) and reports the standard SRE pair:
//!
//! * **burn rate** — `violating fraction / budget` over each configured
//!   window, the worst window winning. A burn rate of `1` consumes the
//!   budget exactly as fast as it refills; `> 1` means the budget is
//!   being eaten. Short windows catch spikes, long windows slow burns —
//!   the classic multi-window alerting shape.
//! * **budget remaining** — `1 − violations/(budget × budget_window)`
//!   over the longest window; at `≤ 0` the budget is **exhausted**.
//!
//! Both export as gauges (`coop_slo_burn_rate` /
//! `coop_slo_budget_remaining`, labelled `tenant` + `slo`); every
//! violation and each exhaustion edge lands on the timeline as an `slo`
//! instant, and budget exhaustion additionally snapshots the flight
//! recorder (reason `slo-<tenant>-<objective>`) so the events leading up
//! to the miss survive for the post-mortem.
//!
//! Ticks with no data for a spec (an unknown tenant, an empty latency
//! histogram) are skipped entirely — they neither violate nor heal.

use crate::accounting::LedgerSnapshot;
use crate::json::{push_f64, push_str_literal};
use crate::timeline::{ArgValue, TelemetryHub};
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// Timeline category used for SLO events.
pub const SLO_CAT: &str = "slo";

/// What an [`SloSpec`] constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloObjective {
    /// The tenant's delivered share of executed tasks must stay at or
    /// above the target.
    MinDeliveredShare,
    /// The tenant's p99 park/wakeup latency (µs) must stay at or below
    /// the target.
    MaxWakeupP99Us,
    /// The tenant's locality ratio must stay at or above the target.
    MinLocalityRatio,
    /// The tenant's fuel-exhaustion preemption rate (preemptions per
    /// second over the last accepted ledger window) must stay at or
    /// below the target.
    MaxPreemptionRate,
}

impl SloObjective {
    /// Stable slug used in metric labels and JSON.
    pub fn slug(&self) -> &'static str {
        match self {
            SloObjective::MinDeliveredShare => "delivered_share",
            SloObjective::MaxWakeupP99Us => "wakeup_p99_us",
            SloObjective::MinLocalityRatio => "locality",
            SloObjective::MaxPreemptionRate => "preemption_rate",
        }
    }
}

/// One declarative SLO for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// The tenant (runtime / simulated application) the SLO protects.
    pub tenant: String,
    /// The constrained quantity.
    pub objective: SloObjective,
    /// Target value (a share in `0..=1`, a latency in µs, …).
    pub target: f64,
    /// Error budget: the fraction of ticks allowed to violate the
    /// target within the budget window (`0 < budget <= 1`).
    pub budget: f64,
    /// Burn-rate windows in ticks, ascending; the largest is the budget
    /// window.
    pub windows: Vec<usize>,
}

impl SloSpec {
    fn new(tenant: &str, objective: SloObjective, target: f64) -> Self {
        SloSpec {
            tenant: tenant.to_string(),
            objective,
            target,
            budget: 0.25,
            windows: vec![5, 20],
        }
    }

    /// The tenant's delivered share must stay `>= target`.
    pub fn min_share(tenant: &str, target: f64) -> Self {
        Self::new(tenant, SloObjective::MinDeliveredShare, target)
    }

    /// The tenant's p99 wakeup latency must stay `<= target` µs.
    pub fn wakeup_p99(tenant: &str, target_us: f64) -> Self {
        Self::new(tenant, SloObjective::MaxWakeupP99Us, target_us)
    }

    /// The tenant's locality ratio must stay `>= target`.
    pub fn locality_floor(tenant: &str, target: f64) -> Self {
        Self::new(tenant, SloObjective::MinLocalityRatio, target)
    }

    /// The tenant's preemption rate must stay `<= target` preemptions/s.
    pub fn max_preemption_rate(tenant: &str, target_per_s: f64) -> Self {
        Self::new(tenant, SloObjective::MaxPreemptionRate, target_per_s)
    }

    /// Override the error budget (clamped into `(0, 1]`).
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = budget.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Override the burn-rate windows (empty input keeps the default).
    pub fn with_windows(mut self, windows: Vec<usize>) -> Self {
        if !windows.is_empty() {
            self.windows = windows;
            self.windows.retain(|w| *w > 0);
            self.windows.sort_unstable();
            self.windows.dedup();
        }
        self
    }

    /// The budget window: the largest configured window.
    pub fn budget_window(&self) -> usize {
        self.windows.iter().copied().max().unwrap_or(20)
    }

    /// `true` if `value` violates the target.
    fn violated_by(&self, value: f64) -> bool {
        match self.objective {
            SloObjective::MinDeliveredShare | SloObjective::MinLocalityRatio => {
                value < self.target
            }
            SloObjective::MaxWakeupP99Us | SloObjective::MaxPreemptionRate => {
                value > self.target
            }
        }
    }
}

/// Burn rate over one configured window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    /// Window length, ticks.
    pub ticks: usize,
    /// Violating ticks inside the window (capped at the observed tick
    /// count while warming up).
    pub violations: u64,
    /// `violating fraction / budget` for this window.
    pub burn_rate: f64,
}

/// The current standing of one spec.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The spec being evaluated.
    pub spec: SloSpec,
    /// Evaluated ticks (ticks with data).
    pub ticks: u64,
    /// Total violating ticks over the whole run.
    pub violations_total: u64,
    /// Last measured value (0 before the first datum).
    pub last_value: f64,
    /// Worst per-window burn rate right now.
    pub burn_rate: f64,
    /// Highest burn rate ever observed.
    pub burn_rate_peak: f64,
    /// Fraction of the error budget left (can go negative).
    pub budget_remaining: f64,
    /// `true` while the budget is exhausted.
    pub exhausted: bool,
    /// `true` if the budget was ever exhausted during the run.
    pub was_exhausted: bool,
    /// Per-window burn rates, ascending window size.
    pub windows: Vec<WindowBurn>,
    /// Flight-recorder dumps written on exhaustion edges.
    pub dumps: u64,
}

#[derive(Debug)]
struct SpecState {
    spec: SloSpec,
    ring: VecDeque<bool>,
    ticks: u64,
    violations_total: u64,
    last_value: f64,
    burn_rate: f64,
    burn_rate_peak: f64,
    budget_remaining: f64,
    exhausted: bool,
    was_exhausted: bool,
    dumps: u64,
}

impl SpecState {
    fn status(&self) -> SloStatus {
        SloStatus {
            spec: self.spec.clone(),
            ticks: self.ticks,
            violations_total: self.violations_total,
            last_value: self.last_value,
            burn_rate: self.burn_rate,
            burn_rate_peak: self.burn_rate_peak,
            budget_remaining: self.budget_remaining,
            exhausted: self.exhausted,
            was_exhausted: self.was_exhausted,
            windows: self.window_burns(),
            dumps: self.dumps,
        }
    }

    fn window_burns(&self) -> Vec<WindowBurn> {
        self.spec
            .windows
            .iter()
            .map(|&w| {
                let observed = w.min(self.ring.len()).max(1);
                let violations = self
                    .ring
                    .iter()
                    .rev()
                    .take(w)
                    .filter(|&&v| v)
                    .count() as u64;
                WindowBurn {
                    ticks: w,
                    violations,
                    burn_rate: violations as f64 / (observed as f64 * self.spec.budget),
                }
            })
            .collect()
    }
}

/// Evaluates a set of [`SloSpec`]s against the hub once per decision
/// tick (see the module docs). Install one with
/// [`TelemetryHub::install_slo_engine`](crate::TelemetryHub::install_slo_engine)
/// so the `/slo` route can serve it and the agent / memsim supervisor
/// drive it.
#[derive(Debug)]
pub struct SloEngine {
    inner: Mutex<Vec<SpecState>>,
}

/// The `/slo` body served when no engine is installed on the hub.
pub(crate) const EMPTY_SLO_JSON: &str = "{\"slos\":[]}";

fn lock(engine: &SloEngine) -> MutexGuard<'_, Vec<SpecState>> {
    engine.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl SloEngine {
    /// An engine over `specs`.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        SloEngine {
            inner: Mutex::new(
                specs
                    .into_iter()
                    .map(|spec| SpecState {
                        ring: VecDeque::with_capacity(spec.budget_window()),
                        spec,
                        ticks: 0,
                        violations_total: 0,
                        last_value: 0.0,
                        burn_rate: 0.0,
                        burn_rate_peak: 0.0,
                        budget_remaining: 1.0,
                        exhausted: false,
                        was_exhausted: false,
                        dumps: 0,
                    })
                    .collect(),
            ),
        }
    }

    /// Evaluate every spec against the hub's current state: the tenant
    /// ledger for shares and locality, the
    /// `coop_sched_park_latency_us{runtime=…}` histogram for wakeup
    /// p99s. Publishes the burn-rate gauges, timeline instants, and
    /// triggers a flight dump on each budget-exhaustion edge.
    pub fn evaluate(&self, hub: &TelemetryHub, now_us: u64) {
        let ledger = hub.tenant_ledger().map(|l| l.snapshot());
        let mut inner = lock(self);
        for state in inner.iter_mut() {
            let Some(value) = measure(&state.spec, hub, ledger.as_ref()) else {
                continue; // no data this tick: neither violates nor heals
            };
            let violated = state.spec.violated_by(value);
            state.ticks += 1;
            state.last_value = value;
            let cap = state.spec.budget_window();
            if state.ring.len() >= cap {
                state.ring.pop_front();
            }
            state.ring.push_back(violated);

            let burns = state.window_burns();
            state.burn_rate = burns.iter().map(|b| b.burn_rate).fold(0.0, f64::max);
            state.burn_rate_peak = state.burn_rate_peak.max(state.burn_rate);
            let in_budget_window = state.ring.iter().filter(|&&v| v).count() as f64;
            state.budget_remaining = 1.0 - in_budget_window / (state.spec.budget * cap as f64);

            let labels = [
                ("tenant", state.spec.tenant.as_str()),
                ("slo", state.spec.objective.slug()),
            ];
            hub.registry()
                .gauge("coop_slo_burn_rate", &labels)
                .set(state.burn_rate);
            hub.registry()
                .gauge("coop_slo_budget_remaining", &labels)
                .set(state.budget_remaining);

            let track = hub.register_track("slo");
            let args = |value: f64, spec: &SloSpec| {
                vec![
                    ("tenant".to_string(), ArgValue::Str(spec.tenant.clone())),
                    (
                        "slo".to_string(),
                        ArgValue::Str(spec.objective.slug().to_string()),
                    ),
                    ("value".to_string(), ArgValue::F64(value)),
                    ("target".to_string(), ArgValue::F64(spec.target)),
                ]
            };
            if violated {
                state.violations_total += 1;
                hub.record_instant_at(
                    0,
                    track,
                    0,
                    SLO_CAT,
                    "violation",
                    now_us,
                    args(value, &state.spec),
                );
            }
            if state.budget_remaining <= 0.0 && !state.exhausted {
                state.exhausted = true;
                state.was_exhausted = true;
                hub.record_instant_at(
                    0,
                    track,
                    0,
                    SLO_CAT,
                    "budget_exhausted",
                    now_us,
                    args(value, &state.spec),
                );
                if let Some(recorder) = hub.flight_recorder() {
                    let reason =
                        format!("slo-{}-{}", state.spec.tenant, state.spec.objective.slug());
                    if recorder.trigger_dump(&reason).is_some() {
                        state.dumps += 1;
                    }
                }
            } else if state.budget_remaining > 0.0 && state.exhausted {
                state.exhausted = false;
                hub.record_instant_at(
                    0,
                    track,
                    0,
                    SLO_CAT,
                    "budget_restored",
                    now_us,
                    args(value, &state.spec),
                );
            }
        }
    }

    /// Current standing of every spec.
    pub fn report(&self) -> Vec<SloStatus> {
        lock(self).iter().map(|s| s.status()).collect()
    }

    /// The canonical JSON rendering — the exact body the HTTP server's
    /// `/slo` route serves. Deterministic: specs render in construction
    /// order with no wall-clock fields.
    pub fn to_json(&self) -> String {
        let report = self.report();
        let mut out = String::with_capacity(128 + report.len() * 256);
        out.push_str("{\"slos\":[");
        for (i, s) in report.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            push_str_literal(&mut out, &s.spec.tenant);
            out.push_str(",\"objective\":");
            push_str_literal(&mut out, s.spec.objective.slug());
            out.push_str(",\"target\":");
            push_f64(&mut out, s.spec.target);
            out.push_str(",\"budget\":");
            push_f64(&mut out, s.spec.budget);
            out.push_str(&format!(
                ",\"ticks\":{},\"violations\":{},\"last_value\":",
                s.ticks, s.violations_total
            ));
            push_f64(&mut out, s.last_value);
            out.push_str(",\"burn_rate\":");
            push_f64(&mut out, s.burn_rate);
            out.push_str(",\"burn_rate_peak\":");
            push_f64(&mut out, s.burn_rate_peak);
            out.push_str(",\"budget_remaining\":");
            push_f64(&mut out, s.budget_remaining);
            out.push_str(&format!(
                ",\"exhausted\":{},\"was_exhausted\":{},\"dumps\":{}",
                s.exhausted, s.was_exhausted, s.dumps
            ));
            out.push_str(",\"windows\":[");
            for (w, burn) in s.windows.iter().enumerate() {
                if w > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"ticks\":{},\"violations\":{},\"burn_rate\":",
                    burn.ticks, burn.violations
                ));
                push_f64(&mut out, burn.burn_rate);
                out.push_str("}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// A fixed-width text table (for `coop top`).
    pub fn to_text(&self) -> String {
        let report = self.report();
        if report.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:<15} {:>8} {:>8} {:>7} {:>7} {:>8} {:>9}\n",
            "TENANT", "SLO", "TARGET", "VALUE", "BURN", "PEAK", "BUDGET", "EXHAUSTED"
        ));
        for s in &report {
            out.push_str(&format!(
                "{:<14} {:<15} {:>8.3} {:>8.3} {:>7.2} {:>7.2} {:>8.3} {:>9}\n",
                s.spec.tenant,
                s.spec.objective.slug(),
                s.spec.target,
                s.last_value,
                s.burn_rate,
                s.burn_rate_peak,
                s.budget_remaining,
                if s.exhausted {
                    "yes"
                } else if s.was_exhausted {
                    "was"
                } else {
                    "no"
                }
            ));
        }
        out
    }
}

/// The measured value for `spec` this tick, or `None` when there is no
/// data to judge.
fn measure(spec: &SloSpec, hub: &TelemetryHub, ledger: Option<&LedgerSnapshot>) -> Option<f64> {
    match spec.objective {
        // A tenant whose ledger has not booked a single window yet has no
        // share/locality measurement — its first tick merely establishes
        // counter baselines and must not count as a violation.
        SloObjective::MinDeliveredShare => ledger?
            .tenant(&spec.tenant)
            .filter(|t| t.windows_accepted > 0)
            .map(|t| t.delivered_share),
        SloObjective::MinLocalityRatio => ledger?
            .tenant(&spec.tenant)
            .filter(|t| t.windows_accepted > 0)
            .map(|t| t.locality_ratio),
        SloObjective::MaxPreemptionRate => ledger?
            .tenant(&spec.tenant)
            .filter(|t| t.windows_accepted > 0)
            .map(|t| t.preemption_rate),
        SloObjective::MaxWakeupP99Us => {
            let snap = hub
                .registry()
                .histogram("coop_sched_park_latency_us", &[("runtime", &spec.tenant)])
                .snapshot();
            if snap.count == 0 {
                None
            } else {
                Some(snap.p99())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::{TenantLedger, TenantSample};
    use crate::recorder::FlightRecorder;
    use std::sync::Arc;

    fn sample(tenant: &str, tasks: u64, uptime_us: u64) -> TenantSample {
        TenantSample {
            tenant: tenant.to_string(),
            tasks_executed: tasks,
            uptime_us,
            per_node_tasks: vec![tasks],
            running_per_node: vec![1],
            local_pops: tasks,
            remote_steals: 0,
            preemptions: 0,
            overbudget_cpu_us: 0,
        }
    }

    #[test]
    fn burn_rate_rises_and_budget_exhausts_with_a_dump() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
        ledger.open_epoch(&hub, "a", "managed", 0);
        ledger.open_epoch(&hub, "b", "managed", 0);

        let recorder = Arc::new(FlightRecorder::new(128));
        let dir = std::env::temp_dir().join(format!("slo-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        recorder.set_dump_dir(&dir);
        assert!(hub.install_flight_recorder(Arc::clone(&recorder)));

        let engine = SloEngine::new(vec![SloSpec::min_share("a", 0.4)
            .with_budget(0.25)
            .with_windows(vec![2, 8])]);

        // Healthy ticks: a delivers ~0.5 of the work. (First tick only
        // establishes baselines, so the spec sees no violation.)
        let mut now = 0u64;
        let mut tick = |a_tasks_per_tick: u64, count: u64, cum: &mut (u64, u64)| {
            for _ in 0..count {
                now += 10;
                cum.0 += a_tasks_per_tick;
                cum.1 += 100;
                ledger.tick(
                    &hub,
                    now,
                    &[
                        sample("a", cum.0, now * 100),
                        sample("b", cum.1, now * 100),
                    ],
                );
                engine.evaluate(&hub, now);
            }
        };
        let mut cum = (0u64, 0u64);
        tick(100, 4, &mut cum);
        let healthy = engine.report();
        assert_eq!(healthy[0].violations_total, 0);
        assert!(!healthy[0].exhausted);
        assert!((healthy[0].budget_remaining - 1.0).abs() < 1e-12);

        // Outage: a delivers nothing. Budget = 0.25 x 8 ticks = 2
        // violating ticks; the third exhausts it.
        tick(0, 3, &mut cum);
        let starved = engine.report();
        assert!(starved[0].violations_total >= 2);
        assert!(starved[0].burn_rate > 1.0, "burn {}", starved[0].burn_rate);
        assert!(starved[0].exhausted);
        assert!(starved[0].was_exhausted);
        assert_eq!(starved[0].dumps, 1, "one dump per exhaustion edge");
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().starts_with("flight-slo-a")));

        // Gauges and timeline instants are published.
        let burn = hub
            .registry()
            .gauge_value(
                "coop_slo_burn_rate",
                &[("tenant", "a"), ("slo", "delivered_share")],
            )
            .unwrap();
        assert!(burn > 1.0);
        let events = hub.events();
        assert!(events
            .iter()
            .any(|e| e.cat == SLO_CAT && e.name == "violation"));
        assert!(events
            .iter()
            .any(|e| e.cat == SLO_CAT && e.name == "budget_exhausted"));

        // Recovery drains the ring and restores the budget.
        tick(100, 8, &mut cum);
        let recovered = engine.report();
        assert!(!recovered[0].exhausted);
        assert!(recovered[0].was_exhausted, "the episode stays on record");
        assert!(recovered[0].budget_remaining > 0.0);
        assert!(events.len() <= hub.events().len());
        assert!(hub
            .events()
            .iter()
            .any(|e| e.cat == SLO_CAT && e.name == "budget_restored"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_data_ticks_are_skipped() {
        let hub = Arc::new(TelemetryHub::new());
        // No ledger installed: share/locality specs see no data; the
        // latency spec sees an empty histogram.
        let engine = SloEngine::new(vec![
            SloSpec::min_share("ghost", 0.5),
            SloSpec::wakeup_p99("ghost", 1000.0),
            SloSpec::locality_floor("ghost", 0.9),
        ]);
        engine.evaluate(&hub, 10);
        for s in engine.report() {
            assert_eq!(s.ticks, 0);
            assert_eq!(s.violations_total, 0);
            assert!((s.budget_remaining - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn wakeup_p99_spec_reads_the_park_histogram() {
        let hub = Arc::new(TelemetryHub::new());
        let hist = hub
            .registry()
            .histogram("coop_sched_park_latency_us", &[("runtime", "rt")]);
        for _ in 0..100 {
            hist.observe(10_000);
        }
        let engine = SloEngine::new(vec![SloSpec::wakeup_p99("rt", 100.0)]);
        engine.evaluate(&hub, 5);
        let s = &engine.report()[0];
        assert_eq!(s.ticks, 1);
        assert_eq!(s.violations_total, 1, "p99 ~10ms violates a 100us ceiling");
        assert!(s.last_value > 100.0);
    }

    #[test]
    fn preemption_rate_spec_reads_the_ledger() {
        let hub = Arc::new(TelemetryHub::new());
        let ledger = Arc::new(TenantLedger::new());
        assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
        ledger.open_epoch(&hub, "hog", "managed", 0);

        let engine = SloEngine::new(vec![SloSpec::max_preemption_rate("hog", 2.0)]);
        // Tick 0 establishes the baseline; the spec sees windows_accepted
        // == 1 but a zero rate — compliant.
        ledger.tick(&hub, 10, &[sample("hog", 100, 1_000_000)]);
        engine.evaluate(&hub, 10);
        assert_eq!(engine.report()[0].violations_total, 0);

        // A runaway window: 10 preemptions over 1 s breaches the 2/s
        // ceiling.
        let mut runaway = sample("hog", 200, 2_000_000);
        runaway.preemptions = 10;
        ledger.tick(&hub, 20, &[runaway]);
        engine.evaluate(&hub, 20);
        let s = &engine.report()[0];
        assert_eq!(s.violations_total, 1);
        assert!((s.last_value - 10.0).abs() < 1e-9);
        assert_eq!(s.spec.objective.slug(), "preemption_rate");
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let hub = Arc::new(TelemetryHub::new());
        let engine = SloEngine::new(vec![SloSpec::min_share("a", 0.4)]);
        engine.evaluate(&hub, 1);
        let json = engine.to_json();
        assert_eq!(json, engine.to_json());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed["slos"][0]["tenant"], "a");
        assert_eq!(parsed["slos"][0]["objective"], "delivered_share");
        // An engine with no specs serves the same shape as the
        // uninstalled fallback.
        assert_eq!(SloEngine::new(Vec::new()).to_json(), EMPTY_SLO_JSON);
    }
}
