//! The exporters hand-roll their JSON; these tests keep them honest by
//! parsing the output with `serde_json`.

use coop_telemetry::{ArgValue, TelemetryHub};

fn busy_hub() -> TelemetryHub {
    let hub = TelemetryHub::with_config(4, 8);
    let rt = hub.register_track("runtime:pipeline");
    let agent = hub.register_track("agent");
    hub.set_lane_name(rt, 1, "worker-0");
    hub.set_lane_name(agent, 0, "decisions");
    for i in 0..20u64 {
        hub.record_span(
            i as usize,
            rt,
            1,
            "task",
            &format!("task \"{}\"\n", i),
            i * 10,
            5,
            vec![
                ("id".to_string(), ArgValue::U64(i)),
                ("ok".to_string(), ArgValue::Bool(true)),
                ("note".to_string(), ArgValue::Str("a\\b".to_string())),
            ],
        );
    }
    hub.record_instant(
        0,
        agent,
        0,
        "agent",
        "decision",
        vec![("tick".to_string(), ArgValue::I64(-1))],
    );
    hub.record_counter(1, agent, 1, "bandwidth", "node0", 55, f64::NAN, Vec::new());
    hub.registry().set_help("coop_task_latency_us", "latency");
    hub.registry()
        .histogram("coop_task_latency_us", &[("runtime", "p")])
        .observe(42);
    hub.registry().gauge("util", &[("node", "0")]).set(0.25);
    hub
}

#[test]
fn perfetto_export_is_valid_json_with_drop_metadata() {
    let hub = busy_hub();
    let parsed: serde_json::Value =
        serde_json::from_str(&hub.to_perfetto_json()).expect("perfetto export must be valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    // Process metadata for both tracks.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
        .map(|e| e["args"]["name"].as_str().unwrap())
        .collect();
    assert!(names.contains(&"runtime:pipeline"));
    assert!(names.contains(&"agent"));
    // Spans, instants and counters all present; the NaN counter sample
    // was sanitised to a number serde_json accepts.
    assert!(events.iter().any(|e| e["ph"] == "X" && e["cat"] == "task"));
    assert!(events.iter().any(|e| e["ph"] == "i" && e["cat"] == "agent"));
    assert!(events
        .iter()
        .any(|e| e["ph"] == "C" && e["args"]["value"].is_number()));
    // 4 shards x 8 capacity = 32 slots for 22 events: nothing dropped on
    // an even spread... except shard overflow if hints collide; recompute
    // from the hub and check the metadata agrees either way.
    assert_eq!(
        parsed["metadata"]["dropped"].as_u64().unwrap(),
        hub.dropped()
    );
    assert_eq!(
        parsed["metadata"]["events"].as_u64().unwrap() as usize,
        hub.event_count()
    );
}

#[test]
fn overflowing_hub_reports_drops_in_metadata() {
    let hub = TelemetryHub::with_config(1, 4);
    let t = hub.register_track("t");
    for i in 0..10u64 {
        hub.record_span(0, t, 0, "c", "e", i, 1, Vec::new());
    }
    let parsed: serde_json::Value = serde_json::from_str(&hub.to_perfetto_json()).unwrap();
    assert_eq!(parsed["metadata"]["dropped"], 6);
    assert_eq!(parsed["metadata"]["events"], 4);
}

#[test]
fn summary_export_is_valid_json() {
    let hub = busy_hub();
    let parsed: serde_json::Value =
        serde_json::from_str(&hub.summary_json()).expect("summary must be valid JSON");
    assert!(parsed["events"].is_u64());
    let metrics = parsed["metrics"].as_array().unwrap();
    assert!(metrics
        .iter()
        .any(|m| m["name"] == "coop_task_latency_us_count" && m["value"] == 1));
    assert!(metrics
        .iter()
        .any(|m| m["name"] == "util" && m["labels"]["node"] == "0"));
}
