//! Property tests for the drift detector's statistical behavior.
//!
//! Two properties from the model-drift observatory spec:
//!
//! 1. **Bounded false-alarm rate.** On stationary residual streams (zero-mean
//!    noise whose amplitude stays within the CUSUM slack band), the detector
//!    must stay quiet: the empirical false-alarm rate across many independent
//!    series must remain below a small bound.
//! 2. **Prompt step detection.** When a stationary stream acquires a
//!    persistent bias well above the slack, the detector must alarm within a
//!    predictable number of samples (the CUSUM ramp `h / (bias - k)` plus the
//!    warm-up allowance).

use coop_telemetry::{DriftConfig, DriftDetector};
use proptest::prelude::*;

/// Deterministic uniform noise in `[-amp, amp]` from a simple LCG, so the
/// statistical properties are reproducible for any proptest-chosen seed.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        // Numerical Recipes LCG constants; top 53 bits -> [0, 1).
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn noise(&mut self, amp: f64) -> f64 {
        (self.next_f64() * 2.0 - 1.0) * amp
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stationary noise within the slack band never accumulates: across 16
    /// independent series x 256 samples the false-alarm rate stays below
    /// 0.1% (in fact it is zero for in-band noise, but the property pins
    /// the rate bound the ISSUE asks for, not the mechanism).
    #[test]
    fn stationary_false_alarm_rate_is_bounded(seed in any::<u64>(), amp in 0.0f64..0.045) {
        let config = DriftConfig::default(); // k = 0.05, h = 0.5
        prop_assume!(amp < config.cusum_k);
        let detector = DriftDetector::new(config);
        let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
        let series: Vec<String> = (0..16).map(|i| format!("app/a{i}/gflops")).collect();
        let mut samples = 0u64;
        for _ in 0..256 {
            for s in &series {
                detector.observe(s, rng.noise(amp));
                samples += 1;
            }
        }
        let rate = detector.total_alarms() as f64 / samples as f64;
        prop_assert!(rate < 0.001, "false-alarm rate {rate} (alarms={})", detector.total_alarms());
    }

    /// A persistent bias of at least 4x the slack is detected within the
    /// CUSUM ramp time: ceil(h / (bias - k)) samples of signal, plus the
    /// min_samples warm-up and one sample of noise margin.
    #[test]
    fn step_change_is_detected_within_ramp_bound(
        seed in any::<u64>(),
        bias in 0.2f64..1.0,
        sign in prop::bool::ANY,
    ) {
        let config = DriftConfig::default();
        let detector = DriftDetector::new(config.clone());
        let mut rng = Lcg(seed ^ 0x2545f4914f6cdd1d);
        let noise_amp = 0.02;
        let bias = if sign { bias } else { -bias };

        // Stationary prefix: quiet.
        for _ in 0..64 {
            detector.observe("node/0/bandwidth_gbs", rng.noise(noise_amp));
        }
        prop_assert_eq!(detector.total_alarms(), 0);

        // Step: each post-step sample adds at least |bias| - noise - k to
        // the relevant CUSUM sum, so the ramp to h is bounded.
        let per_sample = bias.abs() - noise_amp - config.cusum_k;
        let ramp = (config.cusum_h / per_sample).ceil() as u64;
        let budget = ramp + config.min_samples + 1;
        let mut detected_at = None;
        for i in 0..budget {
            if detector
                .observe("node/0/bandwidth_gbs", bias + rng.noise(noise_amp))
                .is_some()
            {
                detected_at = Some(i + 1);
                break;
            }
        }
        prop_assert!(
            detected_at.is_some(),
            "no alarm within {budget} samples after a bias of {bias}"
        );
    }
}
