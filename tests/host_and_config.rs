//! Host-detection and configuration-file workflows: the paths a real
//! deployment takes before any paper scenario runs.

use numa_coop::prelude::*;
use numa_coop::topology::host;

#[test]
fn detected_host_is_immediately_usable() {
    let machine = host::detect_host();
    assert!(machine.num_nodes() >= 1);
    assert!(machine.total_cores() >= 1);

    // Fair share + solve work on whatever was detected.
    let apps = vec![AppSpec::numa_local("a", 0.5), AppSpec::numa_local("b", 8.0)];
    let fair = strategies::fair_share(&machine, apps.len()).unwrap();
    let report = solve(&machine, &apps, &fair).unwrap();
    assert!(report.total_gflops() > 0.0);

    // And a runtime starts on it (worker per core) and does work.
    let rt = Runtime::start(RuntimeConfig::new("host-rt", machine.clone())).unwrap();
    let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for i in 0..8 {
        let hits = hits.clone();
        rt.task(&format!("t{i}"))
            .body(move |_| {
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            })
            .spawn()
            .unwrap();
    }
    rt.wait_quiescent().unwrap();
    assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 8);
    rt.shutdown();
}

#[test]
fn machine_config_file_round_trip_drives_the_model() {
    // Serialize a machine to a config file, reload, and verify the paper
    // scenario still reproduces — the "ship a machine description with
    // your deployment" workflow.
    let machine = numa_coop::topology::presets::paper_model_machine();
    let dir = std::env::temp_dir().join(format!("numa-coop-cfg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("machine.json");
    std::fs::write(&path, machine.to_json()).unwrap();

    let loaded = Machine::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, machine);

    let apps = vec![
        AppSpec::numa_local("mem1", 0.5),
        AppSpec::numa_local("mem2", 0.5),
        AppSpec::numa_local("mem3", 0.5),
        AppSpec::numa_local("comp", 10.0),
    ];
    let a = ThreadAssignment::uniform_per_node(&loaded, &[1, 1, 1, 5]);
    let r = solve(&loaded, &apps, &a).unwrap();
    assert!((r.total_gflops() - 254.0).abs() < 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_config_fails_closed() {
    let machine = numa_coop::topology::presets::tiny();
    let mut json = machine.to_json();
    json = json.replace("\"num_cores\": 2", "\"num_cores\": 0");
    assert!(
        Machine::from_json(&json).is_err(),
        "zero-core node must be rejected"
    );
}
