//! Cross-crate integration: live runtimes + agent + pipeline + thread
//! control, exercising the Figure 1 architecture end to end.

use numa_coop::agent::policies::{FairShare, ModelGuided, ProducerConsumerThrottle};
use numa_coop::agent::{proto, Agent, RuntimeHandle};
use numa_coop::prelude::*;
use numa_coop::topology::presets::{paper_model_machine, tiny};
use numa_coop::workloads::pipeline::{run_pipeline, PipelineConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn fair_share_agent_coordinates_two_runtimes() {
    let machine = tiny(); // 2 nodes x 2 cores
    let a = Arc::new(Runtime::start(RuntimeConfig::new("a", machine.clone())).unwrap());
    let b = Arc::new(Runtime::start(RuntimeConfig::new("b", machine.clone())).unwrap());

    let mut agent = Agent::new(Box::new(FairShare::new(machine.clone())));
    agent.manage(Box::new(Arc::clone(&a)));
    agent.manage(Box::new(Arc::clone(&b)));
    let log = agent.run_for(Duration::from_millis(20), Duration::from_millis(2));
    assert_eq!(log.decisions.len(), 2, "one command per runtime");

    // Each runtime converges to 1 thread per node (fair share of 2 cores).
    for rt in [&a, &b] {
        assert!(rt
            .control()
            .wait_converged(Duration::from_secs(5), |run, per| run == 2
                && per.iter().all(|&p| p == 1)));
    }
    // Total worker threads across apps == machine cores (the paper's
    // fair-share definition).
    let total = Runtime::stats(&a).running_workers + Runtime::stats(&b).running_workers;
    assert_eq!(total, machine.total_cores());
    a.shutdown();
    b.shutdown();
}

#[test]
fn model_guided_agent_applies_numa_aware_partition() {
    let machine = paper_model_machine();
    let specs = vec![
        AppSpec::numa_local("mem", 0.5),
        AppSpec::numa_local("comp", 10.0),
    ];
    let mem = Arc::new(Runtime::start(RuntimeConfig::new("mem", machine.clone())).unwrap());
    let comp = Arc::new(Runtime::start(RuntimeConfig::new("comp", machine.clone())).unwrap());

    let mut agent = Agent::new(Box::new(ModelGuided::new(machine.clone(), specs)));
    agent.manage(Box::new(Arc::clone(&mem)));
    agent.manage(Box::new(Arc::clone(&comp)));
    let log = agent.run_for(Duration::from_millis(30), Duration::from_millis(5));
    assert!(!log.decisions.is_empty());

    // The compute app must end up with (many) more threads than the
    // memory-bound one, and no node may be over-subscribed.
    assert!(mem
        .control()
        .wait_converged(Duration::from_secs(5), |run, _| run >= 1));
    std::thread::sleep(Duration::from_millis(30));
    let m = Runtime::stats(&mem);
    let c = Runtime::stats(&comp);
    assert!(
        c.running_workers > m.running_workers,
        "comp {} vs mem {}",
        c.running_workers,
        m.running_workers
    );
    for node in 0..machine.num_nodes() {
        let used = m.per_node[node].running_workers + c.per_node[node].running_workers;
        assert!(used <= 8, "node {node} over-subscribed: {used}");
    }
    mem.shutdown();
    comp.shutdown();
}

#[test]
fn channel_endpoints_support_the_full_agent_loop() {
    // The separate-process-style transport: agent talks over channels.
    let machine = tiny();
    let a = Arc::new(Runtime::start(RuntimeConfig::new("a", machine.clone())).unwrap());
    let b = Arc::new(Runtime::start(RuntimeConfig::new("b", machine.clone())).unwrap());
    let (ep_a, _pump_a) = proto::connect(Arc::clone(&a)).unwrap();
    let (ep_b, _pump_b) = proto::connect(Arc::clone(&b)).unwrap();

    let mut agent = Agent::new(Box::new(FairShare::new(machine.clone())));
    agent.manage(Box::new(ep_a));
    agent.manage(Box::new(ep_b));
    agent.tick().unwrap();

    for rt in [&a, &b] {
        assert!(rt
            .control()
            .wait_converged(Duration::from_secs(5), |run, _| run == 2));
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn throttled_pipeline_bounds_intermediate_data() {
    let machine = tiny();
    let producer = Arc::new(Runtime::start(RuntimeConfig::new("prod", machine.clone())).unwrap());
    let consumer = Arc::new(Runtime::start(RuntimeConfig::new("cons", machine.clone())).unwrap());

    let mut agent = Agent::new(Box::new(ProducerConsumerThrottle::new(
        0,
        1,
        1,
        2,
        1,
        machine.total_cores(),
    )));
    agent.manage(Box::new(Arc::clone(&producer)));
    agent.manage(Box::new(Arc::clone(&consumer)));
    let handle = agent.spawn(Duration::from_micros(500)).unwrap();

    let config = PipelineConfig {
        iterations: 30,
        tasks_per_iteration: 4,
        work_per_task: 60_000,
        item_bytes: 1 << 12,
        consumer_work_factor: 3.0,
        sample_interval: Duration::from_micros(200),
    };
    let report = run_pipeline(&producer, &consumer, &config);
    let log = handle.stop();

    assert_eq!(report.produced, 30);
    assert_eq!(report.consumed, 30);
    assert!(log.decisions.iter().all(|d| d.runtime == "prod"));
    assert!(
        !log.decisions.is_empty(),
        "the throttle must have reacted to the heavy consumer"
    );
    producer.shutdown();
    consumer.shutdown();
}

#[test]
fn handles_report_consistent_identity() {
    let machine = tiny();
    let rt = Arc::new(Runtime::start(RuntimeConfig::new("ident", machine)).unwrap());
    let arc_handle: Box<dyn RuntimeHandle> = Box::new(Arc::clone(&rt));
    assert_eq!(arc_handle.name(), "ident");
    let stats = arc_handle.stats().unwrap();
    assert_eq!(stats.name, "ident");
    arc_handle.command(ThreadCommand::TotalThreads(2)).unwrap();
    assert!(rt
        .control()
        .wait_converged(Duration::from_secs(5), |run, _| run <= 2));
    rt.shutdown();
}
