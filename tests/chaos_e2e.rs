//! End-to-end fault tolerance: three cooperating runtimes under one
//! supervised agent, with a chaos wrapper around the first. Killing it
//! mid-run must walk the detector to Dead within the configured window,
//! evict it, and fair-share its cores to the two survivors (their worker
//! counts rise); reviving it must re-admit it as Healthy and give it its
//! share back — all without `Agent::tick` ever returning an error. The
//! eviction/recovery instants must land on the shared telemetry timeline
//! and the health gauge / retry counters must export via Prometheus.
//!
//! A second test drives the runaway path end to end: fuel budgets and
//! the wall-clock watchdog armed on every runtime, spinners wedged into
//! one tenant until the agent's sustained-runaway detector walks the
//! containment ladder — the offender is Degraded (not evicted), the
//! containment lands on the timeline, the ledger books the over-budget
//! CPU against the offender alone, and a few quiet ticks later the
//! offender is Healthy again.

use numa_coop::agent::SupervisionConfig;
use numa_coop::agent::{policies, Agent, ChaosHandle, FaultPlan, Health, KillSwitch};
use numa_coop::prelude::*;
use numa_coop::topology::presets::tiny;
use std::sync::Arc;
use std::time::Duration;

const CONVERGE: Duration = Duration::from_secs(5);

fn health_of(agent: &Agent, name: &str) -> Health {
    agent
        .health()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, h)| h)
        .expect("runtime is managed")
}

#[test]
fn kill_evict_reclaim_revive_round_trip() {
    let machine = tiny();
    let hub = Arc::new(TelemetryHub::new());

    // Three cooperating runtimes on one hub; fair share over tiny()
    // (2 nodes x 2 cores) gives them 1 / 2 / 1 threads respectively.
    let runtimes: Vec<Arc<Runtime>> = (0..3)
        .map(|i| {
            Arc::new(
                Runtime::start(
                    RuntimeConfig::new(&format!("app{i}"), machine.clone())
                        .with_telemetry(Arc::clone(&hub)),
                )
                .unwrap(),
            )
        })
        .collect();

    // app0 goes through the chaos wrapper so the test can kill and
    // revive it without touching the real runtime.
    let kill = KillSwitch::new();
    let chaotic = ChaosHandle::new(Box::new(Arc::clone(&runtimes[0])), FaultPlan::new())
        .with_kill_switch(kill.clone());

    let mut agent = Agent::with_telemetry(
        Box::new(policies::FairShare::new(machine.clone())),
        Arc::clone(&hub),
    );
    agent.set_supervision(SupervisionConfig::aggressive(Duration::from_millis(100)));
    agent.set_reclaim_machine(machine.clone());
    agent.manage(Box::new(chaotic));
    agent.manage(Box::new(Arc::clone(&runtimes[1])));
    agent.manage(Box::new(Arc::clone(&runtimes[2])));

    // Phase 1 — healthy steady state: FairShare fires on the first tick.
    for _ in 0..2 {
        agent.tick().unwrap();
    }
    for (_, h) in agent.health() {
        assert_eq!(h, Health::Healthy);
    }
    assert!(runtimes[0]
        .control()
        .wait_converged(CONVERGE, |total, _| total == 1));
    assert!(runtimes[1]
        .control()
        .wait_converged(CONVERGE, |total, _| total == 2));
    assert!(runtimes[2]
        .control()
        .wait_converged(CONVERGE, |total, _| total == 1));

    // Phase 2 — kill app0. aggressive() allows one retry per call, so
    // each failing tick records two detector failures: Degraded and
    // Suspected on the first failing tick, Dead (and eviction) on the
    // second. Four ticks stay comfortably inside the detection window,
    // and none of them may error.
    kill.kill();
    for _ in 0..4 {
        agent.tick().unwrap();
    }
    assert_eq!(health_of(&agent, "app0"), Health::Dead);
    assert_eq!(agent.evicted(), vec!["app0".to_string()]);

    // Reclamation: the survivors split the whole machine — both rise to
    // one thread per node (app2 grows 1 -> 2, combined 3 -> 4).
    assert!(runtimes[1]
        .control()
        .wait_converged(CONVERGE, |total, per_node| total == 2 && per_node == [1, 1]));
    assert!(runtimes[2]
        .control()
        .wait_converged(CONVERGE, |total, per_node| total == 2 && per_node == [1, 1]));

    // The health gauge tracks the transition (Dead exports as 3).
    assert_eq!(
        hub.registry()
            .gauge_value("coop_agent_runtime_health", &[("runtime", "app0")]),
        Some(3.0)
    );

    // Phase 3 — revive: recovery_successes = 2 probes, one per tick.
    kill.revive();
    for _ in 0..3 {
        agent.tick().unwrap();
    }
    assert!(agent.evicted().is_empty());
    assert_eq!(health_of(&agent, "app0"), Health::Healthy);

    // The re-admitted runtime gets its fair share back.
    assert!(runtimes[0]
        .control()
        .wait_converged(CONVERGE, |total, _| total >= 1));

    // Eviction and recovery instants are on the shared timeline.
    let events = hub.events();
    assert!(events
        .iter()
        .any(|e| e.cat == "health" && e.name == "evicted"));
    assert!(events
        .iter()
        .any(|e| e.cat == "health" && e.name == "readmitted"));

    // Health and retry series export through the Prometheus endpoint.
    let prom = hub.registry().to_prometheus();
    assert!(prom.contains("coop_agent_runtime_health"));
    assert!(prom.contains("coop_agent_retries_total"));
    assert!(
        hub.registry().counter_total("coop_agent_retries_total") > 0,
        "the killed runtime's calls were retried before being declared dead"
    );

    for rt in &runtimes {
        rt.shutdown();
    }
}

#[test]
fn runaway_is_contained_booked_and_forgiven() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let machine = tiny();
    let hub = Arc::new(TelemetryHub::new());
    let ledger = Arc::new(TenantLedger::new());
    hub.install_tenant_ledger(Arc::clone(&ledger));

    // Budgets and the watchdog are armed on *every* tenant; containment
    // must single out the offender by behaviour.
    let runtimes: Vec<Arc<Runtime>> = (0..3)
        .map(|i| {
            Arc::new(
                Runtime::start(
                    RuntimeConfig::new(&format!("app{i}"), machine.clone())
                        .with_telemetry(Arc::clone(&hub))
                        .with_task_fuel(64)
                        .with_watchdog(Duration::from_millis(10)),
                )
                .unwrap(),
            )
        })
        .collect();

    let mut agent = Agent::with_telemetry(
        Box::new(policies::FairShare::new(machine.clone())),
        Arc::clone(&hub),
    );
    agent.set_supervision(SupervisionConfig::aggressive(Duration::from_millis(100)));
    agent.set_reclaim_machine(machine.clone());
    for rt in &runtimes {
        agent.manage(Box::new(Arc::clone(rt)));
    }

    // Steady state first: fair share lands, everyone Healthy.
    for _ in 0..2 {
        agent.tick().unwrap();
    }
    for (_, h) in agent.health() {
        assert_eq!(h, Health::Healthy);
    }

    // app1 goes rogue: one fresh spinner per tick keeps the runaway
    // counter climbing (each wedges a worker until `stop` flips), and a
    // fuel hog burns through its 4-unit budget so preemptions move too.
    let stop = Arc::new(AtomicBool::new(false));
    for round in 0..2 {
        let stop2 = Arc::clone(&stop);
        runtimes[1]
            .task(&format!("spin-{round}"))
            .body(move |_| {
                while !stop2.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
            })
            .spawn()
            .unwrap();
        if round == 0 {
            let mut steps = 0u32;
            runtimes[1]
                .task("hog")
                .fuel(4)
                .body_step(move |_| {
                    steps += 1;
                    if steps < 64 {
                        numa_coop::runtime::TaskStep::Yield
                    } else {
                        numa_coop::runtime::TaskStep::Done
                    }
                })
                .spawn()
                .unwrap();
        }
        // Let the 10 ms watchdog flag this round's spinner before the
        // agent samples stats: each tick then sees the counter climb.
        std::thread::sleep(Duration::from_millis(60));
        agent.tick().unwrap();
    }

    // Two climbing ticks is sustained: the ladder's first rung fired,
    // the offender is Degraded — contained, not evicted.
    assert!(
        hub.registry().counter_total("coop_agent_containments_total") >= 1,
        "sustained runaways must trigger containment"
    );
    assert_eq!(health_of(&agent, "app1"), Health::Degraded);
    assert!(agent.evicted().is_empty());
    assert_eq!(health_of(&agent, "app0"), Health::Healthy);
    assert_eq!(health_of(&agent, "app2"), Health::Healthy);
    assert!(hub
        .events()
        .iter()
        .any(|e| e.cat == "health" && e.name.starts_with("contained:")));

    // The spinners relent; their past-deadline CPU is booked when they
    // hand their workers back.
    stop.store(true, Ordering::Release);
    runtimes[1].wait_quiescent().unwrap();
    let stats = runtimes[1].stats().unwrap();
    assert!(stats.tasks_runaway >= 2, "watchdog missed a spinner: {stats:?}");
    assert!(stats.tasks_preempted > 0, "fuel hog was never preempted: {stats:?}");
    assert!(stats.overbudget_cpu_us > 0, "returned runaways book CPU: {stats:?}");

    // Quiet ticks: the ledger books the damage against the offender
    // alone, and the forced health floor lifts — the offender recovers.
    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(20));
        agent.tick().unwrap();
    }
    assert_eq!(health_of(&agent, "app1"), Health::Healthy);

    let snap = ledger.snapshot();
    let account = |name: &str| {
        snap.tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("{name} is accounted"))
            .clone()
    };
    let offender = account("app1");
    assert!(offender.preemptions > 0, "ledger books preemptions: {offender:?}");
    assert!(offender.overbudget_cpu_us > 0, "ledger books over-budget CPU: {offender:?}");
    for survivor in ["app0", "app2"] {
        let t = account(survivor);
        assert_eq!(t.preemptions, 0, "{survivor} wrongly charged: {t:?}");
        assert_eq!(t.overbudget_cpu_us, 0, "{survivor} wrongly charged: {t:?}");
    }

    for rt in &runtimes {
        rt.shutdown();
    }
}
