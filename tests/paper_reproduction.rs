//! End-to-end reproduction checks: every table and figure of the paper,
//! regenerated through the same code paths as the `coop-bench` binaries,
//! asserted against the paper's published values.

use coop_bench::experiments::{dist, fig3, oversub, sublinear, table12, table3};
use numa_topology::presets::{dual_socket, paper_model_machine};

/// Table I, every row (headline + the intermediate quantities the paper
/// prints).
#[test]
fn table_1_full_reproduction() {
    let t = table12::table1();
    assert_eq!(t.classes.len(), 2);
    let (mem, comp) = (&t.classes[0], &t.classes[1]);
    assert_eq!((mem.instances, comp.instances), (3, 1));
    assert_eq!((mem.threads_per_node, comp.threads_per_node), (1, 5));
    assert!((t.total_required_bw - 65.0).abs() < 1e-9);
    assert!((t.allocated_node_gbs - 17.0).abs() < 1e-9);
    assert!((t.remaining_node_gbs - 15.0).abs() < 1e-9);
    assert!((mem.total_allocated_per_thread - 9.0).abs() < 1e-9);
    assert!((t.gflops_per_node - 63.5).abs() < 1e-9);
    assert!((t.total_gflops - 254.0).abs() < 1e-9);
}

/// Table II, every row.
#[test]
fn table_2_full_reproduction() {
    let t = table12::table2();
    let mem = &t.classes[0];
    assert!((t.total_required_bw - 122.0).abs() < 1e-9);
    assert!((t.allocated_node_gbs - 26.0).abs() < 1e-9);
    assert!((t.remaining_node_gbs - 6.0).abs() < 1e-9);
    assert!((mem.total_allocated_per_thread - 5.0).abs() < 1e-9);
    assert!((t.gflops_per_node - 35.0).abs() < 1e-9);
    assert!((t.total_gflops - 140.0).abs() < 1e-9);
}

/// Figure 2: 254 / 140 / 128, with the uneven allocation winning.
#[test]
fn figure_2_reproduction() {
    let t = table12::figure2();
    let vals: Vec<f64> = t.rows.iter().map(|r| r.measured).collect();
    assert!((vals[0] - 254.0).abs() < 1e-9);
    assert!((vals[1] - 140.0).abs() < 1e-9);
    assert!((vals[2] - 128.0).abs() < 1e-9);
}

/// Figure 3: the ranking reverses with a NUMA-bad application.
#[test]
fn figure_3_reproduction() {
    let t = fig3::figure3();
    assert!((t.rows[0].measured - 138.75).abs() < 1e-9); // paper: 138
    assert!((t.rows[1].measured - 150.0).abs() < 1e-9); // paper: 150
    assert!(t.rows[1].measured > t.rows[0].measured);
}

/// Table III: calibration recovers the paper's parameters; model and
/// simulated-real columns land within a few percent of the paper's, with
/// the same discrepancy signs.
#[test]
fn table_3_reproduction() {
    let t = table3::run(0.1);
    assert!((t.calibrated_peak - 0.29).abs() < 0.005);
    assert!((t.calibrated_bandwidth - 100.0).abs() < 2.0);
    assert!(t.model_table().max_deviation() < 0.02);
    assert!(t.real_table().max_deviation() < 0.05);
    // Discrepancy signs: model over-estimates the NUMA-bad rows.
    assert!(t.scenarios[3].model > t.scenarios[3].real);
    assert!(t.scenarios[4].model > t.scenarios[4].real);
    // Real beats model on the single-app-per-node row, like the paper.
    assert!(t.scenarios[2].real > t.scenarios[2].model);
}

/// E-osched: fair share beats over-subscription by only a few percent.
#[test]
fn oversubscription_claim() {
    let t = oversub::run(&paper_model_machine(), 2, 10.0, 0.05);
    let improvement = t
        .rows
        .iter()
        .find(|r| r.label == "improvement %")
        .expect("improvement row present")
        .measured;
    assert!(
        improvement > 0.0 && improvement < 10.0,
        "got {improvement}%"
    );
}

/// E-sublin: the searched allocation shifts threads away from the
/// sub-linear application and wins.
#[test]
fn sublinear_claim() {
    let r = sublinear::run(&dual_socket(), 0.25, 0.02);
    assert!(r.linear_threads > r.sublinear_threads);
    assert!(r.table.rows[2].measured > 1.0);
}

/// E-dist: loose+dynamic translates most local speedup; tight+static
/// translates almost none.
#[test]
fn distributed_translation_claim() {
    let t = dist::run(16, 3200, 7);
    let find = |prefix: &str| {
        t.rows
            .iter()
            .find(|r| r.label.starts_with(prefix))
            .unwrap()
            .measured
    };
    let mean = find("mean local speedup");
    assert!(find("loose (task bag) + dynamic") > 1.0 + 0.7 * (mean - 1.0));
    assert!(find("tight (barrier/iter) + static") < 1.0 + 0.3 * (mean - 1.0));
}
