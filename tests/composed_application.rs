//! The paper's end vision, §II: "one might view the whole composed
//! application as one enormous task graph that spans multiple processes
//! ... each code would use its own runtime system ... The coordination of
//! the individual runtime systems and schedulers would happen on the level
//! of resource arbitration."
//!
//! This test composes three components, each on its own runtime, each
//! running an iterative BSP-style graph, coordinated first by consensus
//! (startup partition) and then by a chained agent policy (fair baseline +
//! library-burst override), with execution tracing verifying where work
//! actually ran.

use numa_coop::agent::consensus::{ConsensusGroup, DemandProfile};
use numa_coop::agent::policies::{Chain, FairShare, LibraryBurst};
use numa_coop::agent::Agent;
use numa_coop::prelude::*;
use numa_coop::topology::presets::paper_model_machine;
use numa_coop::workloads::graphs::{GraphPlacement, IterativeGraph};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn three_component_composition_end_to_end() {
    let machine = paper_model_machine();
    let names = ["solver", "analytics", "io"];
    let runtimes: Vec<Arc<Runtime>> = names
        .iter()
        .map(|n| Arc::new(Runtime::start(RuntimeConfig::new(n, machine.clone())).unwrap()))
        .collect();

    // --- Phase 1: startup partition by consensus (no agent). -------------
    let group = ConsensusGroup::new(machine.clone());
    let participants: Vec<_> = vec![
        group.join(
            "solver",
            DemandProfile::new(AppSpec::numa_local("solver", 4.0), 2.0),
            runtimes[0].control(),
        ),
        group.join(
            "analytics",
            DemandProfile::new(AppSpec::numa_local("analytics", 0.5), 1.0),
            runtimes[1].control(),
        ),
        group.join(
            "io",
            DemandProfile::new(AppSpec::numa_local("io", 1.0), 1.0),
            runtimes[2].control(),
        ),
    ];
    let agreed = std::thread::scope(|s| {
        let handles: Vec<_> = participants
            .iter()
            .map(|p| s.spawn(move || p.agree(Duration::from_secs(5)).unwrap()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    assert!(agreed.windows(2).all(|w| w[0] == w[1]));
    // The machine is fully partitioned, no over-subscription.
    let allocation = &agreed[0];
    for node in machine.node_ids() {
        assert_eq!(allocation.node_total(node), 8);
    }

    // --- Phase 2: run composed work under a chained agent policy. --------
    let mut agent = Agent::new(Box::new(Chain::new(vec![
        Box::new(FairShare::new(machine.clone())),
        Box::new(LibraryBurst::new(0, 2, machine.total_cores())),
    ])));
    for rt in &runtimes {
        agent.manage(Box::new(Arc::clone(rt)));
    }
    let agent = agent.spawn(Duration::from_millis(1)).unwrap();

    runtimes[0].trace_start(50_000);
    // Solver: the big steady component.
    let solver_graph = IterativeGraph::new(6, 12, 20_000);
    // Analytics: a rotating-wavefront component.
    let analytics_graph =
        IterativeGraph::new(4, 8, 10_000).with_placement(GraphPlacement::RoundRobin);
    // IO component bursts occasionally (drives the LibraryBurst override).
    let io_graph = IterativeGraph::new(2, 4, 5_000);

    std::thread::scope(|s| {
        let r0 = &runtimes[0];
        let r1 = &runtimes[1];
        let r2 = &runtimes[2];
        s.spawn(move || solver_graph.run(r0).unwrap());
        s.spawn(move || analytics_graph.run(r1).unwrap());
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            io_graph.run(r2).unwrap()
        });
    });

    let log = agent.stop();
    let trace = runtimes[0].trace_stop();

    // Everything ran to completion.
    assert_eq!(Runtime::stats(&runtimes[0]).tasks_executed, 6 * 12 + 6);
    assert_eq!(Runtime::stats(&runtimes[1]).tasks_executed, 4 * 8 + 4);
    assert_eq!(Runtime::stats(&runtimes[2]).tasks_executed, 2 * 4 + 2);
    // The solver's trace captured its tasks.
    assert_eq!(trace.task_events().count(), (6 * 12 + 6) as usize);
    // The agent issued at least the fair-share round.
    assert!(
        log.decisions.len() >= 3,
        "decisions: {:?}",
        log.decisions.len()
    );
    // No runtime is left over-subscribed after the dust settles.
    std::thread::sleep(Duration::from_millis(20));
    for node in machine.node_ids() {
        let total: usize = runtimes
            .iter()
            .map(|rt| Runtime::stats(rt).per_node[node.0].running_workers)
            .sum();
        assert!(
            total <= 8 + 8,
            "node {node:?} badly over-subscribed: {total}"
        );
    }

    for rt in &runtimes {
        rt.shutdown();
    }
}
