//! End-to-end tenant observatory: two tenants fair-sharing a simulated
//! machine under supervision, with an injected outage killing one of
//! them mid-run. The run must (a) book both tenants' work into the
//! tenant ledger such that the totals reconcile *exactly* with the
//! scheduler's cumulative Prometheus counters, (b) show the survivor's
//! delivered share rising to the whole machine once reclamation kicks
//! in, (c) burn through the victim's min-share error budget (burn rate
//! above 1, budget exhausted, automatic flight-recorder dump on disk),
//! and (d) serve the exact ledger document over the `/tenants` route.

use numa_coop::prelude::*;
use numa_coop::sim::{
    run_supervised, AppOutage, ChaosPlan, NamedAssignment, Scenario, SupervisorConfig,
};
use numa_coop::telemetry::{
    scheduler_locality, serve_with_limit, FlightRecorder, DEFAULT_FLIGHT_CAPACITY,
};
use numa_coop::topology::presets::tiny;
use std::sync::Arc;

#[test]
fn outage_burns_the_victims_budget_and_books_the_survivors_gain() {
    let machine = tiny();
    // Two identical memory-bound tenants, one thread per node each, so
    // the first windows split the delivered work evenly.
    let scenario = Scenario {
        name: "tenant-slo-e2e".into(),
        machine: machine.clone(),
        apps: vec![
            SimApp::numa_local("a", 1.0 / 32.0),
            SimApp::numa_local("b", 1.0 / 32.0),
        ],
        assignments: vec![NamedAssignment {
            name: "even".into(),
            threads: vec![vec![1, 1], vec![1, 1]],
        }],
        duration_s: 0.1,
        effects: EffectModel::ideal(),
        seed: 7,
    };
    // "b" dies at 0.03s and stays dead; reclamation hands its cores to
    // "a". Ten decision ticks at 0.01s.
    let config = SupervisorConfig {
        decision_period_s: 0.01,
        duration_s: 0.1,
        chaos: Some(ChaosPlan {
            outages: vec![AppOutage {
                app: 1,
                down_at_s: 0.03,
                up_at_s: None,
            }],
            reclaim: true,
        }),
        ..SupervisorConfig::default()
    };

    let hub = Arc::new(TelemetryHub::new());
    let ledger = Arc::new(TenantLedger::new());
    assert!(hub.install_tenant_ledger(Arc::clone(&ledger)));
    // Short windows: the budget window (6 ticks at 25% budget) exhausts
    // after two violating ticks, well inside the seven the outage spans.
    let engine = Arc::new(SloEngine::new(vec![
        SloSpec::min_share("b", 0.25).with_windows(vec![2, 6])
    ]));
    assert!(hub.install_slo_engine(Arc::clone(&engine)));

    // Flight recorder with a dump directory: budget exhaustion must
    // leave a post-mortem on disk without anyone asking for one.
    let dump_dir = std::env::temp_dir().join(format!("tenant-slo-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).unwrap();
    let recorder = Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY));
    recorder.set_dump_dir(dump_dir.to_str().unwrap());
    hub.install_flight_recorder(Arc::clone(&recorder));

    run_supervised(&scenario, &config, Arc::clone(&hub)).unwrap();

    // (a) Ledger totals reconcile exactly with the lifetime scheduler
    // counters — the first-sight-books-from-zero rule makes these equal,
    // not merely close.
    let snap = ledger.snapshot();
    assert_eq!(snap.tenants.len(), 2);
    for t in &snap.tenants {
        let (local, remote) = scheduler_locality(hub.registry(), &t.tenant);
        assert_eq!(t.local_pops, local, "{} local pops", t.tenant);
        assert_eq!(t.remote_steals, remote, "{} remote steals", t.tenant);
        assert_eq!(
            t.tasks_total,
            local + remote,
            "{} tasks vs scheduler counters",
            t.tenant
        );
        assert!(t.tasks_total > 0, "{} booked no work", t.tenant);
    }

    // (b) The survivor's share rises from an even split to the whole
    // machine once reclamation kicks in.
    let a = snap.tenant("a").unwrap();
    let first = a.share_history.first().unwrap().1;
    let peak = a
        .share_history
        .iter()
        .map(|(_, s)| *s)
        .fold(0.0f64, f64::max);
    assert!(
        peak > first,
        "survivor share never rose: first {first}, peak {peak}"
    );
    assert_eq!(peak, 1.0, "history: {:?}", a.share_history);
    let b = snap.tenant("b").unwrap();
    assert!(!b.live);
    assert!(b.epochs.last().unwrap().closed_us.is_some());

    // (c) The victim's min-share budget burns out: burn rate above 1,
    // exhaustion latched, and an automatic flight dump written.
    let report = engine.report();
    let s = &report[0];
    assert_eq!(s.spec.tenant, "b");
    assert!(s.burn_rate_peak > 1.0, "status: {s:?}");
    assert!(s.was_exhausted, "status: {s:?}");
    assert!(s.dumps >= 1, "status: {s:?}");
    let dumped: Vec<String> = std::fs::read_dir(&dump_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        dumped.iter().any(|n| n.contains("slo-b")),
        "no slo-b flight dump in {dumped:?}"
    );

    // (d) `/tenants` serves the ledger document, byte for byte — the
    // same contract `coop top --format json` keeps.
    let expected = ledger.to_json();
    let server = serve_with_limit(Arc::clone(&hub), "127.0.0.1:0", Some(1)).unwrap();
    let addr = server.addr();
    let body = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(s, "GET /tenants HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf.split("\r\n\r\n").nth(1).unwrap().to_string()
    };
    server.join();
    assert_eq!(body, expected, "/tenants must serve the exact ledger JSON");

    std::fs::remove_dir_all(&dump_dir).ok();
}
