//! End-to-end observability: the paper's Figure-1 producer-consumer
//! pipeline runs with two telemetry-attached runtimes and an agent, then a
//! memsim reallocation run joins the same hub — and the merged Perfetto
//! trace must carry all three sources on one clock, with the Prometheus
//! exposition carrying the task-latency histogram.

use numa_coop::agent::{policies, Agent};
use numa_coop::prelude::*;
use numa_coop::sim;
use numa_coop::topology::presets::tiny;
use numa_coop::workloads::pipeline::{run_pipeline, PipelineConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn figure1_pipeline_exports_one_merged_timeline() {
    let machine = tiny();
    let hub = Arc::new(TelemetryHub::new());

    // Two runtimes on one hub, per Figure 1.
    let producer = Arc::new(
        Runtime::start(
            RuntimeConfig::new("producer", machine.clone()).with_telemetry(Arc::clone(&hub)),
        )
        .unwrap(),
    );
    let consumer = Arc::new(
        Runtime::start(
            RuntimeConfig::new("consumer", machine.clone()).with_telemetry(Arc::clone(&hub)),
        )
        .unwrap(),
    );

    // FairShare decides on tick 0, so agent-decision instants are
    // guaranteed on the timeline.
    let mut agent = Agent::with_telemetry(
        Box::new(policies::FairShare::new(machine.clone())),
        Arc::clone(&hub),
    );
    agent.manage(Box::new(Arc::clone(&producer)));
    agent.manage(Box::new(Arc::clone(&consumer)));
    let agent_thread = agent.spawn(Duration::from_millis(1)).unwrap();

    let config = PipelineConfig {
        iterations: 6,
        tasks_per_iteration: 4,
        work_per_task: 2_000,
        item_bytes: 1 << 10,
        consumer_work_factor: 1.0,
        sample_interval: Duration::from_micros(200),
    };
    let report = run_pipeline(&producer, &consumer, &config);
    let log = agent_thread.stop();
    producer.shutdown();
    consumer.shutdown();
    assert_eq!(report.consumed, 6);
    assert!(
        !log.decisions.is_empty(),
        "fair share must decide on tick 0"
    );

    // The memory simulator joins the same hub: a dynamic reallocation run
    // emitting per-node bandwidth counter tracks.
    let simulation = sim::Simulation::new(
        sim::SimConfig::new(machine.clone()).with_effects(sim::EffectModel::ideal()),
    )
    .with_telemetry(Arc::clone(&hub));
    let apps = vec![
        sim::SimApp::numa_local("a", 1.0),
        sim::SimApp::numa_local("b", 1.0),
    ];
    let all_a = ThreadAssignment::from_matrix(vec![vec![2, 2], vec![0, 0]]);
    let all_b = ThreadAssignment::from_matrix(vec![vec![0, 0], vec![2, 2]]);
    simulation
        .run_dynamic(&apps, &[(0.0, all_a), (0.05, all_b)], 0.1)
        .unwrap();

    // --- The merged Perfetto/Chrome JSON ---
    let json = hub.to_perfetto_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace must be valid JSON");
    let events = v["traceEvents"].as_array().unwrap();

    // Runtime task events: complete spans, category "task".
    let task_spans: Vec<_> = events
        .iter()
        .filter(|e| e["ph"] == "X" && e["cat"] == "task")
        .collect();
    assert!(!task_spans.is_empty(), "runtime task spans missing");

    // Agent decisions: instant events on the agent's own track.
    let decisions: Vec<_> = events
        .iter()
        .filter(|e| e["ph"] == "i" && e["cat"] == "agent")
        .collect();
    assert!(!decisions.is_empty(), "agent decision instants missing");

    // Memsim bandwidth: counter tracks.
    let counters: Vec<_> = events
        .iter()
        .filter(|e| e["ph"] == "C" && e["cat"] == "bandwidth")
        .collect();
    assert!(!counters.is_empty(), "memsim counter tracks missing");

    // Distinct tracks (Perfetto processes) per source…
    let pid = |e: &&serde_json::Value| e["pid"].as_u64().unwrap();
    assert_ne!(pid(&task_spans[0]), pid(&decisions[0]));
    assert_ne!(pid(&task_spans[0]), pid(&counters[0]));

    // …but one clock: memsim ran after the pipeline, so its samples must
    // carry later timestamps than the first task span — all microseconds
    // since the same hub epoch.
    let min_ts =
        |evs: &[&serde_json::Value]| evs.iter().map(|e| e["ts"].as_u64().unwrap()).min().unwrap();
    assert!(
        min_ts(&counters) >= min_ts(&task_spans),
        "memsim samples must sort after the pipeline start on the shared clock"
    );

    // Track metadata names all three processes.
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
        .map(|e| e["args"]["name"].as_str().unwrap())
        .collect();
    assert!(
        process_names.contains(&"runtime:producer"),
        "{process_names:?}"
    );
    assert!(process_names.contains(&"runtime:consumer"));
    assert!(process_names.contains(&"agent"));
    assert!(process_names.contains(&"memsim"));

    // --- The Prometheus exposition ---
    let prom = hub.registry().to_prometheus();
    assert!(
        prom.contains("coop_task_latency_us_bucket{"),
        "task latency histogram buckets missing:\n{prom}"
    );
    assert!(prom.contains("le=\"+Inf\"}"));
    assert!(prom.contains("coop_agent_decisions_total"));
    assert!(prom.contains("memsim_node_utilization"));
}
