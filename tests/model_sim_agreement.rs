//! Cross-validation: the analytic model (`roofline-numa`) and the
//! execution simulator (`memsim`) are independent implementations of the
//! paper's arbitration semantics; with effects disabled they must agree on
//! *generated* scenarios, not just the paper's hand-picked ones.

use memsim::{EffectModel, SimApp, SimConfig, Simulation};
use numa_coop::workloads::generator::{random_assignment, AppMixGen, MachineGen};
use roofline_numa::solve;

#[test]
fn ideal_simulator_matches_model_on_generated_scenarios() {
    let machine_gen = MachineGen::default();
    let mix_gen = AppMixGen::default();
    for seed in 0..40u64 {
        let machine = machine_gen.generate(seed);
        let specs = mix_gen.generate(&machine, seed);
        let assignment = random_assignment(&machine, specs.len(), seed);

        let model = solve(&machine, &specs, &assignment).unwrap();
        let sim =
            Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::ideal()));
        let sim_apps: Vec<SimApp> = specs
            .iter()
            .map(|s| SimApp {
                spec: s.clone(),
                activity: memsim::ActivityPattern::AlwaysOn,
                sync_overhead: 0.0,
            })
            .collect();
        let run = sim.run(&sim_apps, &assignment, 0.01).unwrap();

        let m = model.total_gflops();
        let s = run.total_gflops();
        assert!(
            (m - s).abs() <= 1e-6 * (1.0 + m.abs()),
            "seed {seed}: model {m} vs sim {s} on {}",
            machine.name()
        );
        for (i, app) in model.apps.iter().enumerate() {
            assert!(
                (app.gflops - run.app_gflops(i) * 1.0).abs() <= 1e-6 * (1.0 + app.gflops.abs()),
                "seed {seed} app {i}: model {} vs sim {}",
                app.gflops,
                run.app_gflops(i)
            );
        }
    }
}

#[test]
fn effects_are_pure_losses_on_generated_scenarios() {
    let machine_gen = MachineGen::default();
    let mix_gen = AppMixGen::default();
    for seed in 100..120u64 {
        let machine = machine_gen.generate(seed);
        let specs = mix_gen.generate(&machine, seed);
        let assignment = random_assignment(&machine, specs.len(), seed);
        let sim_apps: Vec<SimApp> = specs
            .iter()
            .map(|s| SimApp {
                spec: s.clone(),
                activity: memsim::ActivityPattern::AlwaysOn,
                sync_overhead: 0.0,
            })
            .collect();

        let ideal =
            Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::ideal()))
                .run(&sim_apps, &assignment, 0.01)
                .unwrap();

        let mut effects = EffectModel::skylake_like();
        effects.jitter = 0.0; // deterministic comparison
        let lossy = Simulation::new(SimConfig::new(machine.clone()).with_effects(effects))
            .run(&sim_apps, &assignment, 0.01)
            .unwrap();

        assert!(
            lossy.total_gflops() <= ideal.total_gflops() * (1.0 + 1e-9),
            "seed {seed}: effects gained throughput ({} > {})",
            lossy.total_gflops(),
            ideal.total_gflops()
        );
    }
}

#[test]
fn model_conservation_on_generated_scenarios() {
    let machine_gen = MachineGen::default();
    let mix_gen = AppMixGen::default();
    for seed in 200..240u64 {
        let machine = machine_gen.generate(seed);
        let specs = mix_gen.generate(&machine, seed);
        let assignment = random_assignment(&machine, specs.len(), seed);
        let report = solve(&machine, &specs, &assignment).unwrap();
        for n in &report.nodes {
            assert!(
                n.served_remote_gbs + n.served_local_gbs <= n.capacity_gbs * (1.0 + 1e-9),
                "seed {seed}: node {:?} over capacity",
                n.node
            );
        }
        for g in &report.groups {
            assert!(g.granted_gbs <= g.demand_gbs * (1.0 + 1e-9) + 1e-9);
            assert!(g.gflops <= machine.core_peak_gflops() * (1.0 + 1e-9));
        }
    }
}
