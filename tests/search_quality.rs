//! Search-quality integration: on generated machines and mixes, the
//! model-guided searches must never lose to the named strategies they are
//! meant to supersede, and the exhaustive search bounds them all.

use coop_alloc::{score, search, strategies, Objective};
use numa_coop::workloads::generator::{AppMixGen, MachineGen};

#[test]
fn searches_are_competitive_with_named_strategies() {
    let machine_gen = MachineGen {
        nodes: (2, 3),
        cores: (2, 8),
        ..Default::default()
    };
    let mix_gen = AppMixGen {
        apps: (2, 4),
        ..Default::default()
    };
    for seed in 0..25u64 {
        let machine = machine_gen.generate(seed);
        let apps = mix_gen.generate(&machine, seed);
        let greedy = search::GreedySearch::new()
            .run(&machine, &apps, &Objective::TotalGflops)
            .unwrap();
        let hc = search::HillClimb::new()
            .with_iterations(600)
            .with_seed(seed)
            .run(&machine, &apps, &Objective::TotalGflops)
            .unwrap();

        for (label, strat) in [
            ("fair", strategies::fair_share(&machine, apps.len())),
            (
                "prop",
                strategies::proportional(&machine, &vec![1.0; apps.len()]),
            ),
        ] {
            let s = score(&machine, &apps, &strat.unwrap(), &Objective::TotalGflops).unwrap();
            // Greedy is myopic (it stops at the first non-improving
            // addition, which can be a local optimum), so it may fall a
            // little short of a named strategy on some mixes — but never
            // badly.
            assert!(
                greedy.score >= 0.9 * s,
                "seed {seed}: greedy {} far below {label} {s}",
                greedy.score
            );
            // Hill climbing starts FROM fair share, so it can never lose
            // to it; and it is monotone, so it bounds both.
            assert!(
                hc.score >= s - 1e-6 || label != "fair",
                "seed {seed}: hill climb {} < {label} {s}",
                hc.score
            );
        }
    }
}

#[test]
fn exhaustive_uniform_bounds_uniform_strategies() {
    let machine_gen = MachineGen {
        nodes: (2, 3),
        cores: (2, 6),
        ..Default::default()
    };
    let mix_gen = AppMixGen {
        apps: (2, 3),
        numa_bad_prob: 0.0, // uniform space suits NUMA-local apps
        ..Default::default()
    };
    for seed in 50..70u64 {
        let machine = machine_gen.generate(seed);
        let apps = mix_gen.generate(&machine, seed);
        let best = search::ExhaustiveSearch::new()
            .run(&machine, &apps, &Objective::TotalGflops)
            .unwrap();
        // Any uniform allocation is bounded by the exhaustive optimum.
        let cores = machine.node(numa_topology::NodeId(0)).num_cores();
        let k = cores / apps.len();
        if k > 0 {
            let even = strategies::uniform_per_node(&machine, &vec![k; apps.len()]).unwrap();
            let s = score(&machine, &apps, &even, &Objective::TotalGflops).unwrap();
            assert!(best.score >= s - 1e-6, "seed {seed}");
        }
    }
}

#[test]
fn hill_climb_beats_its_seed_start_on_numa_bad_mixes() {
    let machine_gen = MachineGen {
        nodes: (3, 4),
        cores: (4, 8),
        ..Default::default()
    };
    let mix_gen = AppMixGen {
        apps: (3, 4),
        numa_bad_prob: 0.6, // placement-sensitive mixes
        ..Default::default()
    };
    for seed in 80..95u64 {
        let machine = machine_gen.generate(seed);
        let apps = mix_gen.generate(&machine, seed);
        let start = strategies::fair_share(&machine, apps.len()).unwrap();
        let s0 = score(&machine, &apps, &start, &Objective::TotalGflops).unwrap();
        let hc = search::HillClimb::new()
            .with_iterations(800)
            .with_seed(seed)
            .run(&machine, &apps, &Objective::TotalGflops)
            .unwrap();
        assert!(
            hc.score >= s0 - 1e-9,
            "seed {seed}: hill climb {} below start {s0}",
            hc.score
        );
        assert!(hc.assignment.validate(&machine).is_ok());
    }
}

#[test]
fn max_min_objective_never_starves_anyone_at_optimum() {
    let machine_gen = MachineGen {
        nodes: (2, 2),
        cores: (2, 4),
        ..Default::default()
    };
    let mix_gen = AppMixGen {
        apps: (2, 3),
        numa_bad_prob: 0.0,
        ..Default::default()
    };
    for seed in 120..135u64 {
        let machine = machine_gen.generate(seed);
        let apps = mix_gen.generate(&machine, seed);
        let best = search::ExhaustiveSearch::new()
            .full_space()
            .with_limit(5_000_000)
            .run(&machine, &apps, &Objective::MinAppGflops)
            .unwrap();
        // A max-min optimum with available capacity never leaves an app at
        // zero (giving it one thread strictly improves the min).
        for i in 0..apps.len() {
            assert!(
                best.assignment.app_total(i) > 0,
                "seed {seed}: app {i} starved under max-min"
            );
        }
    }
}
