//! Quickstart: model a NUMA machine, describe cooperating applications,
//! score allocation strategies with the paper's model, and let the search
//! find a better one.
//!
//! Run with: `cargo run --example quickstart`

use numa_coop::alloc::search::{ExhaustiveSearch, GreedySearch};
use numa_coop::prelude::*;
use numa_coop::topology::presets::paper_model_machine;

fn main() {
    // The machine from the paper's worked examples: 4 NUMA nodes x 8
    // cores, 10 GFLOPS per core, 32 GB/s of memory bandwidth per node.
    let machine = paper_model_machine();
    println!(
        "machine: {} ({} nodes x {} cores, {:.0} GFLOPS peak)\n",
        machine.name(),
        machine.num_nodes(),
        machine.node(NodeId(0)).num_cores(),
        machine.peak_machine_gflops()
    );

    // Four cooperating applications: three memory-bound (AI = 0.5 FLOP per
    // byte), one compute-bound (AI = 10).
    let apps = vec![
        AppSpec::numa_local("mem1", 0.5),
        AppSpec::numa_local("mem2", 0.5),
        AppSpec::numa_local("mem3", 0.5),
        AppSpec::numa_local("comp", 10.0),
    ];

    // Score the strategies the paper discusses.
    println!("{:<28} {:>12}", "allocation", "GFLOPS");
    for (label, assignment) in [
        (
            "uneven (1,1,1,5) [Table I]",
            ThreadAssignment::uniform_per_node(&machine, &[1, 1, 1, 5]),
        ),
        (
            "even (2,2,2,2) [Table II]",
            ThreadAssignment::uniform_per_node(&machine, &[2, 2, 2, 2]),
        ),
        (
            "one node per app [Fig 2c]",
            ThreadAssignment::node_per_app(&machine, 4).unwrap(),
        ),
        ("fair share", strategies::fair_share(&machine, 4).unwrap()),
    ] {
        let report = solve(&machine, &apps, &assignment).unwrap();
        println!("{label:<28} {:>12.1}", report.total_gflops());
    }

    // Ask the searches for the best allocation. Unconstrained, the
    // machine-throughput optimum starves the memory-bound apps entirely;
    // with a keep-everyone-alive floor it recovers the paper's (1,1,1,5).
    let best = ExhaustiveSearch::new()
        .run(&machine, &apps, &Objective::TotalGflops)
        .unwrap();
    println!(
        "\nexhaustive optimum (unconstrained): {:.1} GFLOPS in {} evaluations",
        best.score, best.evaluations
    );

    let mut oracle = |a: &ThreadAssignment| -> numa_coop::alloc::Result<f64> {
        let starved = (0..apps.len()).filter(|&i| a.app_total(i) == 0).count();
        if starved > 0 {
            return Ok(-(starved as f64) * 1e12);
        }
        score(&machine, &apps, a, &Objective::TotalGflops)
    };
    let fair_best = GreedySearch::new()
        .run_with_oracle(&machine, apps.len(), &mut oracle)
        .unwrap();
    println!(
        "greedy optimum (every app kept alive): {:.1} GFLOPS",
        fair_best.score
    );
    print!("  per-app totals:");
    for (i, app) in apps.iter().enumerate() {
        print!(" {}={}", app.name, fair_best.assignment.app_total(i));
    }
    println!();

    // Per-application breakdown of the chosen allocation.
    let report = solve(&machine, &apps, &fair_best.assignment).unwrap();
    println!(
        "\n{:<8} {:>8} {:>12} {:>12}",
        "app", "threads", "GB/s", "GFLOPS"
    );
    for a in &report.apps {
        println!(
            "{:<8} {:>8} {:>12.1} {:>12.1}",
            a.name, a.threads, a.bandwidth_gbs, a.gflops
        );
    }
}
