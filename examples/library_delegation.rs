//! The §II tight-integration scenario with live runtimes: a "main"
//! application occasionally delegates a burst of work to a "library"
//! application; the agent's LibraryBurst policy shifts cores to the
//! library exactly while it has pending tasks.
//!
//! Run with: `cargo run --release --example library_delegation`

use numa_coop::agent::policies::LibraryBurst;
use numa_coop::agent::Agent;
use numa_coop::prelude::*;
use numa_coop::topology::presets::tiny;
use numa_coop::workloads::kernels::spin_work;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BURSTS: usize = 5;
const LIBRARY_TASKS_PER_BURST: usize = 12;
const MAIN_TASK_WORK: usize = 40_000;
const LIB_TASK_WORK: usize = 120_000;

fn main() {
    let machine = tiny();
    let main_rt = Arc::new(Runtime::start(RuntimeConfig::new("main", machine.clone())).unwrap());
    let library = Arc::new(Runtime::start(RuntimeConfig::new("library", machine.clone())).unwrap());

    // The agent watches the library's pending-task count and shifts cores.
    let mut agent = Agent::new(Box::new(LibraryBurst::new(0, 1, machine.total_cores())));
    agent.manage(Box::new(Arc::clone(&main_rt)));
    agent.manage(Box::new(Arc::clone(&library)));
    let agent = agent
        .spawn(Duration::from_micros(300))
        .expect("agent thread starts");

    // Main application: a steady stream of small tasks.
    let main_done = Arc::new(AtomicU64::new(0));
    let stop_feeding = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let feeder = {
        let main_rt = Arc::clone(&main_rt);
        let main_done = Arc::clone(&main_done);
        let stop = Arc::clone(&stop_feeding);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let done = Arc::clone(&main_done);
                if main_rt
                    .task(&format!("main{i}"))
                    .body(move |_| {
                        spin_work(MAIN_TASK_WORK);
                        done.fetch_add(1, Ordering::Relaxed);
                    })
                    .spawn()
                    .is_err()
                {
                    break;
                }
                i += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    // Main thread acts as the caller: periodically delegates a burst of
    // heavy jobs to the library and waits for the results.
    let start = Instant::now();
    let mut burst_latencies = Vec::new();
    for burst in 0..BURSTS {
        std::thread::sleep(Duration::from_millis(15)); // main-only phase
        let t0 = Instant::now();
        let latch = library.new_latch_event(LIBRARY_TASKS_PER_BURST as u64);
        for t in 0..LIBRARY_TASKS_PER_BURST {
            let latch = latch.clone();
            library
                .task(&format!("lib{burst}-{t}"))
                .body(move |ctx| {
                    spin_work(LIB_TASK_WORK);
                    ctx.satisfy(&latch);
                })
                .spawn()
                .unwrap();
        }
        while !latch.is_satisfied() {
            std::thread::sleep(Duration::from_micros(100));
        }
        burst_latencies.push(t0.elapsed());
    }
    stop_feeding.store(true, Ordering::Release);
    feeder.join().unwrap();
    let _ = main_rt.wait_quiescent_timeout(Duration::from_secs(10));
    let elapsed = start.elapsed();
    let log = agent.stop();

    println!(
        "ran {BURSTS} library bursts ({LIBRARY_TASKS_PER_BURST} heavy tasks each) in {:.0} ms",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "main application completed {} small tasks meanwhile",
        main_done.load(Ordering::Relaxed)
    );
    println!(
        "burst latencies: {:?}",
        burst_latencies
            .iter()
            .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3))
            .collect::<Vec<_>>()
    );
    println!("agent shifted cores {} times:", log.decisions.len());
    for d in log.decisions.iter().take(8) {
        println!("  tick {:>3} -> {:<8} {:?}", d.tick, d.runtime, d.command);
    }
    if log.decisions.len() > 8 {
        println!("  ... ({} more)", log.decisions.len() - 8);
    }

    main_rt.shutdown();
    library.shutdown();
}
