//! The paper's Figure 1 architecture, live: two task runtimes execute a
//! producer-consumer pipeline while an agent polls their counters and
//! throttles the producer so it stays only a few iterations ahead.
//!
//! Run with: `cargo run --release --example producer_consumer`

use numa_coop::agent::policies::ProducerConsumerThrottle;
use numa_coop::agent::Agent;
use numa_coop::prelude::*;
use numa_coop::topology::presets::dual_socket;
use numa_coop::workloads::pipeline::{run_pipeline, PipelineConfig};
use std::sync::Arc;
use std::time::Duration;

fn run_variant(machine: &Machine, with_agent: bool) {
    let producer =
        Arc::new(Runtime::start(RuntimeConfig::new("producer", machine.clone())).unwrap());
    let consumer =
        Arc::new(Runtime::start(RuntimeConfig::new("consumer", machine.clone())).unwrap());

    // The consumer's tasks are 3x heavier, so an unthrottled producer
    // races ahead and intermediate items pile up.
    let config = PipelineConfig {
        iterations: 80,
        tasks_per_iteration: 8,
        work_per_task: 120_000,
        item_bytes: 1 << 18, // 256 KiB per item
        consumer_work_factor: 3.0,
        sample_interval: Duration::from_micros(300),
    };

    let agent = with_agent.then(|| {
        let mut agent = Agent::new(Box::new(ProducerConsumerThrottle::new(
            0,
            1,
            1, // grow below this lead
            2, // shrink above this lead
            1,
            machine.total_cores(),
        )));
        agent.manage(Box::new(Arc::clone(&producer)));
        agent.manage(Box::new(Arc::clone(&consumer)));
        agent
            .spawn(Duration::from_micros(500))
            .expect("agent thread starts")
    });

    let report = run_pipeline(&producer, &consumer, &config);
    let decisions = agent.map(|h| h.stop().decisions.len()).unwrap_or(0);

    println!(
        "{:<12}  {:>4} items  {:>7.1} items/s  max lead {:>3}  mean lead {:>6.2}  peak intermediate {:>6} KiB  ({} agent commands)",
        if with_agent { "with agent" } else { "uncontrolled" },
        report.consumed,
        report.throughput,
        report.max_lead,
        report.mean_lead,
        report.peak_intermediate_bytes / 1024,
        decisions,
    );

    producer.shutdown();
    consumer.shutdown();
}

fn main() {
    let machine = dual_socket();
    println!(
        "producer-consumer pipeline on {} ({} virtual cores); consumer 3x slower per item\n",
        machine.name(),
        machine.total_cores()
    );
    run_variant(&machine, false);
    run_variant(&machine, true);
    println!(
        "\nThe agent trades nothing in throughput but keeps the producer only a couple\n\
         of iterations ahead — the paper's \"clear benefit on storage thanks to the\n\
         reduced size of intermediate data\"."
    );
}
