//! §V of the paper: how on-node speedups (from dynamic core allocation)
//! translate to overall speedup of a distributed application, depending on
//! synchronization tightness and work distribution.
//!
//! Run with: `cargo run --example distributed_translation`

use numa_coop::dist::{simulate, Cluster, Distribution, Synchronization, Workload};

fn main() {
    // 16 compute nodes; the on-node coordination layer achieved different
    // local speedups on different nodes (mixes differ per node).
    let speedups: Vec<f64> = (0..16)
        .map(|i| match i % 4 {
            0 => 1.4,
            1 => 1.2,
            _ => 1.0,
        })
        .collect();
    let cluster = Cluster::uniform(16, 1.0).with_speedups(&speedups);
    println!(
        "16-rank cluster, local speedups {:?}...\nmean local speedup: {:.3}\n",
        &speedups[..4],
        cluster.mean_speedup()
    );

    println!(
        "{:<40} {:>16} {:>14}",
        "configuration", "overall speedup", "translated"
    );
    for (sync, sl) in [
        (Synchronization::Tight, "tight (barrier each iteration)"),
        (Synchronization::Loose, "loose (independent task bag)"),
    ] {
        for (dist, dl) in [
            (Distribution::Static, "static partition"),
            (Distribution::Dynamic, "dynamic work pool"),
        ] {
            let w = Workload::new(6400, 1.0)
                .iterations(20)
                .sync(sync)
                .distribution(dist)
                .unit_variability(0.2);
            let r = simulate(&cluster, &w, 42);
            println!(
                "{:<40} {:>16.3} {:>13.0}%",
                format!("{sl} + {dl}"),
                r.speedup_vs_uniform,
                r.translation_efficiency * 100.0
            );
        }
    }
    println!(
        "\nAs §V argues: a barrier per iteration wastes per-node gains (the slowest\n\
         node dominates); loose synchronization with dynamic distribution translates\n\
         most of the local speedup into end-to-end speedup."
    );
}
