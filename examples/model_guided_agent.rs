//! Model-guided repartitioning: the agent knows each application's
//! arithmetic intensity and data placement, consults the roofline model,
//! and pushes per-NUMA-node thread counts (the paper's blocking option 3)
//! to four live runtimes.
//!
//! Run with: `cargo run --example model_guided_agent`

use numa_coop::agent::policies::ModelGuided;
use numa_coop::agent::Agent;
use numa_coop::prelude::*;
use numa_coop::topology::presets::paper_model_machine;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let machine = paper_model_machine();

    // Four live runtimes, each believing it owns the machine (the default
    // uncooperative behaviour the paper starts from: 4 x 32 = 128 worker
    // threads for 32 cores).
    let names = ["mem1", "mem2", "mem3", "comp"];
    let runtimes: Vec<Arc<Runtime>> = names
        .iter()
        .map(|n| Arc::new(Runtime::start(RuntimeConfig::new(n, machine.clone())).unwrap()))
        .collect();
    let total_running: usize = runtimes
        .iter()
        .map(|r| Runtime::stats(r).running_workers)
        .sum();
    println!(
        "before coordination: {total_running} worker threads for {} cores\n",
        machine.total_cores()
    );

    // The agent's model knowledge: AI per application.
    let specs = vec![
        AppSpec::numa_local("mem1", 0.5),
        AppSpec::numa_local("mem2", 0.5),
        AppSpec::numa_local("mem3", 0.5),
        AppSpec::numa_local("comp", 10.0),
    ];
    let mut agent = Agent::new(Box::new(ModelGuided::new(machine.clone(), specs)));
    for rt in &runtimes {
        agent.manage(Box::new(Arc::clone(rt)));
    }
    let log = agent.run_for(Duration::from_millis(50), Duration::from_millis(5));
    println!(
        "agent issued {} commands over {} ticks:",
        log.decisions.len(),
        log.ticks
    );
    for d in &log.decisions {
        println!("  tick {} -> {:<6} {:?}", d.tick, d.runtime, d.command);
    }

    // Wait for convergence and report the census.
    println!(
        "\n{:<8} {:>18} {:>14}",
        "runtime", "running workers", "per node"
    );
    let mut total = 0;
    for rt in &runtimes {
        rt.control()
            .wait_converged(Duration::from_secs(5), |_, _| true);
        // Give the per-node targets a moment to settle.
        std::thread::sleep(Duration::from_millis(20));
        let stats = Runtime::stats(rt);
        let per: Vec<usize> = stats.per_node.iter().map(|n| n.running_workers).collect();
        println!(
            "{:<8} {:>18} {:>14?}",
            stats.name, stats.running_workers, per
        );
        total += stats.running_workers;
    }
    println!(
        "\nafter coordination: {total} worker threads for {} cores (no over-subscription)",
        machine.total_cores()
    );

    for rt in &runtimes {
        rt.shutdown();
    }
}
