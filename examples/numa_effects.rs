//! NUMA effects end to end: why core allocation must be NUMA- and
//! placement-aware (§III of the paper).
//!
//! Shows, on the Figure 3 machine: (1) with NUMA-perfect applications the
//! even allocation beats whole-node partitioning; (2) adding one NUMA-bad
//! application *reverses* that ranking; (3) migrating the bad
//! application's data (which the runtime can do, because data blocks are
//! runtime-managed) recovers the best configuration; and (4) the
//! execution simulator agrees with the analytic model about all of it.
//!
//! Run with: `cargo run --example numa_effects`

use numa_coop::alloc::strategies;
use numa_coop::prelude::*;
use numa_coop::topology::presets::paper_crossnode_machine;

fn show(label: &str, machine: &Machine, apps: &[AppSpec], a: &ThreadAssignment) -> f64 {
    let model = solve(machine, apps, a).unwrap().total_gflops();
    // Cross-check with the execution simulator (ideal effects = the model
    // semantics, executed step by step).
    let sim = Simulation::new(SimConfig::new(machine.clone()).with_effects(EffectModel::ideal()));
    let sim_apps: Vec<SimApp> = apps
        .iter()
        .map(|s| SimApp {
            spec: s.clone(),
            activity: numa_coop::sim::ActivityPattern::AlwaysOn,
            sync_overhead: 0.0,
        })
        .collect();
    let simulated = sim.run(&sim_apps, a, 0.02).unwrap().total_gflops();
    println!("{label:<46} model {model:>7.2}   simulated {simulated:>7.2}");
    model
}

fn main() {
    let machine = paper_crossnode_machine();
    println!(
        "machine: {} (60 GB/s/node, 10 GB/s links)\n",
        machine.name()
    );

    let even = ThreadAssignment::uniform_per_node(&machine, &[2, 2, 2, 2]);
    let whole =
        strategies::node_per_app_mapped(&machine, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
            .unwrap();

    // 1) All NUMA-perfect: even wins (like Figure 2 on this machine).
    let perfect: Vec<AppSpec> = (0..3)
        .map(|i| AppSpec::numa_local(&format!("perf{i}"), 0.5))
        .chain([AppSpec::numa_local("fourth", 1.0)])
        .collect();
    println!("-- all applications NUMA-perfect --");
    let e1 = show("even (2,2,2,2)", &machine, &perfect, &even);
    let w1 = show("whole node per app", &machine, &perfect, &whole);
    assert!(e1 >= w1);

    // 2) Fourth app is NUMA-bad with its data on node 3: ranking flips.
    let with_bad: Vec<AppSpec> = (0..3)
        .map(|i| AppSpec::numa_local(&format!("perf{i}"), 0.5))
        .chain([AppSpec::numa_bad("bad", 1.0, NodeId(3))])
        .collect();
    println!("\n-- fourth application NUMA-bad (all data on node 3) --");
    let e2 = show("even (2,2,2,2)", &machine, &with_bad, &even);
    let w2 = show(
        "whole node per app (bad on node 3)",
        &machine,
        &with_bad,
        &whole,
    );
    assert!(
        w2 > e2,
        "Figure 3: whole-node wins once a NUMA-bad app exists"
    );

    // 3) Put the bad app's threads on the WRONG node: placement matters.
    let wrong =
        strategies::node_per_app_mapped(&machine, &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)])
            .unwrap();
    show(
        "whole node per app (bad on node 0!)",
        &machine,
        &with_bad,
        &wrong,
    );

    // 4) The runtime-managed fix: migrate the data to where the threads
    // are. (In OCR the runtime owns the data blocks, so it CAN do this —
    // the capability the paper contrasts against TBB.)
    let migrated: Vec<AppSpec> = (0..3)
        .map(|i| AppSpec::numa_local(&format!("perf{i}"), 0.5))
        .chain([AppSpec::numa_bad("bad", 1.0, NodeId(0))])
        .collect();
    println!("\n-- after migrating the bad app's data to node 0 (its threads' node) --");
    let m = show(
        "whole node per app (data follows threads)",
        &machine,
        &migrated,
        &wrong,
    );
    assert!((m - w2).abs() < 1e-9, "migration recovers the good case");

    // The data-block migration primitive itself:
    let rt = Runtime::start(RuntimeConfig::new("demo", machine.clone())).unwrap();
    let db = rt.create_datablock(1 << 20, NodeId(3));
    db.write(|buf| buf[0] = 42);
    db.migrate(NodeId(0));
    assert_eq!(db.read(|buf| buf[0]), 42);
    println!(
        "\nDataBlock migrated {:?} -> {:?} ({} migration recorded), contents intact.",
        NodeId(3),
        db.node(),
        db.migration_count()
    );
    rt.shutdown();
}
