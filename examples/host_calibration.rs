//! The paper's §III.B calibration workflow on *your* machine: run the
//! synthetic kernels, measure achieved GFLOPS and bandwidth, and estimate
//! roofline parameters for the host — the same "estimate the parameters of
//! the machine from the measured performance" procedure the paper used on
//! its Xeon server.
//!
//! Run with: `cargo run --release --example host_calibration`
//! (a debug build will under-report the host by 10-100x)

use numa_coop::workloads::kernels::{fma_kernel, mixed_kernel, pointer_chase, stream_triad};

fn main() {
    println!("host micro-kernel calibration (single thread)\n");

    // Memory-bound: STREAM-style triad over a cache-busting working set.
    let n = 1 << 24; // 16M doubles x 3 arrays = 384 MiB
    let triad = stream_triad(n, 3);
    println!(
        "stream triad   : {:>8.2} GB/s   {:>7.3} GFLOPS   (AI = {:.4} FLOP/B)",
        triad.gbs(),
        triad.gflops(),
        triad.ai()
    );

    // Compute-bound: register-resident FMA chain.
    let fma = fma_kernel(1 << 27);
    println!(
        "fma kernel     : {:>8.2} GB/s   {:>7.3} GFLOPS   (compute-bound)",
        fma.gbs(),
        fma.gflops()
    );

    // Latency-bound: dependent loads.
    let (chase, _) = pointer_chase(1 << 22, 1 << 22, 7);
    let ns_per_load = chase.seconds / (1 << 22) as f64 * 1e9;
    println!("pointer chase  : {ns_per_load:>8.1} ns per dependent load");

    // Dial arithmetic intensity and watch the roofline knee.
    println!("\nmixed kernel sweep (memory traffic fixed, extra FLOPs added):");
    println!("{:>10} {:>10} {:>10}", "AI", "GB/s", "GFLOPS");
    for extra in [0usize, 2, 4, 8, 16, 32, 64] {
        let r = mixed_kernel(1 << 22, 2, extra);
        println!("{:>10.3} {:>10.2} {:>10.3}", r.ai(), r.gbs(), r.gflops());
    }

    // Roofline estimates for this host (single-thread view).
    let bw = triad.gbs();
    let peak = fma.gflops();
    println!(
        "\nestimated single-thread roofline: peak {:.2} GFLOPS, memory {:.2} GB/s",
        peak, bw
    );
    println!(
        "roofline knee at AI = {:.3} FLOP/byte — codes below this are memory-bound\n\
         on this host, exactly the regime where the paper's NUMA-aware allocation\n\
         matters.",
        peak / bw
    );
}
