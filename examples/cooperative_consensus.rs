//! Agent-less coordination: the runtimes themselves agree on a core
//! allocation (§II: "it would also be possible to have the different
//! runtime systems cooperatively come to an agreement").
//!
//! Three runtimes join a consensus group, publish their demand profiles
//! (arithmetic intensity + data placement + weight), and each applies its
//! own row of the deterministically-resolved allocation — no central
//! agent process anywhere.
//!
//! Run with: `cargo run --example cooperative_consensus`

use numa_coop::agent::consensus::{ConsensusGroup, DemandProfile};
use numa_coop::prelude::*;
use numa_coop::topology::presets::paper_model_machine;
use std::time::Duration;

fn main() {
    let machine = paper_model_machine();
    let names = ["streamer", "solver", "pinned"];
    let runtimes: Vec<Runtime> = names
        .iter()
        .map(|n| Runtime::start(RuntimeConfig::new(n, machine.clone())).unwrap())
        .collect();

    let group = ConsensusGroup::new(machine.clone());
    let participants = [
        group.join(
            "streamer",
            DemandProfile::new(AppSpec::numa_local("streamer", 0.25), 1.0),
            runtimes[0].control(),
        ),
        group.join(
            "solver",
            DemandProfile::new(AppSpec::numa_local("solver", 8.0), 2.0),
            runtimes[1].control(),
        ),
        group.join(
            "pinned",
            // A NUMA-bad component whose data lives on node 1.
            DemandProfile::new(AppSpec::numa_bad("pinned", 1.0, NodeId(1)), 1.0),
            runtimes[2].control(),
        ),
    ];

    // Every participant calls agree() on its own thread — the barrier
    // closes the round, everyone computes the same allocation, everyone
    // applies its own row.
    let agreed = std::thread::scope(|s| {
        let handles: Vec<_> = participants
            .iter()
            .map(|p| s.spawn(move || p.agree(Duration::from_secs(5)).unwrap()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    assert!(agreed.windows(2).all(|w| w[0] == w[1]));
    let allocation = &agreed[0];

    println!("agreed allocation (threads per NUMA node):");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "runtime", "n0", "n1", "n2", "n3", "total"
    );
    for (i, name) in names.iter().enumerate() {
        let per: Vec<usize> = machine.node_ids().map(|n| allocation.get(i, n)).collect();
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>6} {:>8}",
            name,
            per[0],
            per[1],
            per[2],
            per[3],
            allocation.app_total(i)
        );
    }

    for (i, rt) in runtimes.iter().enumerate() {
        rt.control()
            .wait_converged(Duration::from_secs(5), |run, _| {
                run == agreed[0].app_total(i)
            });
    }
    let total: usize = runtimes.iter().map(|r| r.stats().running_workers).sum();
    println!(
        "\nrunning workers across all runtimes: {total} (machine has {} cores)",
        machine.total_cores()
    );
    println!("note: the 'pinned' component got threads only on node 1, where its data is.");

    for rt in &runtimes {
        rt.shutdown();
    }
}
