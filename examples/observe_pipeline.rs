//! Observability walkthrough: run the Figure-1 producer-consumer pipeline
//! with a shared telemetry hub — runtimes, agent, and the memory simulator
//! all reporting onto one clock — then export a Perfetto/Chrome trace and
//! a Prometheus metrics snapshot.
//!
//! Run with: `cargo run --release --example observe_pipeline`
//!
//! Open the written trace at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) to see task spans per worker lane, agent decisions
//! as instant markers, and per-node bandwidth counter tracks side by side.

use numa_coop::agent::policies::{Chain, FairShare, ProducerConsumerThrottle};
use numa_coop::agent::Agent;
use numa_coop::prelude::*;
use numa_coop::sim;
use numa_coop::topology::presets::dual_socket;
use numa_coop::workloads::pipeline::{run_pipeline, PipelineConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let machine = dual_socket();
    let hub = Arc::new(TelemetryHub::new());

    // 1. Two runtimes share the hub: every task lands on the timeline and
    //    in the latency/queue-wait histograms.
    let producer = Arc::new(
        Runtime::start(
            RuntimeConfig::new("producer", machine.clone()).with_telemetry(Arc::clone(&hub)),
        )
        .unwrap(),
    );
    let consumer = Arc::new(
        Runtime::start(
            RuntimeConfig::new("consumer", machine.clone()).with_telemetry(Arc::clone(&hub)),
        )
        .unwrap(),
    );

    // 2. The agent writes its decisions to the same hub: fair share first,
    //    then the producer-consumer throttle of the SBAC-PAD'18 experiment.
    let policy = Chain::new(vec![
        Box::new(FairShare::new(machine.clone())),
        Box::new(ProducerConsumerThrottle::new(
            0,
            1,
            1,
            2,
            1,
            machine.total_cores(),
        )),
    ]);
    let mut agent = Agent::with_telemetry(Box::new(policy), Arc::clone(&hub));
    agent.manage(Box::new(Arc::clone(&producer)));
    agent.manage(Box::new(Arc::clone(&consumer)));
    let agent_thread = agent
        .spawn(Duration::from_micros(500))
        .expect("agent thread starts");

    let config = PipelineConfig {
        iterations: 40,
        tasks_per_iteration: 8,
        work_per_task: 60_000,
        item_bytes: 1 << 16,
        consumer_work_factor: 2.0,
        sample_interval: Duration::from_micros(300),
    };
    let report = run_pipeline(&producer, &consumer, &config);
    let log = agent_thread.stop();
    producer.shutdown();
    consumer.shutdown();

    // 3. The memory simulator joins the hub too: a reallocation run whose
    //    per-node bandwidth shows up as counter tracks.
    let simulation = sim::Simulation::new(
        sim::SimConfig::new(machine.clone()).with_effects(sim::EffectModel::ideal()),
    )
    .with_telemetry(Arc::clone(&hub));
    let apps = vec![
        sim::SimApp::numa_local("producer", 0.5),
        sim::SimApp::numa_local("consumer", 0.5),
    ];
    let full: Vec<usize> = machine.nodes().map(|n| n.num_cores()).collect();
    let zero = vec![0usize; machine.num_nodes()];
    let all_producer = ThreadAssignment::from_matrix(vec![full.clone(), zero.clone()]);
    let all_consumer = ThreadAssignment::from_matrix(vec![zero, full]);
    let sim_result = simulation
        .run_dynamic(&apps, &[(0.0, all_producer), (0.05, all_consumer)], 0.1)
        .unwrap();

    // 4. Export.
    let dir = std::env::temp_dir();
    let trace_path = dir.join("observe_pipeline.trace.json");
    let prom_path = dir.join("observe_pipeline.prom");
    std::fs::write(&trace_path, hub.to_perfetto_json()).unwrap();
    std::fs::write(&prom_path, hub.registry().to_prometheus()).unwrap();

    println!(
        "pipeline: {} items, {:.1} items/s, max lead {}",
        report.consumed, report.throughput, report.max_lead
    );
    println!(
        "agent:    {} ticks, {} decisions",
        log.ticks,
        log.decisions.len()
    );
    for (n, u) in sim_result.node_utilization.iter().enumerate() {
        println!(
            "memsim:   node {n} at {:.0}% bandwidth utilization",
            u * 100.0
        );
    }
    let reg = hub.registry();
    println!(
        "metrics:  {} tasks, mean latency {:.0} us, {} steals, {} agent commands",
        reg.counter_total("coop_tasks_completed_total"),
        reg.histogram("coop_task_latency_us", &[("runtime", "producer")])
            .snapshot()
            .mean(),
        reg.counter_total("coop_steals_total"),
        reg.counter_total("coop_control_commands_total"),
    );
    println!(
        "timeline: {} events ({} dropped)",
        hub.event_count(),
        hub.dropped()
    );
    println!("\ntrace written to   {}", trace_path.display());
    println!("metrics written to {}", prom_path.display());
    println!("open the trace at https://ui.perfetto.dev");
}
