//! Execution tracing end to end: run an iterative task graph under
//! changing thread-control commands, export a Chrome/Perfetto trace, and
//! explain the model's view of the same allocation.
//!
//! Run with: `cargo run --release --example traced_execution`
//! Then open `target/trace.json` at <https://ui.perfetto.dev>.

use numa_coop::model::explain::explain;
use numa_coop::prelude::*;
use numa_coop::topology::presets::paper_model_machine;
use numa_coop::workloads::graphs::{GraphPlacement, IterativeGraph};

fn main() {
    let machine = paper_model_machine();
    let rt = Runtime::start(RuntimeConfig::new("traced", machine.clone())).unwrap();
    rt.trace_start(100_000);

    // Phase 1: full machine, rotating placement.
    IterativeGraph::new(8, 16, 40_000)
        .with_placement(GraphPlacement::RoundRobin)
        .run(&rt)
        .unwrap();

    // Phase 2: an agent-style command shrinks the runtime to node 0 only,
    // and the same graph runs again — the trace shows the lanes collapse.
    rt.control()
        .apply(ThreadCommand::PerNode(vec![8, 0, 0, 0]))
        .unwrap();
    IterativeGraph::new(8, 16, 40_000).run(&rt).unwrap();

    let trace = rt.trace_stop();
    let per_node = trace.tasks_per_node(machine.num_nodes());
    println!(
        "traced {} task events ({} dropped); tasks per node: {:?}",
        trace.task_events().count(),
        trace.dropped,
        per_node
    );

    let path = "target/trace.json";
    std::fs::write(path, trace.to_chrome_json()).expect("write trace");
    println!("wrote {path} — open it at https://ui.perfetto.dev");

    // The model's view of the two phases.
    let apps = vec![AppSpec::numa_local("graph", 8.0)];
    for (label, counts) in [("full machine", vec![8usize]), ("node 0 only", vec![8])] {
        let assignment = if label == "full machine" {
            ThreadAssignment::uniform_per_node(&machine, &counts)
        } else {
            let mut a = ThreadAssignment::zero(&machine, 1);
            a.set(0, NodeId(0), 8);
            a
        };
        let report = solve(&machine, &apps, &assignment).unwrap();
        println!(
            "\n== model view: {label} ({:.0} GFLOPS) ==",
            report.total_gflops()
        );
        print!("{}", explain(&machine, &report));
    }

    rt.shutdown();
}
