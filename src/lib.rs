//! # numa-coop
//!
//! NUMA-aware CPU core allocation for cooperating dynamic applications —
//! a from-scratch Rust implementation of the system described in
//! J. Dokulil & S. Benkner, *"NUMA-aware CPU core allocation in
//! cooperating dynamic applications"* (2020), together with every
//! substrate its evaluation depends on.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! one roof and hosts the runnable examples and cross-crate integration
//! tests. The pieces:
//!
//! | module | crate | what it is |
//! |--------|-------|------------|
//! | [`topology`] | `numa-topology` | machine model: NUMA nodes, cores, bandwidths, links, cpusets |
//! | [`model`] | `roofline-numa` | the paper's analytic bandwidth-sharing model (§III.A) |
//! | [`alloc`] | `coop-alloc` | allocation strategies, enumeration, model-guided search |
//! | [`runtime`] | `coop-runtime` | OCR-Vx-style task runtime with the three thread-blocking options |
//! | [`agent`] | `coop-agent` | the Figure 1 arbitration agent and its policies |
//! | [`sim`] | `memsim` | execution-driven NUMA hardware simulator (the §III.B testbed substitute) |
//! | [`workloads`] | `coop-workloads` | kernels, paper scenario mixes, producer-consumer pipeline |
//! | [`dist`] | `distsim` | §V distributed-translation simulator |
//! | [`telemetry`] | `coop-telemetry` | shared metrics registry + unified timeline (Perfetto/Prometheus exporters) |
//!
//! ## Quickstart
//!
//! Score the paper's Table I scenario and ask the searcher for something
//! better:
//!
//! ```
//! use numa_coop::prelude::*;
//!
//! let machine = numa_coop::topology::presets::paper_model_machine();
//! let apps = vec![
//!     AppSpec::numa_local("mem1", 0.5),
//!     AppSpec::numa_local("mem2", 0.5),
//!     AppSpec::numa_local("mem3", 0.5),
//!     AppSpec::numa_local("comp", 10.0),
//! ];
//! let uneven = ThreadAssignment::uniform_per_node(&machine, &[1, 1, 1, 5]);
//! let report = solve(&machine, &apps, &uneven).unwrap();
//! assert!((report.total_gflops() - 254.0).abs() < 1e-9); // Table I
//! ```
//!
//! See `examples/` for end-to-end scenarios (runtime + agent pipelines,
//! model-guided partitioning, distributed translation) and the
//! `coop-bench` crate for the binaries that regenerate every table and
//! figure of the paper.

pub use coop_agent as agent;
pub use coop_alloc as alloc;
pub use coop_runtime as runtime;
pub use coop_telemetry as telemetry;
pub use coop_workloads as workloads;
pub use distsim as dist;
pub use memsim as sim;
pub use numa_topology as topology;
pub use roofline_numa as model;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use coop_agent::{Agent, Policy, RuntimeHandle, ThreadCommand};
    pub use coop_alloc::{score, strategies, Objective, ThreadAssignment};
    pub use coop_runtime::{Runtime, RuntimeConfig, RuntimeStats};
    pub use coop_telemetry::{SloEngine, SloSpec, TelemetryHub, TenantLedger};
    pub use memsim::{EffectModel, SimApp, SimConfig, Simulation};
    pub use numa_topology::{Binding, CoreId, CpuSet, Machine, MachineBuilder, NodeId};
    pub use roofline_numa::{solve, AppSpec, DataPlacement, SolveReport};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let machine = crate::topology::presets::tiny();
        let apps = vec![AppSpec::numa_local("a", 1.0)];
        let assignment = ThreadAssignment::uniform_per_node(&machine, &[1]);
        let report = solve(&machine, &apps, &assignment).unwrap();
        assert!(report.total_gflops() > 0.0);
    }
}
